//! Golden files for the compiled decision trees.
//!
//! `nf_compile::render` produces a deterministic text form of the
//! lowered program — flattened entries, interned state predicates, and
//! the dispatch tree. Pinning it for two corpus NFs catches silent
//! changes to the lowering (split-key selection, literal consumption,
//! constant folding) that the behavioural differentials could miss
//! when two shapes happen to behave identically.
//!
//! Regenerate after an intentional lowering change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p nf-verify --test compiled_golden
//! ```

use nfactor_core::accuracy::initial_model_state;
use nfactor_core::Pipeline;
use nfl_interp::Interp;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.tree.txt"))
}

fn rendered_tree(name: &str, src: &str) -> String {
    let syn = Pipeline::builder()
        .name(name)
        .build()
        .unwrap()
        .synthesize(src)
        .unwrap_or_else(|e| panic!("{name}: synthesize: {e}"));
    let interp = Interp::new(&syn.nf_loop).unwrap();
    let init = initial_model_state(&syn, &interp);
    let prog = nf_compile::compile(&syn.model, &init)
        .unwrap_or_else(|e| panic!("{name}: compile: {e}"));
    format!(
        "# golden: {name}\n# regenerate with UPDATE_GOLDEN=1 cargo test -p nf-verify --test compiled_golden\n{}",
        nf_compile::render(&prog)
    )
}

fn assert_golden(name: &str, src: &str) {
    let got = rendered_tree(name, src);
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\n(run with UPDATE_GOLDEN=1 to create the golden file)",
            path.display()
        )
    });
    if got != want {
        let first = got
            .lines()
            .zip(want.lines())
            .enumerate()
            .find(|(_, (g, w))| g != w);
        let hint = match first {
            Some((i, (g, w))) => format!("first diff at line {}:\n  got:  {g}\n  want: {w}", i + 1),
            None => "one rendering is a prefix of the other".to_string(),
        };
        panic!(
            "{name}: rendered tree diverges from {} — {hint}\n\
             (regenerate with UPDATE_GOLDEN=1 if the lowering change is intentional)",
            path.display()
        );
    }
}

#[test]
fn firewall_tree_matches_golden() {
    assert_golden("firewall", &nf_corpus::firewall::source());
}

#[test]
fn router_tree_matches_golden() {
    assert_golden("router", &nf_corpus::router::source());
}
