//! Property tests of the header-space algebra.

use nf_verify::hsa::{HeaderSpace, IntervalSet};
use nf_packet::Field;
use proptest::prelude::*;

fn iset() -> impl Strategy<Value = IntervalSet> {
    proptest::collection::vec((0u64..5000, 0u64..5000), 1..4).prop_map(|pairs| {
        // Build as a union via repeated intersection-free construction:
        // use range() pieces merged through intersect with full —
        // simplest is to fold pairwise ranges into one set via points.
        let mut out = IntervalSet::range(1, 0); // empty
        for (a, b) in pairs {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            // Union by going through the full set: (full ∩ range) has the
            // piece; accumulate with a synthetic union via intersect of
            // complements is overkill — expose ranges through points.
            if out.is_empty() {
                out = IntervalSet::range(lo, hi);
            }
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Intersection is commutative and idempotent.
    #[test]
    fn intersect_commutative(a in iset(), b in iset()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.intersect(&a), a);
    }

    /// Intersection only shrinks.
    #[test]
    fn intersect_shrinks(a in iset(), b in iset()) {
        let i = a.intersect(&b);
        prop_assert!(i.size() <= a.size());
        prop_assert!(i.size() <= b.size());
    }

    /// remove_point removes exactly that point.
    #[test]
    fn remove_point_exact(lo in 0u64..1000, width in 0u64..1000, p in 0u64..2500) {
        let s = IntervalSet::range(lo, lo + width);
        let r = s.remove_point(p);
        prop_assert!(!r.contains(p));
        if s.contains(p) {
            prop_assert_eq!(r.size(), s.size() - 1);
        } else {
            prop_assert_eq!(r.size(), s.size());
        }
        // Every other point is preserved.
        for q in [lo, lo + width, lo + width / 2] {
            if q != p {
                prop_assert_eq!(r.contains(q), s.contains(q));
            }
        }
    }

    /// Packet membership matches field-wise interval membership.
    #[test]
    fn space_membership(dport in 0u16.., probe in 0u16..) {
        let hs = HeaderSpace::all().with_point(Field::TcpDport, u64::from(dport));
        let pkt = nf_packet::Packet::tcp(1, 2, 3, probe, nf_packet::TcpFlags::syn());
        prop_assert_eq!(hs.contains_packet(&pkt), probe == dport);
    }
}

#[test]
fn full_domain_sizes() {
    assert_eq!(IntervalSet::full(Field::TcpDport).size(), 65536);
    assert_eq!(IntervalSet::full(Field::TcpFlags).size(), 64);
    assert!(HeaderSpace::all().contains_packet(&nf_packet::Packet::tcp(
        1, 2, 3, 4, nf_packet::TcpFlags::syn()
    )));
}
