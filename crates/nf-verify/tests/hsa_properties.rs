//! Property tests of the header-space algebra.

use nf_packet::Field;
use nf_support::check::{any_u16, check, tuple2, tuple3, uint_range, vec_of, Config, Gen};
use nf_verify::hsa::{HeaderSpace, IntervalSet};

fn iset() -> Gen<IntervalSet> {
    vec_of(tuple2(uint_range(0, 4999), uint_range(0, 4999)), 1, 3).map(|pairs| {
        // Build as a union via repeated intersection-free construction:
        // use range() pieces merged through intersect with full —
        // simplest is to fold pairwise ranges into one set via points.
        let mut out = IntervalSet::range(1, 0); // empty
        for (a, b) in pairs {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            // Union by going through the full set: (full ∩ range) has the
            // piece; accumulate with a synthetic union via intersect of
            // complements is overkill — expose ranges through points.
            if out.is_empty() {
                out = IntervalSet::range(lo, hi);
            }
        }
        out
    })
}

/// Intersection is commutative and idempotent.
#[test]
fn intersect_commutative() {
    let cfg = Config::with_cases(256);
    check(
        "intersect_commutative",
        &cfg,
        &tuple2(iset(), iset()),
        |(a, b)| {
            assert_eq!(a.intersect(b), b.intersect(a));
            assert_eq!(&a.intersect(a), a);
        },
    );
}

/// Intersection only shrinks.
#[test]
fn intersect_shrinks() {
    let cfg = Config::with_cases(256);
    check(
        "intersect_shrinks",
        &cfg,
        &tuple2(iset(), iset()),
        |(a, b)| {
            let i = a.intersect(b);
            assert!(i.size() <= a.size());
            assert!(i.size() <= b.size());
        },
    );
}

/// remove_point removes exactly that point.
#[test]
fn remove_point_exact() {
    let cfg = Config::with_cases(256);
    let input = tuple3(uint_range(0, 999), uint_range(0, 999), uint_range(0, 2499));
    check("remove_point_exact", &cfg, &input, |&(lo, width, p)| {
        let s = IntervalSet::range(lo, lo + width);
        let r = s.remove_point(p);
        assert!(!r.contains(p));
        if s.contains(p) {
            assert_eq!(r.size(), s.size() - 1);
        } else {
            assert_eq!(r.size(), s.size());
        }
        // Every other point is preserved.
        for q in [lo, lo + width, lo + width / 2] {
            if q != p {
                assert_eq!(r.contains(q), s.contains(q));
            }
        }
    });
}

/// Packet membership matches field-wise interval membership.
#[test]
fn space_membership() {
    let cfg = Config::with_cases(256);
    check(
        "space_membership",
        &cfg,
        &tuple2(any_u16(), any_u16()),
        |&(dport, probe)| {
            let hs = HeaderSpace::all().with_point(Field::TcpDport, u64::from(dport));
            let pkt = nf_packet::Packet::tcp(1, 2, 3, probe, nf_packet::TcpFlags::syn());
            assert_eq!(hs.contains_packet(&pkt), probe == dport);
        },
    );
}

#[test]
fn full_domain_sizes() {
    assert_eq!(IntervalSet::full(Field::TcpDport).size(), 65536);
    assert_eq!(IntervalSet::full(Field::TcpFlags).size(), 64);
    assert!(HeaderSpace::all().contains_packet(&nf_packet::Packet::tcp(
        1,
        2,
        3,
        4,
        nf_packet::TcpFlags::syn()
    )));
}
