//! Control dependence (Ferrante–Ottenstein–Warren).
//!
//! Node *w* is control dependent on branch *b* iff *b* has an edge to a
//! successor from which *w* is always reached (i.e. *w* post-dominates
//! that successor) while *w* does not post-dominate *b* itself. Computed
//! the classic way: for every CFG edge `a → s` where `s` does not
//! post-dominate `a`, every node on the post-dominator-tree path from `s`
//! up to (but excluding) `ipdom(a)` is control dependent on `a`.

use crate::cfg::{Cfg, NodeId};
use crate::dom::{post_dominators, DomTree};

/// Control-dependence edges: `deps[w]` is the set of branch nodes `w`
/// is control dependent on.
#[derive(Debug, Clone)]
pub struct ControlDeps {
    /// For each node, the branch nodes controlling it.
    pub deps: Vec<Vec<NodeId>>,
}

/// Compute control dependences from the CFG and its post-dominator tree.
pub fn control_deps_with(cfg: &Cfg, pdom: &DomTree) -> ControlDeps {
    let n = cfg.len();
    let mut deps: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for a in 0..n {
        for (s, _) in &cfg.nodes[a].succs {
            // Skip when s post-dominates a (edge not a control decision).
            if pdom.dominates(*s, a) {
                continue;
            }
            // Walk the post-dominator tree from s toward the root,
            // stopping at ipdom(a).
            let stop = pdom.idom[a];
            let mut cur = Some(*s);
            while let Some(w) = cur {
                if Some(w) == stop {
                    break;
                }
                if !deps[w].contains(&a) {
                    deps[w].push(a);
                }
                if w == pdom.root {
                    break;
                }
                cur = pdom.idom[w];
            }
        }
    }
    ControlDeps { deps }
}

/// Convenience: compute post-dominators then control deps.
pub fn control_deps(cfg: &Cfg) -> ControlDeps {
    control_deps_with(cfg, &post_dominators(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{build_cfg, NodeKind};
    use nfl_lang::{parse, StmtKind};

    fn analyze(src: &str) -> (nfl_lang::Program, Cfg, ControlDeps) {
        let p = parse(src).unwrap();
        let cfg = build_cfg(p.function("main").unwrap());
        let cd = control_deps(&cfg);
        (p.clone(), cfg, cd)
    }

    #[test]
    fn then_branch_depends_on_cond() {
        let (p, cfg, cd) = analyze(
            "fn main() { let x = 1; if x == 1 { let a = 2; } let c = 3; }",
        );
        let mut cond = None;
        let mut a_node = None;
        let mut c_node = None;
        p.for_each_stmt(|s| match &s.kind {
            StmtKind::If { .. } => cond = Some(cfg.stmt_node[&s.id]),
            StmtKind::Let { name, .. } if name == "a" => a_node = Some(cfg.stmt_node[&s.id]),
            StmtKind::Let { name, .. } if name == "c" => c_node = Some(cfg.stmt_node[&s.id]),
            _ => {}
        });
        let (cond, a_node, c_node) = (cond.unwrap(), a_node.unwrap(), c_node.unwrap());
        assert!(cd.deps[a_node].contains(&cond), "then-branch controlled");
        assert!(
            !cd.deps[c_node].contains(&cond),
            "statement after the join is not controlled"
        );
    }

    #[test]
    fn both_sides_of_else_depend() {
        let (p, cfg, cd) = analyze(
            "fn main() { let x = 1; if x == 1 { let a = 2; } else { let b = 3; } }",
        );
        let mut cond = None;
        let mut a_node = None;
        let mut b_node = None;
        p.for_each_stmt(|s| match &s.kind {
            StmtKind::If { .. } => cond = Some(cfg.stmt_node[&s.id]),
            StmtKind::Let { name, .. } if name == "a" => a_node = Some(cfg.stmt_node[&s.id]),
            StmtKind::Let { name, .. } if name == "b" => b_node = Some(cfg.stmt_node[&s.id]),
            _ => {}
        });
        assert!(cd.deps[a_node.unwrap()].contains(&cond.unwrap()));
        assert!(cd.deps[b_node.unwrap()].contains(&cond.unwrap()));
    }

    #[test]
    fn loop_body_depends_on_header_and_header_on_itself() {
        let (p, cfg, cd) = analyze(
            "fn main() { let i = 0; while i < 3 { i = i + 1; } }",
        );
        let mut hdr = None;
        let mut body = None;
        p.for_each_stmt(|s| match &s.kind {
            StmtKind::While { .. } => hdr = Some(cfg.stmt_node[&s.id]),
            StmtKind::Assign { .. } => body = Some(cfg.stmt_node[&s.id]),
            _ => {}
        });
        let (hdr, body) = (hdr.unwrap(), body.unwrap());
        assert!(cd.deps[body].contains(&hdr));
        assert!(
            cd.deps[hdr].contains(&hdr),
            "a while header is control dependent on itself via the back edge"
        );
    }

    #[test]
    fn statements_after_early_return_depend_on_guard() {
        let (p, cfg, cd) = analyze(
            r#"fn main() {
                let x = 1;
                if x == 1 { return; }
                let y = 2;
            }"#,
        );
        let mut cond = None;
        let mut y_node = None;
        p.for_each_stmt(|s| match &s.kind {
            StmtKind::If { .. } => cond = Some(cfg.stmt_node[&s.id]),
            StmtKind::Let { name, .. } if name == "y" => y_node = Some(cfg.stmt_node[&s.id]),
            _ => {}
        });
        assert!(
            cd.deps[y_node.unwrap()].contains(&cond.unwrap()),
            "code after a guarded early return is control dependent on the guard"
        );
    }

    #[test]
    fn nested_if_stacks_dependences() {
        let (p, cfg, cd) = analyze(
            r#"fn main() {
                let x = 1;
                if x == 1 {
                    if x == 2 {
                        let deep = 3;
                    }
                }
            }"#,
        );
        let mut conds = Vec::new();
        let mut deep = None;
        p.for_each_stmt(|s| match &s.kind {
            StmtKind::If { .. } => conds.push(cfg.stmt_node[&s.id]),
            StmtKind::Let { name, .. } if name == "deep" => deep = Some(cfg.stmt_node[&s.id]),
            _ => {}
        });
        let deep = deep.unwrap();
        assert!(cd.deps[deep].contains(&conds[1]), "inner cond controls");
        // And transitively the outer one controls the inner cond.
        assert!(cd.deps[conds[1]].contains(&conds[0]));
    }

    #[test]
    fn straight_line_has_no_control_deps() {
        let (_, cfg, cd) = analyze("fn main() { let a = 1; let b = 2; }");
        for n in 0..cfg.len() {
            if cfg.nodes[n].kind == NodeKind::Stmt {
                assert!(cd.deps[n].is_empty(), "n{n} should be uncontrolled");
            }
        }
    }
}
