//! Control-flow graph construction from NFL function bodies.
//!
//! One CFG node per statement; `if`/`while`/`for` contribute a *condition*
//! node whose outgoing edges are labelled true/false. Synthetic entry,
//! exit, and join nodes carry no statement. `return` jumps to exit;
//! `break`/`continue` to the innermost loop's exit/header.

use nfl_lang::{Function, Stmt, StmtId, StmtKind};
use std::collections::HashMap;
use std::fmt;

/// Index of a node in a [`Cfg`].
pub type NodeId = usize;

/// Kinds of CFG nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Synthetic function entry.
    Entry,
    /// Synthetic function exit.
    Exit,
    /// A straight-line statement.
    Stmt,
    /// A branch condition (`if` / `while` / `for` header).
    Cond,
    /// A synthetic join point.
    Join,
}

/// Edge labels: which way a branch went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Unconditional fallthrough.
    Seq,
    /// The branch's true side.
    True,
    /// The branch's false side.
    False,
}

/// One CFG node.
#[derive(Debug, Clone)]
pub struct Node {
    /// The statement this node represents, if any.
    pub stmt: Option<StmtId>,
    /// Node kind.
    pub kind: NodeKind,
    /// Outgoing edges.
    pub succs: Vec<(NodeId, EdgeKind)>,
    /// Incoming edges.
    pub preds: Vec<NodeId>,
}

/// A function's control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All nodes; indices are [`NodeId`]s.
    pub nodes: Vec<Node>,
    /// The entry node.
    pub entry: NodeId,
    /// The exit node.
    pub exit: NodeId,
    /// Map from statement id to its node.
    pub stmt_node: HashMap<StmtId, NodeId>,
}

impl Cfg {
    fn add(&mut self, kind: NodeKind, stmt: Option<StmtId>) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            stmt,
            kind,
            succs: Vec::new(),
            preds: Vec::new(),
        });
        if let Some(s) = stmt {
            self.stmt_node.insert(s, id);
        }
        id
    }

    fn edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        if !self.nodes[from].succs.iter().any(|(t, _)| *t == to) {
            self.nodes[from].succs.push((to, kind));
            self.nodes[to].preds.push(from);
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty (never true for a built CFG).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Successor node ids of `n`.
    pub fn succs(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[n].succs.iter().map(|(t, _)| *t)
    }

    /// Predecessor node ids of `n`.
    pub fn preds(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[n].preds.iter().copied()
    }

    /// Reverse post-order from entry (unreachable nodes appended last so
    /// dataflow still visits them).
    pub fn rpo(&self) -> Vec<NodeId> {
        let mut visited = vec![false; self.nodes.len()];
        let mut post = Vec::new();
        // Iterative DFS.
        let mut stack = vec![(self.entry, 0usize)];
        visited[self.entry] = true;
        while let Some((n, i)) = stack.pop() {
            let succs: Vec<NodeId> = self.succs(n).collect();
            if i < succs.len() {
                stack.push((n, i + 1));
                let s = succs[i];
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(n);
            }
        }
        post.reverse();
        for (n, v) in visited.iter().enumerate() {
            if !v {
                post.push(n);
            }
        }
        post
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            let stmt = n
                .stmt
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".to_string());
            let succs: Vec<String> = n
                .succs
                .iter()
                .map(|(t, k)| format!("{t}{}", match k {
                    EdgeKind::Seq => "",
                    EdgeKind::True => "T",
                    EdgeKind::False => "F",
                }))
                .collect();
            writeln!(f, "n{i} [{:?} {stmt}] -> {}", n.kind, succs.join(", "))?;
        }
        Ok(())
    }
}

struct Builder {
    cfg: Cfg,
    /// (loop-header, loop-exit) stack for break/continue.
    loops: Vec<(NodeId, NodeId)>,
}

impl Builder {
    /// Lower a block starting from `cur` with edge kind `kind` for the
    /// first statement; returns the node control falls out of, or `None`
    /// if the block always transfers away (return/break/continue).
    fn block(&mut self, stmts: &[Stmt], mut cur: NodeId, mut kind: EdgeKind) -> Option<NodeId> {
        for s in stmts {
            match self.stmt(s, cur, kind) {
                Some(next) => {
                    cur = next;
                    kind = EdgeKind::Seq;
                }
                None => return None,
            }
        }
        Some(cur)
    }

    fn stmt(&mut self, s: &Stmt, cur: NodeId, kind: EdgeKind) -> Option<NodeId> {
        match &s.kind {
            StmtKind::Let { .. } | StmtKind::Assign { .. } | StmtKind::Expr(_) => {
                let n = self.cfg.add(NodeKind::Stmt, Some(s.id));
                self.cfg.edge(cur, n, kind);
                Some(n)
            }
            StmtKind::Return(_) => {
                let n = self.cfg.add(NodeKind::Stmt, Some(s.id));
                self.cfg.edge(cur, n, kind);
                let exit = self.cfg.exit;
                self.cfg.edge(n, exit, EdgeKind::Seq);
                None
            }
            StmtKind::Break => {
                let n = self.cfg.add(NodeKind::Stmt, Some(s.id));
                self.cfg.edge(cur, n, kind);
                if let Some(&(_, brk)) = self.loops.last() {
                    self.cfg.edge(n, brk, EdgeKind::Seq);
                }
                None
            }
            StmtKind::Continue => {
                let n = self.cfg.add(NodeKind::Stmt, Some(s.id));
                self.cfg.edge(cur, n, kind);
                if let Some(&(hdr, _)) = self.loops.last() {
                    self.cfg.edge(n, hdr, EdgeKind::Seq);
                }
                None
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                let cond = self.cfg.add(NodeKind::Cond, Some(s.id));
                self.cfg.edge(cur, cond, kind);
                let join = self.cfg.add(NodeKind::Join, None);
                if let Some(t_end) = self.block(then_branch, cond, EdgeKind::True) {
                    self.cfg.edge(t_end, join, EdgeKind::Seq);
                }
                if else_branch.is_empty() {
                    self.cfg.edge(cond, join, EdgeKind::False);
                } else if let Some(e_end) = self.block(else_branch, cond, EdgeKind::False) {
                    self.cfg.edge(e_end, join, EdgeKind::Seq);
                }
                // If both branches transfer away the join is unreachable;
                // that is fine — dataflow handles unreachable nodes.
                Some(join)
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                let cond = self.cfg.add(NodeKind::Cond, Some(s.id));
                self.cfg.edge(cur, cond, kind);
                let exit = self.cfg.add(NodeKind::Join, None);
                self.cfg.edge(cond, exit, EdgeKind::False);
                self.loops.push((cond, exit));
                if let Some(b_end) = self.block(body, cond, EdgeKind::True) {
                    self.cfg.edge(b_end, cond, EdgeKind::Seq);
                }
                self.loops.pop();
                Some(exit)
            }
        }
    }
}

/// Build the CFG of a function.
pub fn build_cfg(func: &Function) -> Cfg {
    let mut cfg = Cfg {
        nodes: Vec::new(),
        entry: 0,
        exit: 0,
        stmt_node: HashMap::new(),
    };
    let entry = cfg.add(NodeKind::Entry, None);
    let exit = cfg.add(NodeKind::Exit, None);
    cfg.entry = entry;
    cfg.exit = exit;
    let mut b = Builder {
        cfg,
        loops: Vec::new(),
    };
    if let Some(end) = b.block(&func.body, entry, EdgeKind::Seq) {
        let exit = b.cfg.exit;
        b.cfg.edge(end, exit, EdgeKind::Seq);
    }
    b.cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfl_lang::parse;

    fn cfg_of(src: &str) -> (Cfg, nfl_lang::Program) {
        let p = parse(src).unwrap();
        let f = p.function("main").unwrap();
        (build_cfg(f), p.clone())
    }

    #[test]
    fn straight_line() {
        let (cfg, _) = cfg_of("fn main() { let a = 1; let b = 2; }");
        // entry, exit, two stmts
        assert_eq!(cfg.len(), 4);
        // entry -> a -> b -> exit
        let path: Vec<_> = cfg.rpo();
        assert_eq!(path[0], cfg.entry);
        assert!(cfg.succs(cfg.entry).count() == 1);
        assert!(cfg.preds(cfg.exit).count() == 1);
    }

    #[test]
    fn if_else_diamond() {
        let (cfg, p) = cfg_of(
            "fn main() { let x = 1; if x == 1 { let a = 2; } else { let b = 3; } let c = 4; }",
        );
        let mut cond_node = None;
        p.for_each_stmt(|s| {
            if matches!(s.kind, StmtKind::If { .. }) {
                cond_node = Some(cfg.stmt_node[&s.id]);
            }
        });
        let cond = cond_node.unwrap();
        assert_eq!(cfg.nodes[cond].kind, NodeKind::Cond);
        assert_eq!(cfg.nodes[cond].succs.len(), 2);
        let kinds: Vec<_> = cfg.nodes[cond].succs.iter().map(|(_, k)| *k).collect();
        assert!(kinds.contains(&EdgeKind::True) && kinds.contains(&EdgeKind::False));
    }

    #[test]
    fn while_loop_back_edge() {
        let (cfg, p) = cfg_of("fn main() { let i = 0; while i < 3 { i = i + 1; } }");
        let mut while_node = None;
        p.for_each_stmt(|s| {
            if matches!(s.kind, StmtKind::While { .. }) {
                while_node = Some(cfg.stmt_node[&s.id]);
            }
        });
        let w = while_node.unwrap();
        // The body's assign must loop back to the cond.
        assert!(
            cfg.preds(w).count() >= 2,
            "loop header needs entry + back edge"
        );
    }

    #[test]
    fn return_goes_to_exit() {
        let (cfg, p) = cfg_of("fn main() { let x = 1; if x == 1 { return; } let y = 2; }");
        let mut ret_node = None;
        p.for_each_stmt(|s| {
            if matches!(s.kind, StmtKind::Return(_)) {
                ret_node = Some(cfg.stmt_node[&s.id]);
            }
        });
        let r = ret_node.unwrap();
        assert_eq!(cfg.succs(r).collect::<Vec<_>>(), vec![cfg.exit]);
    }

    #[test]
    fn break_exits_loop_continue_reenters() {
        let (cfg, p) = cfg_of(
            r#"fn main() {
                let i = 0;
                while i < 10 {
                    i = i + 1;
                    if i == 2 { continue; }
                    if i == 5 { break; }
                }
                let done = 1;
            }"#,
        );
        let mut while_hdr = None;
        let mut brk = None;
        let mut cont = None;
        p.for_each_stmt(|s| match s.kind {
            StmtKind::While { .. } => while_hdr = Some(cfg.stmt_node[&s.id]),
            StmtKind::Break => brk = Some(cfg.stmt_node[&s.id]),
            StmtKind::Continue => cont = Some(cfg.stmt_node[&s.id]),
            _ => {}
        });
        let hdr = while_hdr.unwrap();
        // continue's successor is the header
        assert_eq!(cfg.succs(cont.unwrap()).collect::<Vec<_>>(), vec![hdr]);
        // break's successor is the loop-exit join, which reaches `done`
        let bsucc: Vec<_> = cfg.succs(brk.unwrap()).collect();
        assert_eq!(bsucc.len(), 1);
        assert_ne!(bsucc[0], hdr);
    }

    #[test]
    fn all_stmts_have_nodes() {
        let (cfg, p) = cfg_of(
            r#"fn main() {
                let i = 0;
                for j in 0..4 {
                    if j == 2 { i = i + j; } else { i = i - 1; }
                }
                return;
            }"#,
        );
        let mut count = 0;
        p.for_each_stmt(|s| {
            assert!(cfg.stmt_node.contains_key(&s.id), "missing node for {s:?}");
            count += 1;
        });
        assert!(count > 0);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_all() {
        let (cfg, _) = cfg_of(
            "fn main() { let x = 0; while x < 2 { x = x + 1; } if x == 2 { return; } }",
        );
        let order = cfg.rpo();
        assert_eq!(order[0], cfg.entry);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), cfg.len(), "rpo must enumerate every node");
    }

    #[test]
    fn both_branches_return_join_unreachable() {
        let (cfg, _) = cfg_of(
            "fn main() { let x = 1; if x == 1 { return; } else { return; } }",
        );
        // Graph still well-formed; rpo enumerates everything.
        assert_eq!(cfg.rpo().len(), cfg.len());
    }
}
