//! Per-statement def/use extraction.
//!
//! §2.1 of the paper: *"Within one statement … the value of the
//! left-hand-side (LHS) variable depends on that of the right-hand-side
//! (RHS) variables; and between statements, the value of an RHS variable
//! in a statement depends on the preceding statements where that variable
//! is on the LHS."* This module computes exactly those LHS (def) and RHS
//! (use) sets, distinguishing **strong** definitions (whole-variable
//! assignment, kills prior defs) from **weak** ones (map inserts, packet
//! field stores, mutating builtins — the variable keeps earlier contents).

use nfl_lang::builtins;
use nfl_lang::{Expr, ExprKind, ForIter, LValue, Stmt, StmtKind};
use std::collections::BTreeSet;

/// How a definition updates its variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefKind {
    /// Whole-variable assignment — kills earlier definitions.
    Strong,
    /// Partial update (map entry, packet field, mutator builtin) — earlier
    /// definitions still reach past it.
    Weak,
}

/// Def/use sets of a single statement.
#[derive(Debug, Clone, Default)]
pub struct DefUse {
    /// Variables defined, with their kind.
    pub defs: Vec<(String, DefKind)>,
    /// Variables read.
    pub uses: BTreeSet<String>,
}

impl DefUse {
    /// Does this statement define `var` at all?
    pub fn defines(&self, var: &str) -> bool {
        self.defs.iter().any(|(v, _)| v == var)
    }

    /// Does this statement strongly define `var`?
    pub fn defines_strongly(&self, var: &str) -> bool {
        self.defs
            .iter()
            .any(|(v, k)| v == var && *k == DefKind::Strong)
    }
}

/// Collect variables mutated by builtin calls anywhere inside `e`
/// (e.g. `q_pop(q)` defines `q` weakly even in expression position).
fn mutated_vars(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::Call(name, args) => {
            if let Some(b) = builtins::lookup(name) {
                if let Some(i) = b.mutates {
                    if let Some(Expr {
                        kind: ExprKind::Var(v),
                        ..
                    }) = args.get(i)
                    {
                        out.push(v.clone());
                    }
                }
            }
            for a in args {
                mutated_vars(a, out);
            }
        }
        ExprKind::Tuple(es) | ExprKind::Array(es) => {
            for x in es {
                mutated_vars(x, out);
            }
        }
        ExprKind::Index(a, b) | ExprKind::Binary(_, a, b) => {
            mutated_vars(a, out);
            mutated_vars(b, out);
        }
        ExprKind::Unary(_, a) => mutated_vars(a, out),
        _ => {}
    }
}

/// Compute the def/use sets of one statement. Nested statements of
/// control structures are *not* included — only the header expression;
/// CFG structure carries the rest.
pub fn def_use(stmt: &Stmt) -> DefUse {
    let mut du = DefUse::default();
    let add_expr = |e: &Expr, du: &mut DefUse| {
        for v in e.vars() {
            du.uses.insert(v);
        }
        let mut muts = Vec::new();
        mutated_vars(e, &mut muts);
        for m in muts {
            du.defs.push((m, DefKind::Weak));
        }
    };
    match &stmt.kind {
        StmtKind::Let { name, value } => {
            add_expr(value, &mut du);
            du.defs.push((name.clone(), DefKind::Strong));
        }
        StmtKind::Assign { target, value } => {
            add_expr(value, &mut du);
            match target {
                LValue::Var(v) => du.defs.push((v.clone(), DefKind::Strong)),
                LValue::Index(base, key) => {
                    for v in key.vars() {
                        du.uses.insert(v);
                    }
                    du.uses.insert(base.clone());
                    du.defs.push((base.clone(), DefKind::Weak));
                }
                LValue::Field(base, _) => {
                    du.uses.insert(base.clone());
                    du.defs.push((base.clone(), DefKind::Weak));
                }
            }
        }
        StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => {
            add_expr(cond, &mut du);
        }
        StmtKind::For { var, iter, .. } => {
            match iter {
                ForIter::Range(lo, hi) => {
                    add_expr(lo, &mut du);
                    add_expr(hi, &mut du);
                }
                ForIter::Array(a) => add_expr(a, &mut du),
            }
            du.defs.push((var.clone(), DefKind::Strong));
        }
        StmtKind::Return(Some(e)) => add_expr(e, &mut du),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Expr(e) => add_expr(e, &mut du),
    }
    du
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfl_lang::parse;

    fn stmt_dus(src: &str) -> Vec<(String, DefUse)> {
        let p = parse(src).unwrap();
        let mut out = Vec::new();
        p.for_each_stmt(|s| {
            out.push((format!("{:?}", s.kind), def_use(s)));
        });
        out
    }

    #[test]
    fn let_defines_strongly() {
        let dus = stmt_dus("fn main() { let x = a + b; }");
        let du = &dus[0].1;
        assert!(du.defines_strongly("x"));
        assert!(du.uses.contains("a") && du.uses.contains("b"));
    }

    #[test]
    fn map_insert_is_weak_and_uses_base() {
        let dus = stmt_dus("state m = map(); fn main() { m[k] = v; }");
        let du = &dus[0].1;
        assert!(du.defines("m"));
        assert!(!du.defines_strongly("m"));
        assert!(du.uses.contains("m"), "weak update reads prior contents");
        assert!(du.uses.contains("k") && du.uses.contains("v"));
    }

    #[test]
    fn packet_field_store_is_weak() {
        let dus = stmt_dus("fn main() { let pkt = recv(); pkt.ip.src = 1; }");
        let du = &dus[1].1;
        assert!(du.defines("pkt") && !du.defines_strongly("pkt"));
    }

    #[test]
    fn mutator_in_expression_defines() {
        let dus = stmt_dus("state q = queue(); fn main() { let pkt = q_pop(q); }");
        let du = &dus[0].1;
        assert!(du.defines_strongly("pkt"));
        assert!(du.defines("q") && !du.defines_strongly("q"));
        assert!(du.uses.contains("q"));
    }

    #[test]
    fn cond_only_uses() {
        let dus = stmt_dus("fn main() { let x = 1; if x == 1 { let y = 2; } }");
        let du = &dus[1].1;
        assert!(du.defs.is_empty());
        assert_eq!(du.uses.iter().collect::<Vec<_>>(), vec!["x"]);
    }

    #[test]
    fn for_defines_loop_var() {
        let dus = stmt_dus("fn main() { let n = 3; for i in 0..n { let z = i; } }");
        let du = &dus[1].1;
        assert!(du.defines_strongly("i"));
        assert!(du.uses.contains("n"));
    }

    #[test]
    fn send_uses_packet() {
        let dus = stmt_dus("fn main() { let pkt = recv(); send(pkt); }");
        let du = &dus[1].1;
        assert!(du.uses.contains("pkt"));
        assert!(du.defs.is_empty());
    }
}
