//! Dominators and post-dominators.
//!
//! Classic iterative algorithm (Cooper–Harvey–Kennedy "A Simple, Fast
//! Dominance Algorithm") over the CFG in reverse post-order; the
//! post-dominator tree is the same computation on the reversed graph
//! rooted at exit. Post-dominators feed control dependence ([`crate::cd`]).

use crate::cfg::{Cfg, NodeId};

/// A dominator tree: `idom[n]` is the immediate dominator of `n`
/// (`None` for the root and unreachable nodes).
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each node.
    pub idom: Vec<Option<NodeId>>,
    /// The tree root (entry for dominators, exit for post-dominators).
    pub root: NodeId,
}

impl DomTree {
    /// Does `a` dominate `b` (reflexively)?
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = Some(b);
        while let Some(n) = cur {
            if n == a {
                return true;
            }
            if n == self.root {
                return false;
            }
            cur = self.idom[n];
        }
        false
    }

    /// Walk from `n` to the root, yielding strict dominators.
    pub fn strict_ancestors(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.idom[n];
        while let Some(a) = cur {
            out.push(a);
            if a == self.root {
                break;
            }
            cur = self.idom[a];
        }
        out
    }
}

fn compute(order: &[NodeId], preds: impl Fn(NodeId) -> Vec<NodeId>, root: NodeId, n: usize) -> DomTree {
    // rpo position of each node; unreachable nodes get usize::MAX.
    let mut pos = vec![usize::MAX; n];
    for (i, &node) in order.iter().enumerate() {
        pos[node] = i;
    }
    let mut idom: Vec<Option<NodeId>> = vec![None; n];
    idom[root] = Some(root);
    let intersect = |idom: &[Option<NodeId>], mut a: NodeId, mut b: NodeId| -> NodeId {
        while a != b {
            while pos[a] > pos[b] {
                a = idom[a].expect("processed");
            }
            while pos[b] > pos[a] {
                b = idom[b].expect("processed");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &node in order {
            if node == root {
                continue;
            }
            let mut new_idom: Option<NodeId> = None;
            for p in preds(node) {
                if idom[p].is_some() {
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, p, cur),
                    });
                }
            }
            if let Some(ni) = new_idom {
                if idom[node] != Some(ni) {
                    idom[node] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    // Normalise: root's idom is None; unreachable nodes stay None.
    idom[root] = None;
    DomTree { idom, root }
}

/// Compute the dominator tree rooted at entry.
pub fn dominators(cfg: &Cfg) -> DomTree {
    let order = cfg.rpo();
    // Filter to reachable-from-entry prefix: rpo() appends unreachable
    // nodes at the end, but `compute` skips nodes with no processed preds,
    // so passing all is safe.
    compute(
        &order,
        |n| cfg.preds(n).collect(),
        cfg.entry,
        cfg.len(),
    )
}

/// Compute the post-dominator tree rooted at exit (dominators of the
/// reversed CFG).
pub fn post_dominators(cfg: &Cfg) -> DomTree {
    // Reverse post-order of the reversed graph.
    let n = cfg.len();
    let mut visited = vec![false; n];
    let mut post = Vec::new();
    let mut stack = vec![(cfg.exit, 0usize)];
    visited[cfg.exit] = true;
    while let Some((node, i)) = stack.pop() {
        let preds: Vec<NodeId> = cfg.preds(node).collect();
        if i < preds.len() {
            stack.push((node, i + 1));
            let p = preds[i];
            if !visited[p] {
                visited[p] = true;
                stack.push((p, 0));
            }
        } else {
            post.push(node);
        }
    }
    post.reverse();
    for (node, v) in visited.iter().enumerate() {
        if !v {
            post.push(node);
        }
    }
    compute(&post, |x| cfg.succs(x).collect(), cfg.exit, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use nfl_lang::parse;

    fn analyze(src: &str) -> (Cfg, DomTree, DomTree) {
        let p = parse(src).unwrap();
        let cfg = build_cfg(p.function("main").unwrap());
        let d = dominators(&cfg);
        let pd = post_dominators(&cfg);
        (cfg, d, pd)
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let (cfg, d, _) = analyze(
            "fn main() { let x = 1; if x == 1 { let a = 2; } else { let b = 3; } let c = 4; }",
        );
        for n in 0..cfg.len() {
            if n != cfg.entry && d.idom[n].is_some() {
                assert!(d.dominates(cfg.entry, n), "entry must dominate n{n}");
            }
        }
    }

    #[test]
    fn exit_postdominates_everything() {
        let (cfg, _, pd) = analyze(
            "fn main() { let x = 1; while x < 3 { x = x + 1; } let y = 2; }",
        );
        for n in 0..cfg.len() {
            if n != cfg.exit && pd.idom[n].is_some() {
                assert!(pd.dominates(cfg.exit, n), "exit must post-dominate n{n}");
            }
        }
    }

    #[test]
    fn branch_does_not_dominate_join_sides() {
        let (cfg, d, pd) = analyze(
            "fn main() { let x = 1; if x == 1 { let a = 2; } else { let b = 3; } let c = 4; }",
        );
        // Find the cond node and its two branch stmt nodes.
        let cond = cfg
            .nodes
            .iter()
            .position(|n| n.kind == crate::cfg::NodeKind::Cond)
            .unwrap();
        let (t, f) = {
            let succs = &cfg.nodes[cond].succs;
            (succs[0].0, succs[1].0)
        };
        // Cond dominates both branches...
        assert!(d.dominates(cond, t));
        assert!(d.dominates(cond, f));
        // ...but neither branch post-dominates the cond.
        assert!(!pd.dominates(t, cond));
        assert!(!pd.dominates(f, cond));
    }

    #[test]
    fn dominance_is_antisymmetric_on_diamond() {
        let (cfg, d, _) = analyze(
            "fn main() { let x = 1; if x == 1 { let a = 2; } else { let b = 3; } }",
        );
        for a in 0..cfg.len() {
            for b in 0..cfg.len() {
                if a != b && d.idom[a].is_some() && d.idom[b].is_some() {
                    assert!(
                        !(d.dominates(a, b) && d.dominates(b, a)),
                        "n{a} and n{b} dominate each other"
                    );
                }
            }
        }
    }

    #[test]
    fn strict_ancestors_reach_root() {
        let (cfg, d, _) = analyze("fn main() { let a = 1; let b = 2; let c = 3; }");
        // Node for `c`:
        let c = (0..cfg.len()).rfind(|&n| cfg.nodes[n].stmt.is_some())
            .unwrap();
        let anc = d.strict_ancestors(c);
        assert_eq!(*anc.last().unwrap(), cfg.entry);
    }

    #[test]
    fn loop_header_dominates_body() {
        let (cfg, d, _) = analyze("fn main() { let i = 0; while i < 3 { i = i + 1; } }");
        let hdr = cfg
            .nodes
            .iter()
            .position(|n| n.kind == crate::cfg::NodeKind::Cond)
            .unwrap();
        let body = cfg.nodes[hdr]
            .succs
            .iter()
            .find(|(_, k)| *k == crate::cfg::EdgeKind::True)
            .unwrap()
            .0;
        assert!(d.dominates(hdr, body));
    }
}
