//! Function inlining.
//!
//! NFactor's dependence analyses are intraprocedural over the single
//! packet-processing function (the paper's giri handles interprocedural
//! slicing; we get the same effect more simply by inlining every user
//! call into the entry function — NF helpers are small, non-recursive and
//! called at one or two sites).
//!
//! Mechanics: each user call site is replaced by the callee's body with
//! parameters bound to `let` copies of the arguments and locals
//! α-renamed (`__<callee><n>_…`). A call in expression position stores
//! the callee's return value in a fresh temporary. Early `return`s are
//! compiled with a *completion guard*: the callee body sets
//! `__<callee><n>_done = true` and every statement after a potential
//! return point is wrapped in `if !done { … }`, preserving semantics
//! without gotos.

use nfl_lang::{builtins, Expr, ExprKind, ForIter, Function, LValue, Program, Stmt, StmtKind};
use std::collections::HashSet;
use std::fmt;

/// Errors the inliner can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InlineError {
    /// Direct or mutual recursion — not allowed in NFL.
    Recursion(String),
    /// Call to an undefined function.
    Unknown(String),
}

impl fmt::Display for InlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InlineError::Recursion(n) => write!(f, "recursive call to `{n}` cannot be inlined"),
            InlineError::Unknown(n) => write!(f, "call to unknown function `{n}`"),
        }
    }
}

impl std::error::Error for InlineError {}

struct Inliner<'p> {
    program: &'p Program,
    counter: u32,
    stack: Vec<String>,
}

impl<'p> Inliner<'p> {
    /// Rewrite an expression, extracting user calls into `pre` statements
    /// and replacing them with temp variables.
    fn rewrite_expr(&mut self, e: &Expr, pre: &mut Vec<Stmt>) -> Result<Expr, InlineError> {
        let kind = match &e.kind {
            ExprKind::Call(name, args) if builtins::lookup(name).is_none() => {
                // User call: rewrite args first (they may contain calls).
                let mut new_args = Vec::new();
                for a in args {
                    new_args.push(self.rewrite_expr(a, pre)?);
                }
                let ret_var = self.inline_call(name, &new_args, pre)?;
                ExprKind::Var(ret_var)
            }
            ExprKind::Call(name, args) => {
                let mut new_args = Vec::new();
                for a in args {
                    new_args.push(self.rewrite_expr(a, pre)?);
                }
                ExprKind::Call(name.clone(), new_args)
            }
            ExprKind::Tuple(es) => ExprKind::Tuple(
                es.iter()
                    .map(|x| self.rewrite_expr(x, pre))
                    .collect::<Result<_, _>>()?,
            ),
            ExprKind::Array(es) => ExprKind::Array(
                es.iter()
                    .map(|x| self.rewrite_expr(x, pre))
                    .collect::<Result<_, _>>()?,
            ),
            ExprKind::Index(a, b) => ExprKind::Index(
                Box::new(self.rewrite_expr(a, pre)?),
                Box::new(self.rewrite_expr(b, pre)?),
            ),
            ExprKind::Binary(op, a, b) => ExprKind::Binary(
                *op,
                Box::new(self.rewrite_expr(a, pre)?),
                Box::new(self.rewrite_expr(b, pre)?),
            ),
            ExprKind::Unary(op, a) => {
                ExprKind::Unary(*op, Box::new(self.rewrite_expr(a, pre)?))
            }
            other => other.clone(),
        };
        Ok(Expr {
            kind,
            span: e.span,
        })
    }

    /// Inline a call to `name` with already-rewritten `args`. Emits the
    /// inlined body into `pre` and returns the name of the variable that
    /// holds the return value.
    fn inline_call(
        &mut self,
        name: &str,
        args: &[Expr],
        pre: &mut Vec<Stmt>,
    ) -> Result<String, InlineError> {
        if self.stack.iter().any(|f| f == name) {
            return Err(InlineError::Recursion(name.to_string()));
        }
        let callee: &Function = self
            .program
            .function(name)
            .ok_or_else(|| InlineError::Unknown(name.to_string()))?;
        self.stack.push(name.to_string());

        let tag = {
            self.counter += 1;
            format!("__{name}{}", self.counter)
        };
        let ret_var = format!("{tag}_ret");
        let done_var = format!("{tag}_done");

        // Parameter bindings.
        for ((pname, _), arg) in callee.params.iter().zip(args) {
            pre.push(synth_stmt(StmtKind::Let {
                name: format!("{tag}_{pname}"),
                value: arg.clone(),
            }));
        }
        // Return slot + guard. (Initialised to 0/false; type checker runs
        // before inlining, so the Unknown-typed slot is harmless.)
        pre.push(synth_stmt(StmtKind::Let {
            name: ret_var.clone(),
            value: Expr::synthetic(ExprKind::Int(0)),
        }));
        pre.push(synth_stmt(StmtKind::Let {
            name: done_var.clone(),
            value: Expr::synthetic(ExprKind::Bool(false)),
        }));

        // Rename locals and compile returns.
        let renames: HashSet<String> =
            callee.params.iter().map(|(p, _)| p.clone()).collect();
        let mut body = self.rewrite_body(&callee.body, &tag, &renames, &ret_var, &done_var)?;
        pre.append(&mut body);

        self.stack.pop();
        Ok(ret_var)
    }

    /// Rewrite a callee body: α-rename locals/params with `tag`, replace
    /// `return` with ret/done assignments, guard trailing statements, and
    /// recursively inline nested calls.
    fn rewrite_body(
        &mut self,
        stmts: &[Stmt],
        tag: &str,
        renamed: &HashSet<String>,
        ret_var: &str,
        done_var: &str,
    ) -> Result<Vec<Stmt>, InlineError> {
        let mut renamed = renamed.clone();
        self.rewrite_body_inner(stmts, tag, &mut renamed, ret_var, done_var)
    }

    /// Worker for [`Inliner::rewrite_body`]. After a statement that may
    /// have executed a `return` (set the `done` flag), the remainder of
    /// the block is wrapped in `if done == false { … }` — built by
    /// recursing on the statement tail.
    fn rewrite_body_inner(
        &mut self,
        stmts: &[Stmt],
        tag: &str,
        renamed: &mut HashSet<String>,
        ret_var: &str,
        done_var: &str,
    ) -> Result<Vec<Stmt>, InlineError> {
        let mut out: Vec<Stmt> = Vec::new();
        for (i, s) in stmts.iter().enumerate() {
            let (new_stmts, may_return) =
                self.rewrite_stmt(s, tag, renamed, ret_var, done_var)?;
            out.extend(new_stmts);
            if may_return && i + 1 < stmts.len() {
                let rest =
                    self.rewrite_body_inner(&stmts[i + 1..], tag, renamed, ret_var, done_var)?;
                out.push(synth_stmt(StmtKind::If {
                    cond: Expr::synthetic(ExprKind::Binary(
                        nfl_lang::BinOp::Eq,
                        Box::new(Expr::synthetic(ExprKind::Var(done_var.to_string()))),
                        Box::new(Expr::synthetic(ExprKind::Bool(false))),
                    )),
                    then_branch: rest,
                    else_branch: Vec::new(),
                }));
                return Ok(out);
            }
        }
        Ok(out)
    }

    /// Rewrite one statement of a callee body. Returns the replacement
    /// statements and whether the statement may have executed a `return`.
    fn rewrite_stmt(
        &mut self,
        s: &Stmt,
        tag: &str,
        renamed: &mut HashSet<String>,
        ret_var: &str,
        done_var: &str,
    ) -> Result<(Vec<Stmt>, bool), InlineError> {
        let rn = |name: &str, renamed: &HashSet<String>| -> String {
            if renamed.contains(name) {
                format!("{tag}_{name}")
            } else {
                name.to_string()
            }
        };
        let mut pre: Vec<Stmt> = Vec::new();
        let result = match &s.kind {
            StmtKind::Let { name, value } => {
                let v = self.rewrite_expr(&rename_expr(value, tag, renamed), &mut pre)?;
                renamed.insert(name.clone());
                pre.push(Stmt {
                    id: s.id,
                    span: s.span,
                    kind: StmtKind::Let {
                        name: rn(name, renamed),
                        value: v,
                    },
                });
                (pre, false)
            }
            StmtKind::Assign { target, value } => {
                let v = self.rewrite_expr(&rename_expr(value, tag, renamed), &mut pre)?;
                let t = match target {
                    LValue::Var(x) => LValue::Var(rn(x, renamed)),
                    LValue::Index(b, k) => LValue::Index(
                        rn(b, renamed),
                        self.rewrite_expr(&rename_expr(k, tag, renamed), &mut pre)?,
                    ),
                    LValue::Field(b, f) => LValue::Field(rn(b, renamed), *f),
                };
                pre.push(Stmt {
                    id: s.id,
                    span: s.span,
                    kind: StmtKind::Assign {
                        target: t,
                        value: v,
                    },
                });
                (pre, false)
            }
            StmtKind::Return(val) => {
                if let Some(v) = val {
                    let v = self.rewrite_expr(&rename_expr(v, tag, renamed), &mut pre)?;
                    pre.push(synth_stmt(StmtKind::Assign {
                        target: LValue::Var(ret_var.to_string()),
                        value: v,
                    }));
                }
                pre.push(synth_stmt(StmtKind::Assign {
                    target: LValue::Var(done_var.to_string()),
                    value: Expr::synthetic(ExprKind::Bool(true)),
                }));
                (pre, true)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.rewrite_expr(&rename_expr(cond, tag, renamed), &mut pre)?;
                let t = self.rewrite_body(then_branch, tag, renamed, ret_var, done_var)?;
                let e = self.rewrite_body(else_branch, tag, renamed, ret_var, done_var)?;
                let may_ret = contains_return(then_branch) || contains_return(else_branch);
                pre.push(Stmt {
                    id: s.id,
                    span: s.span,
                    kind: StmtKind::If {
                        cond: c,
                        then_branch: t,
                        else_branch: e,
                    },
                });
                (pre, may_ret)
            }
            StmtKind::While { cond, body } => {
                let c = self.rewrite_expr(&rename_expr(cond, tag, renamed), &mut pre)?;
                let b = self.rewrite_body(body, tag, renamed, ret_var, done_var)?;
                let may_ret = contains_return(body);
                pre.push(Stmt {
                    id: s.id,
                    span: s.span,
                    kind: StmtKind::While { cond: c, body: b },
                });
                (pre, may_ret)
            }
            StmtKind::For { var, iter, body } => {
                let it = match iter {
                    ForIter::Range(lo, hi) => ForIter::Range(
                        self.rewrite_expr(&rename_expr(lo, tag, renamed), &mut pre)?,
                        self.rewrite_expr(&rename_expr(hi, tag, renamed), &mut pre)?,
                    ),
                    ForIter::Array(a) => ForIter::Array(
                        self.rewrite_expr(&rename_expr(a, tag, renamed), &mut pre)?,
                    ),
                };
                renamed.insert(var.clone());
                let b = self.rewrite_body(body, tag, renamed, ret_var, done_var)?;
                let may_ret = contains_return(body);
                pre.push(Stmt {
                    id: s.id,
                    span: s.span,
                    kind: StmtKind::For {
                        var: rn(var, renamed),
                        iter: it,
                        body: b,
                    },
                });
                (pre, may_ret)
            }
            StmtKind::Break | StmtKind::Continue => {
                pre.push(s.clone());
                (pre, false)
            }
            StmtKind::Expr(e) => {
                let v = self.rewrite_expr(&rename_expr(e, tag, renamed), &mut pre)?;
                pre.push(Stmt {
                    id: s.id,
                    span: s.span,
                    kind: StmtKind::Expr(v),
                });
                (pre, false)
            }
        };
        Ok(result)
    }
}

fn contains_return(stmts: &[Stmt]) -> bool {
    let mut found = false;
    fn walk(stmts: &[Stmt], found: &mut bool) {
        for s in stmts {
            match &s.kind {
                StmtKind::Return(_) => *found = true,
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, found);
                    walk(else_branch, found);
                }
                StmtKind::While { body, .. } | StmtKind::For { body, .. } => walk(body, found),
                _ => {}
            }
        }
    }
    walk(stmts, &mut found);
    found
}

/// α-rename variables in an expression according to the callee's local
/// set.
fn rename_expr(e: &Expr, tag: &str, renamed: &HashSet<String>) -> Expr {
    let kind = match &e.kind {
        ExprKind::Var(v) if renamed.contains(v) => ExprKind::Var(format!("{tag}_{v}")),
        ExprKind::Field(b, f) if renamed.contains(b) => {
            ExprKind::Field(format!("{tag}_{b}"), *f)
        }
        ExprKind::Tuple(es) => {
            ExprKind::Tuple(es.iter().map(|x| rename_expr(x, tag, renamed)).collect())
        }
        ExprKind::Array(es) => {
            ExprKind::Array(es.iter().map(|x| rename_expr(x, tag, renamed)).collect())
        }
        ExprKind::Index(a, b) => ExprKind::Index(
            Box::new(rename_expr(a, tag, renamed)),
            Box::new(rename_expr(b, tag, renamed)),
        ),
        ExprKind::Binary(op, a, b) => ExprKind::Binary(
            *op,
            Box::new(rename_expr(a, tag, renamed)),
            Box::new(rename_expr(b, tag, renamed)),
        ),
        ExprKind::Unary(op, a) => ExprKind::Unary(*op, Box::new(rename_expr(a, tag, renamed))),
        ExprKind::Call(n, args) => ExprKind::Call(
            n.clone(),
            args.iter().map(|x| rename_expr(x, tag, renamed)).collect(),
        ),
        other => other.clone(),
    };
    Expr {
        kind,
        span: e.span,
    }
}

fn synth_stmt(kind: StmtKind) -> Stmt {
    Stmt {
        id: nfl_lang::StmtId(u32::MAX),
        span: Default::default(),
        kind,
    }
}

/// Inline every user-function call inside `entry`, producing a program
/// whose `entry` function is self-contained. Other functions are retained
/// (the normaliser may need them) but `entry`'s body no longer calls them.
/// Statement ids are renumbered.
pub fn inline_program(program: &Program, entry: &str) -> Result<Program, InlineError> {
    let f = program
        .function(entry)
        .ok_or_else(|| InlineError::Unknown(entry.to_string()))?;
    let mut inliner = Inliner {
        program,
        counter: 0,
        stack: vec![entry.to_string()],
    };
    let mut new_body: Vec<Stmt> = Vec::new();
    let renamed = HashSet::new();
    // The entry function's own returns keep their meaning (end of packet
    // processing = implicit drop), so we do NOT guard them: rewrite with a
    // dummy ret/done that is never consulted, then restore plain returns.
    for s in &f.body {
        let (stmts, _) = inliner.rewrite_entry_stmt(s, &renamed)?;
        new_body.extend(stmts);
    }
    let mut out = program.clone();
    let fm = out
        .functions
        .iter_mut()
        .find(|g| g.name == entry)
        .expect("entry exists");
    fm.body = new_body;
    out.renumber();
    Ok(out)
}

impl<'p> Inliner<'p> {
    /// Entry-function statements: nested calls are inlined but `return`
    /// keeps its original semantics.
    fn rewrite_entry_stmt(
        &mut self,
        s: &Stmt,
        _renamed: &HashSet<String>,
    ) -> Result<(Vec<Stmt>, bool), InlineError> {
        let mut pre = Vec::new();
        match &s.kind {
            StmtKind::Return(v) => {
                let v = match v {
                    Some(e) => Some(self.rewrite_expr(e, &mut pre)?),
                    None => None,
                };
                pre.push(Stmt {
                    id: s.id,
                    span: s.span,
                    kind: StmtKind::Return(v),
                });
                Ok((pre, false))
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.rewrite_expr(cond, &mut pre)?;
                let mut t = Vec::new();
                for cs in then_branch {
                    t.extend(self.rewrite_entry_stmt(cs, _renamed)?.0);
                }
                let mut e = Vec::new();
                for cs in else_branch {
                    e.extend(self.rewrite_entry_stmt(cs, _renamed)?.0);
                }
                pre.push(Stmt {
                    id: s.id,
                    span: s.span,
                    kind: StmtKind::If {
                        cond: c,
                        then_branch: t,
                        else_branch: e,
                    },
                });
                Ok((pre, false))
            }
            StmtKind::While { cond, body } => {
                let c = self.rewrite_expr(cond, &mut pre)?;
                let mut b = Vec::new();
                for cs in body {
                    b.extend(self.rewrite_entry_stmt(cs, _renamed)?.0);
                }
                pre.push(Stmt {
                    id: s.id,
                    span: s.span,
                    kind: StmtKind::While { cond: c, body: b },
                });
                Ok((pre, false))
            }
            StmtKind::For { var, iter, body } => {
                let it = match iter {
                    ForIter::Range(lo, hi) => ForIter::Range(
                        self.rewrite_expr(lo, &mut pre)?,
                        self.rewrite_expr(hi, &mut pre)?,
                    ),
                    ForIter::Array(a) => ForIter::Array(self.rewrite_expr(a, &mut pre)?),
                };
                let mut b = Vec::new();
                for cs in body {
                    b.extend(self.rewrite_entry_stmt(cs, _renamed)?.0);
                }
                pre.push(Stmt {
                    id: s.id,
                    span: s.span,
                    kind: StmtKind::For {
                        var: var.clone(),
                        iter: it,
                        body: b,
                    },
                });
                Ok((pre, false))
            }
            StmtKind::Let { name, value } => {
                let v = self.rewrite_expr(value, &mut pre)?;
                pre.push(Stmt {
                    id: s.id,
                    span: s.span,
                    kind: StmtKind::Let {
                        name: name.clone(),
                        value: v,
                    },
                });
                Ok((pre, false))
            }
            StmtKind::Assign { target, value } => {
                let v = self.rewrite_expr(value, &mut pre)?;
                let t = match target {
                    LValue::Index(b, k) => {
                        LValue::Index(b.clone(), self.rewrite_expr(k, &mut pre)?)
                    }
                    other => other.clone(),
                };
                pre.push(Stmt {
                    id: s.id,
                    span: s.span,
                    kind: StmtKind::Assign {
                        target: t,
                        value: v,
                    },
                });
                Ok((pre, false))
            }
            StmtKind::Expr(e) => {
                let v = self.rewrite_expr(e, &mut pre)?;
                // A bare user call has been replaced by its body; the
                // leftover `__ret` var read is dropped if it is a pure var.
                if !matches!(v.kind, ExprKind::Var(_)) {
                    pre.push(Stmt {
                        id: s.id,
                        span: s.span,
                        kind: StmtKind::Expr(v),
                    });
                }
                Ok((pre, false))
            }
            StmtKind::Break | StmtKind::Continue => {
                pre.push(s.clone());
                Ok((pre, false))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfl_lang::parse;

    #[test]
    fn simple_call_inlined() {
        let p = parse(
            r#"
            fn helper(x: int) { return x + 1; }
            fn main() { let y = helper(41); send_result(y); }
            fn send_result(v: int) { log(v); }
        "#,
        )
        .unwrap();
        let q = inline_program(&p, "main").unwrap();
        let body = &q.function("main").unwrap().body;
        let text = nfl_lang::pretty::program_to_string(&q);
        assert!(
            !text.contains("helper(41)"),
            "call replaced by body:\n{text}"
        );
        assert!(text.contains("+ 1"), "callee arithmetic present:\n{text}");
        assert!(body.len() > 2);
    }

    #[test]
    fn early_return_guarded() {
        let p = parse(
            r#"
            fn classify(x: int) {
                if x > 10 { return 1; }
                log(x);
                return 0;
            }
            fn main() { let c = classify(5); }
        "#,
        )
        .unwrap();
        let q = inline_program(&p, "main").unwrap();
        let text = nfl_lang::pretty::program_to_string(&q);
        assert!(
            text.contains("_done = true"),
            "early return sets guard:\n{text}"
        );
        assert!(
            text.contains("_done == false"),
            "trailing code guarded:\n{text}"
        );
    }

    #[test]
    fn recursion_rejected() {
        let p = parse(
            r#"
            fn loopy(x: int) { let y = loopy(x); return y; }
            fn main() { let z = loopy(1); }
        "#,
        )
        .unwrap();
        assert!(matches!(
            inline_program(&p, "main"),
            Err(InlineError::Recursion(_))
        ));
    }

    #[test]
    fn nested_calls_inlined() {
        let p = parse(
            r#"
            fn inner(x: int) { return x * 2; }
            fn outer(x: int) { return inner(x) + 1; }
            fn main() { let r = outer(10); }
        "#,
        )
        .unwrap();
        let q = inline_program(&p, "main").unwrap();
        let text = nfl_lang::pretty::program_to_string(&q);
        let main_text: String = text
            .lines()
            .skip_while(|l| !l.contains("fn main"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!main_text.contains("outer("), "{main_text}");
        assert!(!main_text.contains("inner("), "{main_text}");
        assert!(main_text.contains("* 2"), "{main_text}");
    }

    #[test]
    fn locals_alpha_renamed() {
        let p = parse(
            r#"
            fn helper(x: int) { let t = x + 1; return t; }
            fn main() { let t = 100; let u = helper(t); let check = t; }
        "#,
        )
        .unwrap();
        let q = inline_program(&p, "main").unwrap();
        let text = nfl_lang::pretty::program_to_string(&q);
        // The caller's `t` must survive: the callee's `t` is renamed.
        assert!(text.contains("let t = 100;"), "{text}");
        assert!(text.contains("_t ="), "renamed callee local:\n{text}");
    }

    #[test]
    fn ids_renumbered_dense() {
        let p = parse(
            r#"
            fn helper(x: int) { return x; }
            fn main() { let a = helper(1); let b = helper(2); }
        "#,
        )
        .unwrap();
        let q = inline_program(&p, "main").unwrap();
        let mut ids = Vec::new();
        q.for_each_stmt(|s| ids.push(s.id.0));
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..ids.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn entry_return_not_guarded() {
        let p = parse(
            r#"
            fn main() {
                let pkt = recv();
                if pkt.tcp.dport != 80 { return; }
                send(pkt);
            }
        "#,
        )
        .unwrap();
        let q = inline_program(&p, "main").unwrap();
        let text = nfl_lang::pretty::program_to_string(&q);
        assert!(text.contains("return;"), "{text}");
        assert!(!text.contains("_done"), "{text}");
    }
}
