//! Program analyses over NFL — the giri-substitute substrate.
//!
//! NFactor's Algorithm 1 needs, in order:
//!
//! 1. a **control-flow graph** per function ([`mod@cfg`]),
//! 2. **dominator / post-dominator trees** ([`dom`]) feeding
//! 3. **control dependence** ([`cd`]) and, with per-statement
//!    **def/use sets** ([`defuse`]) and **reaching definitions**
//!    ([`reach`]), **data dependence**, assembled into
//! 4. the **program dependence graph** ([`pdg`]) on which `nfl-slicer`
//!    computes backward slices, and
//! 5. the **structure passes** the paper's §3.2 describes: function
//!    inlining ([`inline`]) and normalisation of the four NF code shapes
//!    of Figure 4 into the single processing loop of Figure 4a
//!    ([`mod@normalize`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cd;
pub mod cfg;
pub mod defuse;
pub mod dom;
pub mod inline;
pub mod live;
pub mod normalize;
pub mod pdg;
pub mod reach;

pub use cfg::{Cfg, EdgeKind, NodeId, NodeKind};
pub use defuse::{DefKind, DefUse};
pub use live::{liveness, Liveness};
pub use inline::inline_program;
pub use normalize::{normalize, PacketLoop, StructureError};
pub use pdg::{DepEdge, DepKind, Pdg};
