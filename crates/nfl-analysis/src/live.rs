//! Liveness analysis and dead-store diagnostics.
//!
//! Backward may-analysis over the CFG: a variable is *live* at a point if
//! some path onward reads it before any strong redefinition. Persistent
//! (`state`) variables are live at function exit — the next packet may
//! read them — which is precisely why per-packet liveness alone cannot
//! prune state updates and the paper needs the output-impact analysis
//! instead. What liveness *does* catch is genuinely dead code:
//!
//! * **dead locals** — `let` bindings never read afterwards;
//! * **dead state** — `state` declarations never read anywhere in the
//!   packet loop (write-only state is at best a log sink and at worst a
//!   bug).
//!
//! Exposed in the CLI as `nfactor lint`.

use crate::cfg::build_cfg;
use crate::defuse::{def_use, DefKind};
use nfl_lang::{Program, Span, Stmt, StmtId, StmtKind};
use std::collections::{BTreeSet, HashMap};

/// The liveness solution for one function.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Variables live at the *entry* of each CFG node.
    pub live_in: Vec<BTreeSet<String>>,
    /// Variables live at the *exit* of each CFG node.
    pub live_out: Vec<BTreeSet<String>>,
}

/// Compute liveness for `func` in `program`. `live_at_exit` seeds the
/// exit node (persistent state names, usually).
pub fn liveness(
    program: &Program,
    func: &str,
    live_at_exit: &BTreeSet<String>,
) -> (crate::cfg::Cfg, Liveness) {
    let f = program.function(func).expect("function exists");
    let cfg = build_cfg(f);
    let n = cfg.len();
    let mut stmt_by_id: HashMap<StmtId, &Stmt> = HashMap::new();
    program.for_each_stmt(|s| {
        stmt_by_id.insert(s.id, s);
    });
    let mut uses: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut strong_defs: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    for (node, data) in cfg.nodes.iter().enumerate() {
        if let Some(sid) = data.stmt {
            if let Some(s) = stmt_by_id.get(&sid) {
                let du = def_use(s);
                uses[node] = du.uses.iter().cloned().collect();
                strong_defs[node] = du
                    .defs
                    .iter()
                    .filter(|(_, k)| *k == DefKind::Strong)
                    .map(|(v, _)| v.clone())
                    .collect();
                // Weak defs also *use* the old value; def_use already
                // records that in uses, so nothing more to do.
            }
        }
    }
    let mut live_in: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut live_out: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    live_out[cfg.exit] = live_at_exit.clone();
    live_in[cfg.exit] = live_at_exit.clone();
    let mut order = cfg.rpo();
    order.reverse();
    let mut changed = true;
    while changed {
        changed = false;
        for &node in &order {
            let mut out: BTreeSet<String> = if node == cfg.exit {
                live_at_exit.clone()
            } else {
                BTreeSet::new()
            };
            for s in cfg.succs(node) {
                out.extend(live_in[s].iter().cloned());
            }
            let mut inn: BTreeSet<String> = out
                .iter()
                .filter(|v| !strong_defs[node].contains(*v))
                .cloned()
                .collect();
            inn.extend(uses[node].iter().cloned());
            if inn != live_in[node] || out != live_out[node] {
                live_in[node] = inn;
                live_out[node] = out;
                changed = true;
            }
        }
    }
    (cfg, Liveness { live_in, live_out })
}

/// A diagnostic from the dead-code lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Short machine-readable kind: `dead-local`, `dead-state`,
    /// `write-only-state`.
    pub kind: &'static str,
    /// The variable.
    pub var: String,
    /// Source location of the offending definition (best effort).
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

/// Lint `func`: report `let` bindings whose value is dead immediately
/// after the binding, and `state` declarations never read in the
/// function.
pub fn dead_stores(program: &Program, func: &str) -> Vec<Diagnostic> {
    let mut persistent: BTreeSet<String> = BTreeSet::new();
    for it in program
        .consts
        .iter()
        .chain(&program.configs)
        .chain(&program.states)
    {
        persistent.insert(it.name.clone());
    }
    let (cfg, live) = liveness(program, func, &persistent);
    let mut stmt_by_id: HashMap<StmtId, &Stmt> = HashMap::new();
    program.for_each_stmt(|s| {
        stmt_by_id.insert(s.id, s);
    });
    let mut out = Vec::new();
    // Dead locals: a strong def whose variable is not live-out of the
    // defining node (and is not persistent).
    for node in 0..cfg.len() {
        let Some(sid) = cfg.nodes[node].stmt else {
            continue;
        };
        let Some(s) = stmt_by_id.get(&sid) else {
            continue;
        };
        if let StmtKind::Let { name, .. } = &s.kind {
            if !persistent.contains(name) && !live.live_out[node].contains(name) {
                out.push(Diagnostic {
                    kind: "dead-local",
                    var: name.clone(),
                    span: s.span,
                    message: format!(
                        "the value bound to `{name}` here is never read \
                         (every path overwrites or ignores it)"
                    ),
                });
            }
        }
    }
    // Write-only state: a state var that is defined somewhere in the
    // function but used nowhere (reads of the variable, including weak
    // updates' self-reads, count).
    let mut read_somewhere: BTreeSet<String> = BTreeSet::new();
    let mut written_somewhere: BTreeSet<String> = BTreeSet::new();
    if let Some(f) = program.function(func) {
        fn walk(
            stmts: &[Stmt],
            read: &mut BTreeSet<String>,
            written: &mut BTreeSet<String>,
        ) {
            for s in stmts {
                let du = def_use(s);
                // A weak update (m[k] = v, x = x + 1) reads the old
                // value only incidentally; for the write-only lint we
                // count *real* reads: uses not solely caused by being a
                // weak-update base of the same statement.
                for u in &du.uses {
                    let self_increment = du.defs.iter().any(|(d, _)| d == u);
                    if !self_increment {
                        read.insert(u.clone());
                    }
                }
                for (d, _) in &du.defs {
                    written.insert(d.clone());
                }
                match &s.kind {
                    StmtKind::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        walk(then_branch, read, written);
                        walk(else_branch, read, written);
                    }
                    StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                        walk(body, read, written)
                    }
                    _ => {}
                }
            }
        }
        walk(&f.body, &mut read_somewhere, &mut written_somewhere);
    }
    for st in &program.states {
        if written_somewhere.contains(&st.name) && !read_somewhere.contains(&st.name) {
            out.push(Diagnostic {
                kind: "write-only-state",
                var: st.name.clone(),
                span: st.span,
                message: format!(
                    "state `{}` is only ever written (a log counter at best; \
                     consider whether it should influence forwarding)",
                    st.name
                ),
            });
        } else if !written_somewhere.contains(&st.name) && !read_somewhere.contains(&st.name)
        {
            out.push(Diagnostic {
                kind: "dead-state",
                var: st.name.clone(),
                span: st.span,
                message: format!("state `{}` is never used", st.name),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfl_lang::parse;

    #[test]
    fn dead_local_detected() {
        let p = parse(
            r#"
            fn main() {
                let unused = 42;
                let used = 1;
                let y = used + 1;
                log(y);
            }
        "#,
        )
        .unwrap();
        let diags = dead_stores(&p, "main");
        assert!(diags.iter().any(|d| d.kind == "dead-local" && d.var == "unused"));
        assert!(!diags.iter().any(|d| d.var == "used"));
        // `y` is read by log.
        assert!(!diags.iter().any(|d| d.var == "y" && d.kind == "dead-local"));
    }

    #[test]
    fn write_only_state_detected() {
        let p = parse(
            r#"
            state counter = 0;
            state threshold = 5;
            fn main() {
                counter = counter + 1;
                if threshold > 0 { log(threshold); }
            }
        "#,
        )
        .unwrap();
        let diags = dead_stores(&p, "main");
        assert!(diags
            .iter()
            .any(|d| d.kind == "write-only-state" && d.var == "counter"));
        assert!(!diags.iter().any(|d| d.var == "threshold"));
    }

    #[test]
    fn dead_state_detected() {
        let p = parse(
            r#"
            state never = 0;
            fn main() { let x = 1; log(x); }
        "#,
        )
        .unwrap();
        let diags = dead_stores(&p, "main");
        assert!(diags.iter().any(|d| d.kind == "dead-state" && d.var == "never"));
    }

    #[test]
    fn state_live_at_exit() {
        // A state write at the end of the function is NOT a dead store —
        // the next packet reads it.
        let p = parse(
            r#"
            state nat_port = 1000;
            fn main() {
                let x = nat_port;
                nat_port = x + 1;
                log(x);
            }
        "#,
        )
        .unwrap();
        let diags = dead_stores(&p, "main");
        assert!(
            !diags.iter().any(|d| d.var == "nat_port"),
            "{diags:?}"
        );
    }

    #[test]
    fn liveness_through_branches() {
        let p = parse(
            r#"
            fn main() {
                let a = 1;
                let b = 2;
                if a == 1 { log(b); }
            }
        "#,
        )
        .unwrap();
        let diags = dead_stores(&p, "main");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn loop_carried_liveness() {
        let p = parse(
            r#"
            fn main() {
                let i = 0;
                while i < 10 {
                    i = i + 1;
                }
                log(i);
            }
        "#,
        )
        .unwrap();
        let diags = dead_stores(&p, "main");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
