//! Liveness analysis and dead-store diagnostics.
//!
//! Backward may-analysis over the CFG: a variable is *live* at a point if
//! some path onward reads it before any strong redefinition. Persistent
//! (`state`) variables are live at function exit — the next packet may
//! read them — which is precisely why per-packet liveness alone cannot
//! prune state updates and the paper needs the output-impact analysis
//! instead.
//!
//! This module is a pure dataflow fact provider; the dead-store *lints*
//! built on it (dead locals, dead/write-only state) live in `nfl-lint`
//! and surface through `nfactor lint` as `NFL001`–`NFL003`.

use crate::cfg::build_cfg;
use crate::defuse::{def_use, DefKind};
use nfl_lang::{Program, Stmt, StmtId};
use std::collections::{BTreeSet, HashMap};

/// The liveness solution for one function.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Variables live at the *entry* of each CFG node.
    pub live_in: Vec<BTreeSet<String>>,
    /// Variables live at the *exit* of each CFG node.
    pub live_out: Vec<BTreeSet<String>>,
}

/// Compute liveness for `func` in `program`. `live_at_exit` seeds the
/// exit node (persistent state names, usually).
pub fn liveness(
    program: &Program,
    func: &str,
    live_at_exit: &BTreeSet<String>,
) -> (crate::cfg::Cfg, Liveness) {
    let f = program.function(func).expect("function exists");
    let cfg = build_cfg(f);
    let n = cfg.len();
    let mut stmt_by_id: HashMap<StmtId, &Stmt> = HashMap::new();
    program.for_each_stmt(|s| {
        stmt_by_id.insert(s.id, s);
    });
    let mut uses: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut strong_defs: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    for (node, data) in cfg.nodes.iter().enumerate() {
        if let Some(sid) = data.stmt {
            if let Some(s) = stmt_by_id.get(&sid) {
                let du = def_use(s);
                uses[node] = du.uses.iter().cloned().collect();
                strong_defs[node] = du
                    .defs
                    .iter()
                    .filter(|(_, k)| *k == DefKind::Strong)
                    .map(|(v, _)| v.clone())
                    .collect();
                // Weak defs also *use* the old value; def_use already
                // records that in uses, so nothing more to do.
            }
        }
    }
    let mut live_in: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut live_out: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    live_out[cfg.exit] = live_at_exit.clone();
    live_in[cfg.exit] = live_at_exit.clone();
    let mut order = cfg.rpo();
    order.reverse();
    let mut changed = true;
    while changed {
        changed = false;
        for &node in &order {
            let mut out: BTreeSet<String> = if node == cfg.exit {
                live_at_exit.clone()
            } else {
                BTreeSet::new()
            };
            for s in cfg.succs(node) {
                out.extend(live_in[s].iter().cloned());
            }
            let mut inn: BTreeSet<String> = out
                .iter()
                .filter(|v| !strong_defs[node].contains(*v))
                .cloned()
                .collect();
            inn.extend(uses[node].iter().cloned());
            if inn != live_in[node] || out != live_out[node] {
                live_in[node] = inn;
                live_out[node] = out;
                changed = true;
            }
        }
    }
    (cfg, Liveness { live_in, live_out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfl_lang::parse;

    /// Liveness at the node that defines `var` (its `live_out`).
    fn live_out_of(src: &str, var: &str, exit: &[&str]) -> bool {
        let p = parse(src).unwrap();
        let seed: BTreeSet<String> = exit.iter().map(|s| s.to_string()).collect();
        let (cfg, live) = liveness(&p, "main", &seed);
        let mut stmt_by_id: HashMap<StmtId, &Stmt> = HashMap::new();
        p.for_each_stmt(|s| {
            stmt_by_id.insert(s.id, s);
        });
        for node in 0..cfg.len() {
            let Some(sid) = cfg.nodes[node].stmt else { continue };
            let Some(s) = stmt_by_id.get(&sid) else { continue };
            let defines = def_use(s)
                .defs
                .iter()
                .any(|(d, k)| d == var && *k == DefKind::Strong);
            if defines {
                return live.live_out[node].contains(var);
            }
        }
        panic!("no strong def of {var}");
    }

    #[test]
    fn unused_binding_is_dead() {
        let src = r#"
            fn main() {
                let unused = 42;
                let used = 1;
                let y = used + 1;
                log(y);
            }
        "#;
        assert!(!live_out_of(src, "unused", &[]));
        assert!(live_out_of(src, "used", &[]));
    }

    #[test]
    fn state_live_at_exit() {
        // A state write at the end of the function is NOT dead — the
        // next packet reads it — when the exit seed says so.
        let src = r#"
            state nat_port = 1000;
            fn main() {
                let x = nat_port;
                nat_port = x + 1;
                log(x);
            }
        "#;
        assert!(live_out_of(src, "nat_port", &["nat_port"]));
        assert!(!live_out_of(src, "nat_port", &[]));
    }

    #[test]
    fn liveness_through_branches() {
        let src = r#"
            fn main() {
                let a = 1;
                let b = 2;
                if a == 1 { log(b); }
            }
        "#;
        assert!(live_out_of(src, "a", &[]));
        assert!(live_out_of(src, "b", &[]));
    }

    #[test]
    fn loop_carried_liveness() {
        let src = r#"
            fn main() {
                let i = 0;
                while i < 10 {
                    i = i + 1;
                }
                log(i);
            }
        "#;
        assert!(live_out_of(src, "i", &[]));
    }
}
