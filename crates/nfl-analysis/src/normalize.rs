//! Structure normalisation — the paper's §3.2 "Code Structure".
//!
//! Figure 4 catalogues four NF program shapes:
//!
//! * **(a) one processing loop** — `while true { pkt = recv(); …; send }`
//! * **(b) callback** — `sniff(iface, callback)`
//! * **(c) consumer-producer** — a read loop feeding a queue drained by a
//!   processing loop in another thread
//! * **(d) nested loops** — an accept loop forking per-connection relay
//!   loops over the socket API
//!
//! The paper: *"The code structure of Figure 4b and 4c are easy to
//! transform into that in Figure 4a. Thus, NFactor can be easily applied
//! into these three kinds."* This module performs those transformations,
//! producing the canonical [`PacketLoop`]: a single per-packet processing
//! function. Shape (d) is rejected with [`StructureError::NestedLoop`];
//! the `nf-tcp` crate's socket unfolding turns it into shape (a) first
//! (Figure 5).

use crate::inline::{inline_program, InlineError};
use nfl_lang::{builtins, Expr, ExprKind, Function, Program, Stmt, StmtKind};
use std::fmt;

/// The canonical normalised form: `program.function(func)` is the
/// per-packet processing body, `pkt_param` its packet parameter — the
/// `pktVar` of Algorithm 1.
#[derive(Debug, Clone)]
pub struct PacketLoop {
    /// The transformed program (entry calls inlined, ids renumbered).
    pub program: Program,
    /// Name of the per-packet function.
    pub func: String,
    /// Name of its packet parameter.
    pub pkt_param: String,
}

/// Which of the Figure 4 shapes a program has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structure {
    /// Figure 4a.
    OneLoop,
    /// Figure 4b.
    Callback,
    /// Figure 4c.
    ConsumerProducer,
    /// Figure 4d.
    NestedLoop,
    /// None of the four.
    Unknown,
}

/// Errors raised by normalisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureError {
    /// Shape (d): run the `nf-tcp` socket unfolding first.
    NestedLoop,
    /// The program's main matches no known NF structure.
    Unrecognised(String),
    /// Inlining failed.
    Inline(String),
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureError::NestedLoop => write!(
                f,
                "nested-loop NF (Figure 4d): unfold socket calls with nf-tcp first"
            ),
            StructureError::Unrecognised(m) => write!(f, "unrecognised NF structure: {m}"),
            StructureError::Inline(m) => write!(f, "inlining failed: {m}"),
        }
    }
}

impl std::error::Error for StructureError {}

impl From<InlineError> for StructureError {
    fn from(e: InlineError) -> Self {
        StructureError::Inline(e.to_string())
    }
}

fn is_while_true(s: &Stmt) -> Option<&Vec<Stmt>> {
    if let StmtKind::While { cond, body } = &s.kind {
        if matches!(cond.kind, ExprKind::Bool(true)) {
            return Some(body);
        }
    }
    None
}

fn call_name(e: &Expr) -> Option<(&str, &[Expr])> {
    if let ExprKind::Call(name, args) = &e.kind {
        Some((name.as_str(), args))
    } else {
        None
    }
}

/// Does this statement list (recursively) call a socket builtin?
fn uses_sockets(stmts: &[Stmt]) -> bool {
    let mut found = false;
    fn expr_has_socket(e: &Expr) -> bool {
        e.calls().iter().any(|c| builtins::is_socket(c))
    }
    fn walk(stmts: &[Stmt], found: &mut bool) {
        for s in stmts {
            match &s.kind {
                StmtKind::Let { value, .. } | StmtKind::Return(Some(value))
                    if expr_has_socket(value) => {
                        *found = true;
                    }
                StmtKind::Assign { value, .. }
                    if expr_has_socket(value) => {
                        *found = true;
                    }
                StmtKind::Expr(e)
                    if expr_has_socket(e) => {
                        *found = true;
                    }
                StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    if expr_has_socket(cond) {
                        *found = true;
                    }
                    walk(then_branch, found);
                    walk(else_branch, found);
                }
                StmtKind::While { cond, body } => {
                    if expr_has_socket(cond) {
                        *found = true;
                    }
                    walk(body, found);
                }
                StmtKind::For { body, .. } => walk(body, found),
                _ => {}
            }
        }
    }
    walk(stmts, &mut found);
    found
}

fn has_nested_while_true(body: &[Stmt]) -> bool {
    let mut found = false;
    fn walk(stmts: &[Stmt], found: &mut bool) {
        for s in stmts {
            if is_while_true(s).is_some() {
                *found = true;
            }
            match &s.kind {
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, found);
                    walk(else_branch, found);
                }
                StmtKind::While { body, .. } | StmtKind::For { body, .. } => walk(body, found),
                _ => {}
            }
        }
    }
    walk(body, &mut found);
    found
}

/// Classify a program's `main` into one of the Figure 4 shapes.
pub fn detect_structure(program: &Program) -> Structure {
    let Some(main) = program.function("main") else {
        return Structure::Unknown;
    };
    // (b) callback: a sniff(...) call anywhere in main.
    let sniffs = main
        .body
        .iter()
        .filter_map(|s| {
            if let StmtKind::Expr(e) = &s.kind {
                call_name(e).filter(|(n, _)| *n == "sniff")
            } else {
                None
            }
        })
        .count();
    if sniffs == 1 {
        return Structure::Callback;
    }
    // (c) consumer-producer: two or more spawn(...) calls.
    let spawns: Vec<&str> = main
        .body
        .iter()
        .filter_map(|s| {
            if let StmtKind::Expr(e) = &s.kind {
                if let Some(("spawn", args)) = call_name(e) {
                    if let Some(ExprKind::Var(f)) = args.first().map(|a| &a.kind) {
                        return Some(f.as_str());
                    }
                }
            }
            None
        })
        .collect();
    if spawns.len() >= 2 {
        return Structure::ConsumerProducer;
    }
    // (a)/(d): a top-level while-true loop.
    for s in &main.body {
        if let Some(body) = is_while_true(s) {
            if has_nested_while_true(body) && uses_sockets(body) {
                return Structure::NestedLoop;
            }
            return Structure::OneLoop;
        }
    }
    Structure::Unknown
}

/// The name given to the synthesised per-packet function.
pub const PROCESS_FN: &str = "__process";

fn synth_process_fn(pkt_param: &str, body: Vec<Stmt>) -> Function {
    Function {
        name: PROCESS_FN.to_string(),
        params: vec![(pkt_param.to_string(), "packet".to_string())],
        body,
        span: Default::default(),
    }
}

/// Normalise `program` into the canonical per-packet [`PacketLoop`],
/// applying the Figure 4b/4c→4a transformations and inlining all user
/// calls inside the processing function.
pub fn normalize(program: &Program) -> Result<PacketLoop, StructureError> {
    let structure = detect_structure(program);
    let (mut prog, func, pkt_param) = match structure {
        Structure::Callback => normalize_callback(program)?,
        Structure::OneLoop => normalize_one_loop(program)?,
        Structure::ConsumerProducer => normalize_consumer_producer(program)?,
        Structure::NestedLoop => return Err(StructureError::NestedLoop),
        Structure::Unknown => {
            return Err(StructureError::Unrecognised(
                "main has no sniff/spawn/processing loop".into(),
            ))
        }
    };
    prog.renumber();
    let inlined = inline_program(&prog, &func)?;
    Ok(PacketLoop {
        program: inlined,
        func,
        pkt_param,
    })
}

/// (b) `sniff(cb)` — the callback *is* the per-packet function.
fn normalize_callback(program: &Program) -> Result<(Program, String, String), StructureError> {
    let main = program.function("main").expect("detected");
    for s in &main.body {
        if let StmtKind::Expr(e) = &s.kind {
            if let Some(("sniff", args)) = call_name(e) {
                let ExprKind::Var(cb) = &args[0].kind else {
                    return Err(StructureError::Unrecognised(
                        "sniff callback must be a function name".into(),
                    ));
                };
                let f = program.function(cb).ok_or_else(|| {
                    StructureError::Unrecognised(format!("unknown callback `{cb}`"))
                })?;
                let pkt_param = f
                    .params
                    .first()
                    .map(|(n, _)| n.clone())
                    .ok_or_else(|| {
                        StructureError::Unrecognised("callback takes no packet".into())
                    })?;
                return Ok((program.clone(), cb.clone(), pkt_param));
            }
        }
    }
    unreachable!("detect_structure said Callback")
}

/// (a) `while true { let pkt = recv(); … }` — hoist the loop body into a
/// fresh function parameterised by the packet.
fn normalize_one_loop(program: &Program) -> Result<(Program, String, String), StructureError> {
    let main = program.function("main").expect("detected");
    for s in &main.body {
        if let Some(body) = is_while_true(s) {
            let Some(first) = body.first() else {
                return Err(StructureError::Unrecognised("empty processing loop".into()));
            };
            let StmtKind::Let { name, value } = &first.kind else {
                return Err(StructureError::Unrecognised(
                    "processing loop must start with `let pkt = recv();`".into(),
                ));
            };
            if !matches!(call_name(value), Some(("recv", _))) {
                return Err(StructureError::Unrecognised(
                    "processing loop must start with `let pkt = recv();`".into(),
                ));
            }
            let mut prog = program.clone();
            prog.functions
                .push(synth_process_fn(name, body[1..].to_vec()));
            return Ok((prog, PROCESS_FN.to_string(), name.clone()));
        }
    }
    unreachable!("detect_structure said OneLoop")
}

/// (c) `spawn(read_loop); spawn(proc_loop);` — fuse the producer (recv +
/// q_push) with the consumer (q_pop + process) into a single per-packet
/// function, eliding the queue: the consumer's popped packet becomes the
/// function parameter.
fn normalize_consumer_producer(
    program: &Program,
) -> Result<(Program, String, String), StructureError> {
    let main = program.function("main").expect("detected");
    let mut producer: Option<&Function> = None;
    let mut consumer: Option<&Function> = None;
    for s in &main.body {
        if let StmtKind::Expr(e) = &s.kind {
            if let Some(("spawn", args)) = call_name(e) {
                if let ExprKind::Var(fname) = &args[0].kind {
                    let f = program.function(fname).ok_or_else(|| {
                        StructureError::Unrecognised(format!("unknown thread body `{fname}`"))
                    })?;
                    let text = nfl_lang::pretty::program_to_string(&Program {
                        functions: vec![f.clone()],
                        ..Program::default()
                    });
                    if text.contains("q_push") && text.contains("recv") {
                        producer = Some(f);
                    } else if text.contains("q_pop") {
                        consumer = Some(f);
                    }
                }
            }
        }
    }
    let (Some(_producer), Some(consumer)) = (producer, consumer) else {
        return Err(StructureError::Unrecognised(
            "consumer-producer needs a recv+q_push loop and a q_pop loop".into(),
        ));
    };
    // Consumer shape: while true { let pkt = q_pop(q); … }  (or a bare
    // body with the pop first).
    let body = consumer
        .body
        .iter()
        .find_map(is_while_true)
        .map(|b| b.as_slice())
        .unwrap_or(&consumer.body);
    let Some(first) = body.first() else {
        return Err(StructureError::Unrecognised("empty consumer loop".into()));
    };
    let StmtKind::Let { name, value } = &first.kind else {
        return Err(StructureError::Unrecognised(
            "consumer loop must start with `let pkt = q_pop(q);`".into(),
        ));
    };
    if !matches!(call_name(value), Some(("q_pop", _))) {
        return Err(StructureError::Unrecognised(
            "consumer loop must start with `let pkt = q_pop(q);`".into(),
        ));
    }
    let mut prog = program.clone();
    prog.functions
        .push(synth_process_fn(name, body[1..].to_vec()));
    Ok((prog, PROCESS_FN.to_string(), name.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfl_lang::parse;

    const CALLBACK_SRC: &str = r#"
        state hits = 0;
        fn cb(pkt: packet) {
            hits = hits + 1;
            send(pkt);
        }
        fn main() { sniff(cb, "eth0"); }
    "#;

    const ONE_LOOP_SRC: &str = r#"
        state hits = 0;
        fn main() {
            while true {
                let pkt = recv("eth0");
                hits = hits + 1;
                send(pkt);
            }
        }
    "#;

    const CONSUMER_PRODUCER_SRC: &str = r#"
        state q = queue();
        state hits = 0;
        fn read_loop() {
            while true {
                let pkt = recv();
                q_push(q, pkt);
            }
        }
        fn proc_loop() {
            while true {
                let pkt = q_pop(q);
                hits = hits + 1;
                send(pkt);
            }
        }
        fn main() { spawn(read_loop); spawn(proc_loop); }
    "#;

    const NESTED_SRC: &str = r#"
        state idx = 0;
        config servers = [(1.1.1.1, 80)];
        fn main() {
            let lfd = listen(80);
            while true {
                let cfd = accept(lfd);
                let srv = servers[idx];
                idx = (idx + 1) % len(servers);
                if fork() == 0 {
                    let sfd = connect(srv[0], srv[1]);
                    while true {
                        let which = select2(cfd, sfd);
                        if which == 0 {
                            let buf = sock_read(cfd);
                            sock_write(sfd, buf);
                        } else {
                            let buf = sock_read(sfd);
                            sock_write(cfd, buf);
                        }
                    }
                }
            }
        }
    "#;

    #[test]
    fn detects_all_four_shapes() {
        assert_eq!(
            detect_structure(&parse(CALLBACK_SRC).unwrap()),
            Structure::Callback
        );
        assert_eq!(
            detect_structure(&parse(ONE_LOOP_SRC).unwrap()),
            Structure::OneLoop
        );
        assert_eq!(
            detect_structure(&parse(CONSUMER_PRODUCER_SRC).unwrap()),
            Structure::ConsumerProducer
        );
        assert_eq!(
            detect_structure(&parse(NESTED_SRC).unwrap()),
            Structure::NestedLoop
        );
    }

    #[test]
    fn callback_normalises_to_its_function() {
        let pl = normalize(&parse(CALLBACK_SRC).unwrap()).unwrap();
        assert_eq!(pl.func, "cb");
        assert_eq!(pl.pkt_param, "pkt");
        assert!(pl.program.function("cb").is_some());
    }

    #[test]
    fn one_loop_hoists_body() {
        let pl = normalize(&parse(ONE_LOOP_SRC).unwrap()).unwrap();
        assert_eq!(pl.func, PROCESS_FN);
        assert_eq!(pl.pkt_param, "pkt");
        let f = pl.program.function(PROCESS_FN).unwrap();
        // recv() stripped; processing + send remain.
        let text = nfl_lang::pretty::program_to_string(&pl.program);
        assert!(text.contains("send(pkt)"), "{text}");
        assert_eq!(f.params[0].0, "pkt");
        assert!(
            !format!("{:?}", f.body).contains("recv"),
            "recv removed from per-packet body"
        );
    }

    #[test]
    fn consumer_producer_fuses_queue_away() {
        let pl = normalize(&parse(CONSUMER_PRODUCER_SRC).unwrap()).unwrap();
        assert_eq!(pl.func, PROCESS_FN);
        let f = pl.program.function(PROCESS_FN).unwrap();
        let body_dbg = format!("{:?}", f.body);
        assert!(!body_dbg.contains("q_pop"), "queue elided");
        assert!(body_dbg.contains("send"));
    }

    #[test]
    fn nested_loop_rejected_with_guidance() {
        assert!(matches!(
            normalize(&parse(NESTED_SRC).unwrap()),
            Err(StructureError::NestedLoop)
        ));
    }

    #[test]
    fn unknown_structure_rejected() {
        let p = parse("fn main() { let x = 1; }").unwrap();
        assert!(matches!(
            normalize(&p),
            Err(StructureError::Unrecognised(_))
        ));
    }

    #[test]
    fn normalized_callback_with_helpers_is_inlined() {
        let src = r#"
            state hits = 0;
            fn bump() { hits = hits + 1; }
            fn cb(pkt: packet) {
                bump();
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#;
        let pl = normalize(&parse(src).unwrap()).unwrap();
        let text = nfl_lang::pretty::program_to_string(&pl.program);
        let f_text: String = text
            .lines()
            .skip_while(|l| !l.contains("fn cb"))
            .take_while(|l| !l.starts_with('}'))
            .collect();
        assert!(!f_text.contains("bump()"), "helper inlined:\n{text}");
    }
}
