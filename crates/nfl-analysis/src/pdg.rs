//! The program dependence graph (PDG).
//!
//! Nodes are the CFG's nodes; edges are data dependences (from
//! [`crate::reach`]) plus control dependences (from [`crate::cd`]).
//! A backward slice is backward reachability over this graph from a
//! criterion — exactly `BackwardSlice(stmt, vars)` in the paper's
//! Algorithm 1 (the slicer crate adds the variable-restriction layer).

use crate::cd::control_deps;
use crate::cfg::{build_cfg, Cfg, NodeId};
use crate::reach::{cross_iteration_deps, data_deps, reaching_definitions, Reaching};
use nfl_lang::{Program, StmtId};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// Why one node depends on another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepKind {
    /// `to` reads a variable defined at `from`.
    Data(String),
    /// `to` executes (or not) according to the branch at `from`.
    Control,
}

/// A dependence edge `from → to` (`to` depends on `from`).
#[derive(Debug, Clone)]
pub struct DepEdge {
    /// The definition / branch node.
    pub from: NodeId,
    /// The dependent node.
    pub to: NodeId,
    /// The dependence kind.
    pub kind: DepKind,
}

/// A function's program dependence graph, with its underlying CFG and
/// reaching-definitions solution (reused by the slicer and StateAlyzer).
#[derive(Debug, Clone)]
pub struct Pdg {
    /// The function's CFG.
    pub cfg: Cfg,
    /// All dependence edges.
    pub edges: Vec<DepEdge>,
    /// Reverse adjacency: for each node, indices into `edges` arriving at
    /// it.
    pub incoming: Vec<Vec<usize>>,
    /// The reaching-definitions solution.
    pub reaching: Reaching,
}

impl Pdg {
    /// Build the PDG of `func` in `program`. `boundary_vars` are treated
    /// as defined at function entry (parameters, configs, states, consts).
    pub fn build(program: &Program, func: &str, boundary_vars: &BTreeSet<String>) -> Pdg {
        let f = program
            .function(func)
            .unwrap_or_else(|| panic!("no function `{func}`"));
        Pdg::build_with_cfg(program, boundary_vars, build_cfg(f))
    }

    /// Like [`Pdg::build`], but over an already-constructed CFG, so a
    /// caller that derives the CFG independently (the incremental query
    /// engine memoizes it as its own fact) doesn't rebuild it here.
    pub fn build_with_cfg(program: &Program, boundary_vars: &BTreeSet<String>, cfg: Cfg) -> Pdg {
        let reaching = reaching_definitions(program, &cfg, boundary_vars);
        let mut edges = Vec::new();
        let mut seen: HashSet<(NodeId, NodeId, String)> = HashSet::new();
        for (from, to, var) in data_deps(&cfg, &reaching) {
            if seen.insert((from, to, var.clone())) {
                edges.push(DepEdge {
                    from,
                    to,
                    kind: DepKind::Data(var),
                });
            }
        }
        // Persistent state flows across packets through the implicit
        // packet loop (Figure 1: the NAT entry installed for a flow's
        // first packet serves its later packets).
        let persistent: BTreeSet<String> = program
            .consts
            .iter()
            .chain(&program.configs)
            .chain(&program.states)
            .map(|i| i.name.clone())
            .collect();
        for (from, to, var) in cross_iteration_deps(&cfg, &reaching, &persistent) {
            if seen.insert((from, to, var.clone())) {
                edges.push(DepEdge {
                    from,
                    to,
                    kind: DepKind::Data(var),
                });
            }
        }
        let cd = control_deps(&cfg);
        for (to, froms) in cd.deps.iter().enumerate() {
            for &from in froms {
                edges.push(DepEdge {
                    from,
                    to,
                    kind: DepKind::Control,
                });
            }
        }
        let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); cfg.len()];
        for (i, e) in edges.iter().enumerate() {
            incoming[e.to].push(i);
        }
        Pdg {
            cfg,
            edges,
            incoming,
            reaching,
        }
    }

    /// Backward reachability from `seeds` over dependence edges; returns
    /// all nodes the criterion transitively depends on (seeds included).
    pub fn backward_reachable(&self, seeds: impl IntoIterator<Item = NodeId>) -> HashSet<NodeId> {
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for s in seeds {
            if seen.insert(s) {
                queue.push_back(s);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &ei in &self.incoming[n] {
                let from = self.edges[ei].from;
                if seen.insert(from) {
                    queue.push_back(from);
                }
            }
        }
        seen
    }

    /// Translate a node set into the statement ids it covers.
    pub fn stmts_of(&self, nodes: &HashSet<NodeId>) -> HashSet<StmtId> {
        nodes
            .iter()
            .filter_map(|&n| self.cfg.nodes[n].stmt)
            .collect()
    }

    /// The CFG node of a statement, if it has one.
    pub fn node_of(&self, stmt: StmtId) -> Option<NodeId> {
        self.cfg.stmt_node.get(&stmt).copied()
    }

    /// Dependence sources of `node` as `(from, kind)` pairs.
    pub fn deps_of(&self, node: NodeId) -> Vec<(NodeId, &DepKind)> {
        self.incoming[node]
            .iter()
            .map(|&ei| (self.edges[ei].from, &self.edges[ei].kind))
            .collect()
    }
}

/// Compute the default boundary variable set for a program: all consts,
/// configs, states, plus the parameters of `func`.
pub fn default_boundary(program: &Program, func: &str) -> BTreeSet<String> {
    let mut b: BTreeSet<String> = BTreeSet::new();
    for it in program
        .consts
        .iter()
        .chain(&program.configs)
        .chain(&program.states)
    {
        b.insert(it.name.clone());
    }
    if let Some(f) = program.function(func) {
        for (p, _) in &f.params {
            b.insert(p.clone());
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfl_lang::{parse, StmtKind};

    fn pdg_of(src: &str) -> (nfl_lang::Program, Pdg) {
        let p = parse(src).unwrap();
        let b = default_boundary(&p, "main");
        let pdg = Pdg::build(&p, "main", &b);
        (p, pdg)
    }

    fn node_named(p: &nfl_lang::Program, pdg: &Pdg, name: &str) -> NodeId {
        let mut out = None;
        p.for_each_stmt(|s| {
            if let StmtKind::Let { name: n, .. } = &s.kind {
                if n == name {
                    out = Some(pdg.node_of(s.id).unwrap());
                }
            }
        });
        out.unwrap()
    }

    #[test]
    fn slice_pulls_in_data_and_control() {
        let (p, pdg) = pdg_of(
            r#"fn main() {
                let a = 1;
                let unrelated = 99;
                if a == 1 {
                    let b = a + 1;
                }
            }"#,
        );
        let b = node_named(&p, &pdg, "b");
        let slice = pdg.backward_reachable([b]);
        let a = node_named(&p, &pdg, "a");
        let unrelated = node_named(&p, &pdg, "unrelated");
        assert!(slice.contains(&a), "data dep source in slice");
        assert!(!slice.contains(&unrelated), "unrelated stmt not in slice");
        // The `if` cond node must be there via control dependence.
        let mut if_node = None;
        p.for_each_stmt(|s| {
            if matches!(s.kind, StmtKind::If { .. }) {
                if_node = pdg.node_of(s.id);
            }
        });
        assert!(slice.contains(&if_node.unwrap()), "guard in slice");
    }

    #[test]
    fn transitive_closure() {
        let (p, pdg) = pdg_of(
            "fn main() { let a = 1; let b = a; let c = b; let d = c; }",
        );
        let d = node_named(&p, &pdg, "d");
        let slice = pdg.backward_reachable([d]);
        for v in ["a", "b", "c"] {
            assert!(slice.contains(&node_named(&p, &pdg, v)), "{v} in slice");
        }
    }

    #[test]
    fn boundary_vars_terminate_at_entry() {
        let (p, pdg) = pdg_of("state s = 7; fn main() { let x = s; }");
        let x = node_named(&p, &pdg, "x");
        let slice = pdg.backward_reachable([x]);
        assert!(slice.contains(&pdg.cfg.entry), "entry holds the state def");
    }

    #[test]
    fn stmts_of_drops_synthetic_nodes() {
        let (p, pdg) = pdg_of("fn main() { let a = 1; if a == 1 { let b = 2; } }");
        let all: HashSet<NodeId> = (0..pdg.cfg.len()).collect();
        let stmts = pdg.stmts_of(&all);
        assert_eq!(stmts.len(), p.stmt_count());
    }

    #[test]
    fn loop_slice_includes_header() {
        let (p, pdg) = pdg_of(
            "fn main() { let i = 0; while i < 3 { i = i + 1; } let z = i; }",
        );
        let z = node_named(&p, &pdg, "z");
        let slice = pdg.backward_reachable([z]);
        let mut hdr = None;
        p.for_each_stmt(|s| {
            if matches!(s.kind, StmtKind::While { .. }) {
                hdr = pdg.node_of(s.id);
            }
        });
        assert!(slice.contains(&hdr.unwrap()));
    }
}
