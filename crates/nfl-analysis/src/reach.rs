//! Reaching definitions and data-dependence edges.
//!
//! A worklist dataflow over the CFG: a definition `(var, node)` reaches a
//! program point unless killed by a **strong** redefinition of `var`
//! (weak updates — map inserts, packet-field stores — generate but do not
//! kill, so earlier contents still flow). Data-dependence edges connect a
//! reaching definition to every node that *uses* its variable — the
//! between-statements dependency of the paper's §2.1.
//!
//! Definitions flowing in from outside the function (parameters, `state`
//! and `config` globals) are modelled as definitions at the entry node,
//! so slices correctly extend to the NF's persistent state.
//!
//! Implementation note: definition sites are interned into dense indices
//! and the flow sets are bitsets, so the analysis stays linear-ish even
//! on the paper-scale snort corpus (≈2.6k statements, ≈500 state
//! variables) — the naive `HashSet<(String, NodeId)>` formulation took
//! tens of seconds there; this one takes milliseconds.

use crate::cfg::{Cfg, NodeId};
use crate::defuse::{def_use, DefKind, DefUse};
use nfl_lang::{Program, Stmt};
use std::collections::{BTreeSet, HashMap};

/// A definition site: which variable, at which CFG node.
pub type Def = (String, NodeId);

/// A fixed-width bitset.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(bits: usize) -> BitSet {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`; returns whether anything changed.
    fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            if new != *a {
                *a = new;
                changed = true;
            }
        }
        changed
    }

    /// `self &= !mask`.
    fn subtract(&mut self, mask: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&mask.words) {
            *a &= !*b;
        }
    }

    fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            let mut out = Vec::new();
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                out.push(wi * 64 + b);
                w &= w - 1;
            }
            out
        })
    }
}

/// Result of the reaching-definitions analysis.
#[derive(Debug, Clone)]
pub struct Reaching {
    /// Def/use sets per node (empty for synthetic nodes).
    pub node_du: Vec<DefUse>,
    /// The interned definition sites.
    defs: Vec<Def>,
    /// Definition-site indices per variable.
    def_ids_by_var: HashMap<String, Vec<usize>>,
    /// Per node: the definitions reaching its entry.
    reach_in: Vec<BitSet>,
}

impl Reaching {
    /// The definitions reaching the entry of `node`.
    pub fn reaching_in(&self, node: NodeId) -> impl Iterator<Item = &Def> + '_ {
        self.reach_in[node].iter_ones().map(move |i| &self.defs[i])
    }

    /// Does the definition of `var` at `def_node` reach `use_node`'s
    /// entry?
    pub fn reaches(&self, var: &str, def_node: NodeId, use_node: NodeId) -> bool {
        self.def_ids_by_var
            .get(var)
            .map(|ids| {
                ids.iter()
                    .any(|&i| self.defs[i].1 == def_node && self.reach_in[use_node].get(i))
            })
            .unwrap_or(false)
    }
}

/// Compute reaching definitions for `cfg`, whose statement payloads come
/// from `program`. `boundary_vars` are variables considered defined at
/// entry (parameters + globals).
pub fn reaching_definitions(
    program: &Program,
    cfg: &Cfg,
    boundary_vars: &BTreeSet<String>,
) -> Reaching {
    let n = cfg.len();
    // Def/use per node.
    let mut stmt_by_id: HashMap<nfl_lang::StmtId, &Stmt> = HashMap::new();
    program.for_each_stmt(|s| {
        stmt_by_id.insert(s.id, s);
    });
    let mut node_du: Vec<DefUse> = vec![DefUse::default(); n];
    for (node, data) in cfg.nodes.iter().enumerate() {
        if let Some(sid) = data.stmt {
            if let Some(s) = stmt_by_id.get(&sid) {
                node_du[node] = def_use(s);
            }
        }
    }

    // Intern definition sites: boundary defs at entry, then per-node defs.
    let mut defs: Vec<Def> = Vec::new();
    let mut def_ids_by_var: HashMap<String, Vec<usize>> = HashMap::new();
    let mut intern = |var: &str, node: NodeId, defs: &mut Vec<Def>| {
        let id = defs.len();
        defs.push((var.to_string(), node));
        def_ids_by_var
            .entry(var.to_string())
            .or_default()
            .push(id);
        id
    };
    let mut boundary_ids = Vec::new();
    for v in boundary_vars {
        boundary_ids.push(intern(v, cfg.entry, &mut defs));
    }
    // gen set per node.
    let mut gen_ids: Vec<Vec<usize>> = vec![Vec::new(); n];
    for node in 0..n {
        for (v, _) in &node_du[node].defs {
            gen_ids[node].push(intern(v, node, &mut defs));
        }
    }
    let nbits = defs.len();

    // Kill masks: a node with a strong def of `var` kills every def of
    // `var` except its own gens.
    let mut kill: Vec<BitSet> = vec![BitSet::new(nbits); n];
    for node in 0..n {
        for (v, k) in &node_du[node].defs {
            if *k == DefKind::Strong {
                if let Some(ids) = def_ids_by_var.get(v) {
                    for &i in ids {
                        kill[node].set(i);
                    }
                }
            }
        }
    }
    let mut gen: Vec<BitSet> = vec![BitSet::new(nbits); n];
    for node in 0..n {
        for &i in &gen_ids[node] {
            gen[node].set(i);
        }
    }

    let mut reach_in: Vec<BitSet> = vec![BitSet::new(nbits); n];
    let mut reach_out: Vec<BitSet> = vec![BitSet::new(nbits); n];
    for &i in &boundary_ids {
        reach_out[cfg.entry].set(i);
    }

    let order = cfg.rpo();
    let mut changed = true;
    while changed {
        changed = false;
        for &node in &order {
            if node == cfg.entry {
                continue;
            }
            let mut inset = BitSet::new(nbits);
            for p in cfg.preds(node) {
                inset.union_with(&reach_out[p]);
            }
            let mut outset = inset.clone();
            outset.subtract(&kill[node]);
            outset.union_with(&gen[node]);
            if inset != reach_in[node] {
                reach_in[node] = inset;
                changed = true;
            }
            if outset != reach_out[node] {
                reach_out[node] = outset;
                changed = true;
            }
        }
    }
    Reaching {
        node_du,
        defs,
        def_ids_by_var,
        reach_in,
    }
}

/// A data-dependence edge `from → to`: `to` uses a variable defined at
/// `from` (both CFG node ids; `from` may be the entry node for boundary
/// variables).
pub fn data_deps(cfg: &Cfg, reaching: &Reaching) -> Vec<(NodeId, NodeId, String)> {
    let mut edges = Vec::new();
    for node in 0..cfg.len() {
        for used in &reaching.node_du[node].uses {
            if let Some(ids) = reaching.def_ids_by_var.get(used) {
                for &i in ids {
                    if reaching.reach_in[node].get(i) {
                        let (v, def_node) = &reaching.defs[i];
                        edges.push((*def_node, node, v.clone()));
                    }
                }
            }
        }
    }
    edges
}

/// Loop-carried dependences of the *implicit packet loop*.
///
/// The normalised per-packet function has no enclosing `while` any more,
/// but the NF still runs it once per packet: a `state` variable written
/// while processing packet *k* is read while processing packet *k+1* —
/// the Figure 1 story, where the NAT entry installed for a flow's first
/// packet is the entry looked up for its second. This function adds a
/// def→use edge for every (def, use) pair of each persistent variable,
/// regardless of intra-iteration CFG reachability.
pub fn cross_iteration_deps(
    cfg: &Cfg,
    reaching: &Reaching,
    persistent: &BTreeSet<String>,
) -> Vec<(NodeId, NodeId, String)> {
    // All defs per persistent var.
    let mut defs: Vec<(String, NodeId)> = Vec::new();
    for node in 0..cfg.len() {
        for (v, _) in &reaching.node_du[node].defs {
            if persistent.contains(v) {
                defs.push((v.clone(), node));
            }
        }
    }
    let mut edges = Vec::new();
    for node in 0..cfg.len() {
        for used in &reaching.node_du[node].uses {
            if !persistent.contains(used) {
                continue;
            }
            for (v, def_node) in &defs {
                if v == used {
                    edges.push((*def_node, node, v.clone()));
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use nfl_lang::parse;

    fn analyze(src: &str) -> (nfl_lang::Program, Cfg, Reaching) {
        let p = parse(src).unwrap();
        let f = p.function("main").unwrap();
        let cfg = build_cfg(f);
        let mut boundary: BTreeSet<String> = BTreeSet::new();
        for it in p.configs.iter().chain(&p.states).chain(&p.consts) {
            boundary.insert(it.name.clone());
        }
        for (pn, _) in &f.params {
            boundary.insert(pn.clone());
        }
        let r = reaching_definitions(&p, &cfg, &boundary);
        (p.clone(), cfg, r)
    }

    fn node_of(p: &nfl_lang::Program, cfg: &Cfg, pred: impl Fn(&Stmt) -> bool) -> NodeId {
        let mut found = None;
        p.for_each_stmt(|s| {
            if pred(s) && found.is_none() {
                found = Some(cfg.stmt_node[&s.id]);
            }
        });
        found.expect("no matching stmt")
    }

    #[test]
    fn bitset_basics() {
        let mut b = BitSet::new(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        let mut c = BitSet::new(130);
        c.set(5);
        assert!(c.union_with(&b));
        assert!(!c.union_with(&b), "idempotent");
        c.subtract(&b);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn straight_line_dep() {
        let (p, cfg, r) = analyze("fn main() { let a = 1; let b = a + 1; }");
        let deps = data_deps(&cfg, &r);
        let a_node = node_of(&p, &cfg, |s| {
            matches!(&s.kind, nfl_lang::StmtKind::Let { name, .. } if name == "a")
        });
        let b_node = node_of(&p, &cfg, |s| {
            matches!(&s.kind, nfl_lang::StmtKind::Let { name, .. } if name == "b")
        });
        assert!(deps.iter().any(|(f, t, v)| *f == a_node && *t == b_node && v == "a"));
        assert!(r.reaches("a", a_node, b_node));
    }

    #[test]
    fn strong_redefinition_kills() {
        let (p, cfg, r) = analyze(
            "fn main() { let a = 1; a = 2; let b = a; }",
        );
        let deps = data_deps(&cfg, &r);
        let let_a = node_of(&p, &cfg, |s| {
            matches!(&s.kind, nfl_lang::StmtKind::Let { name, .. } if name == "a")
        });
        let b_node = node_of(&p, &cfg, |s| {
            matches!(&s.kind, nfl_lang::StmtKind::Let { name, .. } if name == "b")
        });
        assert!(
            !deps.iter().any(|(f, t, _)| *f == let_a && *t == b_node),
            "killed def must not reach"
        );
        assert!(!r.reaches("a", let_a, b_node));
    }

    #[test]
    fn weak_update_does_not_kill() {
        let (p, cfg, r) = analyze(
            "state m = map(); fn main() { m[1] = 2; m[3] = 4; let x = m[1]; }",
        );
        let deps = data_deps(&cfg, &r);
        let first = node_of(&p, &cfg, |s| {
            matches!(&s.kind, nfl_lang::StmtKind::Assign { value, .. }
                if matches!(value.kind, nfl_lang::ExprKind::Int(2)))
        });
        let x_node = node_of(&p, &cfg, |s| {
            matches!(&s.kind, nfl_lang::StmtKind::Let { name, .. } if name == "x")
        });
        assert!(
            deps.iter().any(|(f, t, v)| *f == first && *t == x_node && v == "m"),
            "both weak defs of m must reach the read"
        );
    }

    #[test]
    fn branch_merges_defs() {
        let (p, cfg, r) = analyze(
            r#"fn main() {
                let c = 1;
                let x = 0;
                if c == 1 { x = 10; } else { x = 20; }
                let y = x;
            }"#,
        );
        let deps = data_deps(&cfg, &r);
        let y_node = node_of(&p, &cfg, |s| {
            matches!(&s.kind, nfl_lang::StmtKind::Let { name, .. } if name == "y")
        });
        let defs_reaching_y: Vec<_> = deps
            .iter()
            .filter(|(_, t, v)| *t == y_node && v == "x")
            .collect();
        assert_eq!(defs_reaching_y.len(), 2, "both branch defs reach the merge");
    }

    #[test]
    fn loop_carried_dependence() {
        let (p, cfg, r) = analyze(
            "fn main() { let i = 0; while i < 3 { i = i + 1; } }",
        );
        let deps = data_deps(&cfg, &r);
        let assign = node_of(&p, &cfg, |s| {
            matches!(&s.kind, nfl_lang::StmtKind::Assign { .. })
        });
        // i = i + 1 depends on itself around the back edge.
        assert!(
            deps.iter().any(|(f, t, v)| *f == assign && *t == assign && v == "i"),
            "loop-carried self dependence missing"
        );
    }

    #[test]
    fn boundary_state_reaches_use() {
        let (p, cfg, r) = analyze(
            "state rr = 0; fn main() { let x = rr; }",
        );
        let deps = data_deps(&cfg, &r);
        let x_node = node_of(&p, &cfg, |s| {
            matches!(&s.kind, nfl_lang::StmtKind::Let { name, .. } if name == "x")
        });
        assert!(
            deps.iter()
                .any(|(f, t, v)| *f == cfg.entry && *t == x_node && v == "rr"),
            "entry-boundary def of state must reach"
        );
        // The accessor view agrees.
        assert!(r
            .reaching_in(x_node)
            .any(|(v, n)| v == "rr" && *n == cfg.entry));
    }
}
