//! The interpreter proper.
//!
//! [`Interp`] owns the NF's persistent state (the `state` globals, living
//! across packets exactly as the paper's load balancer keeps `f2b_nat`
//! between callback invocations) and executes the per-packet function on
//! demand. `config` and `const` globals are evaluated once and are
//! read-only thereafter; a deployment can override configs before the
//! first packet ([`Interp::set_config`]) — that is the `mode = RR | HASH`
//! knob of Figure 6.

use crate::trace::{Trace, TraceEvent};
use crate::value::{stable_hash, Value};
use nf_packet::{frag, Packet};
use nfl_analysis::normalize::PacketLoop;
use nfl_lang::{BinOp, Expr, ExprKind, ForIter, LValue, Program, Stmt, StmtKind, UnOp};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// Runtime errors. NFL is checked before execution, so most of these
/// indicate corpus bugs rather than user-facing conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Read of an unbound variable.
    Unbound(String),
    /// Operation applied to the wrong runtime type.
    Type(String),
    /// Map lookup for a key that is not present.
    MissingKey(String),
    /// Array/tuple index out of range.
    Index(String),
    /// Arithmetic overflow or division by zero.
    Arith(String),
    /// The per-packet execution exceeded the step budget — an unbounded
    /// loop (the paper's §3.2 requires NF loops be bounded).
    StepLimit,
    /// A socket builtin reached the interpreter; run the `nf-tcp`
    /// unfolding first.
    SocketNotUnfolded(String),
    /// Packet field access failed.
    Packet(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Unbound(v) => write!(f, "unbound variable `{v}`"),
            RuntimeError::Type(m) => write!(f, "type error: {m}"),
            RuntimeError::MissingKey(k) => write!(f, "map has no key {k}"),
            RuntimeError::Index(m) => write!(f, "index error: {m}"),
            RuntimeError::Arith(m) => write!(f, "arithmetic error: {m}"),
            RuntimeError::StepLimit => write!(f, "step limit exceeded (unbounded loop?)"),
            RuntimeError::SocketNotUnfolded(n) => {
                write!(f, "socket builtin `{n}` not unfolded; run nf-tcp first")
            }
            RuntimeError::Packet(m) => write!(f, "packet error: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The observable result of processing one packet.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Packets emitted by `send`, in order.
    pub outputs: Vec<Packet>,
    /// Log lines from `log`.
    pub logs: Vec<String>,
    /// Whether the packet was dropped (no output emitted — the paper's
    /// low-priority default drop action).
    pub dropped: bool,
    /// The dynamic execution trace.
    pub trace: Trace,
}

/// Maximum interpreter steps per packet; NF loops are bounded (§3.2), so
/// hitting this means a corpus bug.
const STEP_LIMIT: usize = 200_000;

enum Flow {
    Normal,
    Return,
    Break,
    Continue,
}

/// The interpreter: program + persistent globals.
#[derive(Debug, Clone)]
pub struct Interp {
    program: Program,
    func: String,
    pkt_param: String,
    /// Globals: consts, configs and states, by name.
    pub globals: HashMap<String, Value>,
    /// Names that are `config`s (settable before the first packet).
    config_names: Vec<String>,
    packets_seen: u64,
}

struct Ctx {
    outputs: Vec<Packet>,
    logs: Vec<String>,
    trace: Trace,
    steps: usize,
    ctrl: Vec<usize>,
}

impl Interp {
    /// Build an interpreter from a normalised packet loop, evaluating all
    /// global initialisers.
    pub fn new(pl: &PacketLoop) -> Result<Interp, RuntimeError> {
        let mut interp = Interp {
            program: pl.program.clone(),
            func: pl.func.clone(),
            pkt_param: pl.pkt_param.clone(),
            globals: HashMap::new(),
            config_names: pl.program.configs.iter().map(|i| i.name.clone()).collect(),
            packets_seen: 0,
        };
        let mut ctx = Ctx {
            outputs: Vec::new(),
            logs: Vec::new(),
            trace: Trace::default(),
            steps: 0,
            ctrl: Vec::new(),
        };
        let items: Vec<_> = pl
            .program
            .consts
            .iter()
            .chain(&pl.program.configs)
            .chain(&pl.program.states)
            .cloned()
            .collect();
        for item in items {
            let mut locals = HashMap::new();
            let v = interp.eval(&item.init, &mut locals, &mut ctx)?;
            interp.globals.insert(item.name.clone(), v);
        }
        Ok(interp)
    }

    /// Override a `config` before processing packets (e.g. the Figure 6
    /// `mode` knob). Returns an error if `name` is not a config.
    pub fn set_config(&mut self, name: &str, v: Value) -> Result<(), RuntimeError> {
        if self.packets_seen > 0 {
            return Err(RuntimeError::Type(
                "configs are fixed once traffic starts".into(),
            ));
        }
        if !self.config_names.iter().any(|c| c == name) {
            return Err(RuntimeError::Unbound(format!("config `{name}`")));
        }
        self.globals.insert(name.to_string(), v);
        Ok(())
    }

    /// Number of packets processed so far.
    pub fn packets_seen(&self) -> u64 {
        self.packets_seen
    }

    /// Reset the processed-packet counter to an earlier value.
    ///
    /// Used by the shard supervisor's per-packet rollback: `process`
    /// bumps the counter before executing, so undoing a failed packet
    /// means restoring both the touched globals *and* this counter
    /// (otherwise a rolled-back run would diverge from a clean one on
    /// `set_config`'s traffic-started check and in accounting).
    pub fn rewind_packets_seen(&mut self, n: u64) {
        self.packets_seen = self.packets_seen.min(n);
    }

    /// Read a global (state inspection for tests and the verifier).
    pub fn global(&self, name: &str) -> Option<&Value> {
        self.globals.get(name)
    }

    /// Process one packet through the per-packet function.
    pub fn process(&mut self, pkt: &Packet) -> Result<StepResult, RuntimeError> {
        self.packets_seen += 1;
        let f = self
            .program
            .function(&self.func)
            .ok_or_else(|| RuntimeError::Unbound(self.func.clone()))?
            .clone();
        let mut locals: HashMap<String, Value> = HashMap::new();
        locals.insert(self.pkt_param.clone(), Value::Packet(pkt.clone()));
        let mut ctx = Ctx {
            outputs: Vec::new(),
            logs: Vec::new(),
            trace: Trace::default(),
            steps: 0,
            ctrl: Vec::new(),
        };
        self.exec_block(&f.body, &mut locals, &mut ctx)?;
        Ok(StepResult {
            dropped: ctx.outputs.is_empty(),
            outputs: ctx.outputs,
            logs: ctx.logs,
            trace: ctx.trace,
        })
    }

    fn exec_block(
        &mut self,
        stmts: &[Stmt],
        locals: &mut HashMap<String, Value>,
        ctx: &mut Ctx,
    ) -> Result<Flow, RuntimeError> {
        for s in stmts {
            match self.exec_stmt(s, locals, ctx)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn record(
        &mut self,
        s: &Stmt,
        uses: Vec<String>,
        defs: Vec<String>,
        branch: Option<bool>,
        emitted: bool,
        ctx: &mut Ctx,
    ) -> usize {
        let ctrl = ctx.ctrl.last().copied();
        ctx.trace.push(TraceEvent {
            stmt: s.id,
            uses,
            defs,
            branch,
            ctrl,
            emitted,
        })
    }

    fn exec_stmt(
        &mut self,
        s: &Stmt,
        locals: &mut HashMap<String, Value>,
        ctx: &mut Ctx,
    ) -> Result<Flow, RuntimeError> {
        ctx.steps += 1;
        if ctx.steps > STEP_LIMIT {
            return Err(RuntimeError::StepLimit);
        }
        let du = nfl_analysis::defuse::def_use(s);
        let uses: Vec<String> = du.uses.iter().cloned().collect();
        let defs: Vec<String> = du.defs.iter().map(|(v, _)| v.clone()).collect();
        match &s.kind {
            StmtKind::Let { name, value } => {
                let emitted_before = ctx.outputs.len();
                let v = self.eval(value, locals, ctx)?;
                locals.insert(name.clone(), v);
                self.record(s, uses, defs, None, ctx.outputs.len() > emitted_before, ctx);
                Ok(Flow::Normal)
            }
            StmtKind::Assign { target, value } => {
                let emitted_before = ctx.outputs.len();
                let v = self.eval(value, locals, ctx)?;
                self.assign(target, v, locals, ctx)?;
                self.record(s, uses, defs, None, ctx.outputs.len() > emitted_before, ctx);
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self
                    .eval(cond, locals, ctx)?
                    .as_bool()
                    .ok_or_else(|| RuntimeError::Type("if condition not bool".into()))?;
                let ev = self.record(s, uses, defs, Some(c), false, ctx);
                ctx.ctrl.push(ev);
                let r = if c {
                    self.exec_block(then_branch, locals, ctx)
                } else {
                    self.exec_block(else_branch, locals, ctx)
                };
                ctx.ctrl.pop();
                r
            }
            StmtKind::While { cond, body } => {
                loop {
                    ctx.steps += 1;
                    if ctx.steps > STEP_LIMIT {
                        return Err(RuntimeError::StepLimit);
                    }
                    let c = self
                        .eval(cond, locals, ctx)?
                        .as_bool()
                        .ok_or_else(|| RuntimeError::Type("while condition not bool".into()))?;
                    let ev = self.record(s, uses.clone(), defs.clone(), Some(c), false, ctx);
                    if !c {
                        break;
                    }
                    ctx.ctrl.push(ev);
                    let flow = self.exec_block(body, locals, ctx)?;
                    ctx.ctrl.pop();
                    match flow {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Continue | Flow::Normal => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For { var, iter, body } => {
                let items: Vec<Value> = match iter {
                    ForIter::Range(lo, hi) => {
                        let lo = self
                            .eval(lo, locals, ctx)?
                            .as_int()
                            .ok_or_else(|| RuntimeError::Type("range bound not int".into()))?;
                        let hi = self
                            .eval(hi, locals, ctx)?
                            .as_int()
                            .ok_or_else(|| RuntimeError::Type("range bound not int".into()))?;
                        (lo..hi).map(Value::Int).collect()
                    }
                    ForIter::Array(a) => match self.eval(a, locals, ctx)? {
                        Value::Array(items) => items,
                        other => {
                            return Err(RuntimeError::Type(format!(
                                "for-in over {}",
                                other.type_name()
                            )))
                        }
                    },
                };
                for item in items {
                    ctx.steps += 1;
                    if ctx.steps > STEP_LIMIT {
                        return Err(RuntimeError::StepLimit);
                    }
                    let ev = self.record(s, uses.clone(), defs.clone(), Some(true), false, ctx);
                    locals.insert(var.clone(), item);
                    ctx.ctrl.push(ev);
                    let flow = self.exec_block(body, locals, ctx)?;
                    ctx.ctrl.pop();
                    match flow {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Continue | Flow::Normal => {}
                    }
                }
                self.record(s, uses, defs, Some(false), false, ctx);
                Ok(Flow::Normal)
            }
            StmtKind::Return(v) => {
                if let Some(e) = v {
                    let val = self.eval(e, locals, ctx)?;
                    locals.insert("__return".into(), val);
                }
                self.record(s, uses, defs, None, false, ctx);
                Ok(Flow::Return)
            }
            StmtKind::Break => {
                self.record(s, uses, defs, None, false, ctx);
                Ok(Flow::Break)
            }
            StmtKind::Continue => {
                self.record(s, uses, defs, None, false, ctx);
                Ok(Flow::Continue)
            }
            StmtKind::Expr(e) => {
                let emitted_before = ctx.outputs.len();
                self.eval(e, locals, ctx)?;
                self.record(s, uses, defs, None, ctx.outputs.len() > emitted_before, ctx);
                Ok(Flow::Normal)
            }
        }
    }

    fn assign(
        &mut self,
        target: &LValue,
        v: Value,
        locals: &mut HashMap<String, Value>,
        ctx: &mut Ctx,
    ) -> Result<(), RuntimeError> {
        match target {
            LValue::Var(name) => {
                if locals.contains_key(name) {
                    locals.insert(name.clone(), v);
                } else if self.globals.contains_key(name) {
                    self.globals.insert(name.clone(), v);
                } else {
                    return Err(RuntimeError::Unbound(name.clone()));
                }
                Ok(())
            }
            LValue::Index(base, key) => {
                let k = self.eval(key, locals, ctx)?;
                let slot = locals
                    .get_mut(base)
                    .or_else(|| self.globals.get_mut(base))
                    .ok_or_else(|| RuntimeError::Unbound(base.clone()))?;
                match slot {
                    Value::Map(m) => {
                        let key = k.as_key().ok_or_else(|| {
                            RuntimeError::Type(format!("{} is not keyable", k.type_name()))
                        })?;
                        m.insert(key, v);
                        Ok(())
                    }
                    Value::Array(a) => {
                        let i = k
                            .as_int()
                            .ok_or_else(|| RuntimeError::Type("array index not int".into()))?;
                        let idx = usize::try_from(i)
                            .map_err(|_| RuntimeError::Index(format!("negative index {i}")))?;
                        if idx >= a.len() {
                            return Err(RuntimeError::Index(format!(
                                "index {idx} out of bounds (len {})",
                                a.len()
                            )));
                        }
                        a[idx] = v;
                        Ok(())
                    }
                    other => Err(RuntimeError::Type(format!(
                        "cannot index-assign into {}",
                        other.type_name()
                    ))),
                }
            }
            LValue::Field(base, field) => {
                let iv = v
                    .as_int()
                    .ok_or_else(|| RuntimeError::Type("packet fields take ints".into()))?;
                let slot = locals
                    .get_mut(base)
                    .or_else(|| self.globals.get_mut(base))
                    .ok_or_else(|| RuntimeError::Unbound(base.clone()))?;
                match slot {
                    Value::Packet(p) => {
                        let uv = u64::try_from(iv).map_err(|_| {
                            RuntimeError::Packet(format!("negative field value {iv}"))
                        })?;
                        p.set(*field, uv)
                            .map_err(|e| RuntimeError::Packet(e.to_string()))
                    }
                    other => Err(RuntimeError::Type(format!(
                        "field store on {}",
                        other.type_name()
                    ))),
                }
            }
        }
    }

    fn lookup(&self, name: &str, locals: &HashMap<String, Value>) -> Result<Value, RuntimeError> {
        locals
            .get(name)
            .or_else(|| self.globals.get(name))
            .cloned()
            .ok_or_else(|| RuntimeError::Unbound(name.to_string()))
    }

    fn eval(
        &mut self,
        e: &Expr,
        locals: &mut HashMap<String, Value>,
        ctx: &mut Ctx,
    ) -> Result<Value, RuntimeError> {
        match &e.kind {
            ExprKind::Int(v) => Ok(Value::Int(*v)),
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::Str(s) => Ok(Value::Str(s.clone())),
            ExprKind::Var(name) => self.lookup(name, locals),
            ExprKind::Field(base, field) => {
                let v = self.lookup(base, locals)?;
                let p = v
                    .as_packet()
                    .ok_or_else(|| RuntimeError::Type(format!("{base} is not a packet")))?;
                let raw = p
                    .get(*field)
                    .map_err(|e| RuntimeError::Packet(e.to_string()))?;
                Ok(Value::Int(raw as i64))
            }
            ExprKind::Tuple(es) => {
                let mut items = Vec::with_capacity(es.len());
                for x in es {
                    let v = self.eval(x, locals, ctx)?;
                    items.push(
                        v.as_int()
                            .ok_or_else(|| RuntimeError::Type("tuple element not int".into()))?,
                    );
                }
                Ok(Value::Tuple(items))
            }
            ExprKind::Array(es) => {
                let mut items = Vec::with_capacity(es.len());
                for x in es {
                    items.push(self.eval(x, locals, ctx)?);
                }
                Ok(Value::Array(items))
            }
            ExprKind::Index(base, idx) => {
                let b = self.eval(base, locals, ctx)?;
                let i = self.eval(idx, locals, ctx)?;
                match b {
                    Value::Map(m) => {
                        let k = i.as_key().ok_or_else(|| {
                            RuntimeError::Type(format!("{} not keyable", i.type_name()))
                        })?;
                        m.get(&k)
                            .cloned()
                            .ok_or_else(|| RuntimeError::MissingKey(k.to_string()))
                    }
                    Value::Array(a) => {
                        let n = i
                            .as_int()
                            .ok_or_else(|| RuntimeError::Type("array index not int".into()))?;
                        let idx = usize::try_from(n)
                            .map_err(|_| RuntimeError::Index(format!("negative index {n}")))?;
                        a.get(idx).cloned().ok_or_else(|| {
                            RuntimeError::Index(format!("index {idx} out of bounds ({})", a.len()))
                        })
                    }
                    Value::Tuple(t) => {
                        let n = i
                            .as_int()
                            .ok_or_else(|| RuntimeError::Type("tuple index not int".into()))?;
                        let idx = usize::try_from(n)
                            .map_err(|_| RuntimeError::Index(format!("negative index {n}")))?;
                        t.get(idx).map(|v| Value::Int(*v)).ok_or_else(|| {
                            RuntimeError::Index(format!("tuple index {idx} (arity {})", t.len()))
                        })
                    }
                    other => Err(RuntimeError::Type(format!(
                        "cannot index {}",
                        other.type_name()
                    ))),
                }
            }
            ExprKind::Binary(op, a, b) => self.eval_binary(*op, a, b, locals, ctx),
            ExprKind::Unary(op, inner) => {
                let v = self.eval(inner, locals, ctx)?;
                match op {
                    UnOp::Neg => v
                        .as_int()
                        .map(|i| Value::Int(-i))
                        .ok_or_else(|| RuntimeError::Type("negating non-int".into())),
                    UnOp::Not => v
                        .as_bool()
                        .map(|b| Value::Bool(!b))
                        .ok_or_else(|| RuntimeError::Type("not of non-bool".into())),
                }
            }
            ExprKind::Call(name, args) => self.eval_call(name, args, locals, ctx),
        }
    }

    fn eval_binary(
        &mut self,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        locals: &mut HashMap<String, Value>,
        ctx: &mut Ctx,
    ) -> Result<Value, RuntimeError> {
        // Short-circuit logic first.
        if matches!(op, BinOp::And | BinOp::Or) {
            let va = self
                .eval(a, locals, ctx)?
                .as_bool()
                .ok_or_else(|| RuntimeError::Type("logical operand not bool".into()))?;
            return match (op, va) {
                (BinOp::And, false) => Ok(Value::Bool(false)),
                (BinOp::Or, true) => Ok(Value::Bool(true)),
                _ => {
                    let vb = self
                        .eval(b, locals, ctx)?
                        .as_bool()
                        .ok_or_else(|| RuntimeError::Type("logical operand not bool".into()))?;
                    Ok(Value::Bool(vb))
                }
            };
        }
        let va = self.eval(a, locals, ctx)?;
        let vb = self.eval(b, locals, ctx)?;
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
            | BinOp::BitAnd | BinOp::BitOr => {
                let x = va
                    .as_int()
                    .ok_or_else(|| RuntimeError::Type("arith operand not int".into()))?;
                let y = vb
                    .as_int()
                    .ok_or_else(|| RuntimeError::Type("arith operand not int".into()))?;
                let r = match op {
                    BinOp::Add => x.checked_add(y),
                    BinOp::Sub => x.checked_sub(y),
                    BinOp::Mul => x.checked_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            return Err(RuntimeError::Arith("division by zero".into()));
                        }
                        x.checked_div(y)
                    }
                    BinOp::Mod => {
                        if y == 0 {
                            return Err(RuntimeError::Arith("mod by zero".into()));
                        }
                        x.checked_rem_euclid(y)
                    }
                    BinOp::BitAnd => Some(x & y),
                    BinOp::BitOr => Some(x | y),
                    _ => unreachable!(),
                };
                r.map(Value::Int)
                    .ok_or_else(|| RuntimeError::Arith("overflow".into()))
            }
            BinOp::Eq => Ok(Value::Bool(va == vb)),
            BinOp::Ne => Ok(Value::Bool(va != vb)),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let x = va
                    .as_int()
                    .ok_or_else(|| RuntimeError::Type("ordering non-ints".into()))?;
                let y = vb
                    .as_int()
                    .ok_or_else(|| RuntimeError::Type("ordering non-ints".into()))?;
                Ok(Value::Bool(match op {
                    BinOp::Lt => x < y,
                    BinOp::Le => x <= y,
                    BinOp::Gt => x > y,
                    BinOp::Ge => x >= y,
                    _ => unreachable!(),
                }))
            }
            BinOp::In | BinOp::NotIn => {
                let contained = match &vb {
                    Value::Map(m) => {
                        let k = va.as_key().ok_or_else(|| {
                            RuntimeError::Type(format!("{} not keyable", va.type_name()))
                        })?;
                        m.contains_key(&k)
                    }
                    Value::Array(items) => items.contains(&va),
                    other => {
                        return Err(RuntimeError::Type(format!(
                            "`in` over {}",
                            other.type_name()
                        )))
                    }
                };
                Ok(Value::Bool(if op == BinOp::In {
                    contained
                } else {
                    !contained
                }))
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    fn eval_call(
        &mut self,
        name: &str,
        args: &[Expr],
        locals: &mut HashMap<String, Value>,
        ctx: &mut Ctx,
    ) -> Result<Value, RuntimeError> {
        // Mutating builtins need l-value access; handle before generic
        // argument evaluation.
        match name {
            "map_remove" => {
                let ExprKind::Var(base) = &args[0].kind else {
                    return Err(RuntimeError::Type("map_remove needs a variable".into()));
                };
                let k = self.eval(&args[1], locals, ctx)?;
                let key = k
                    .as_key()
                    .ok_or_else(|| RuntimeError::Type("unkeyable".into()))?;
                let slot = locals
                    .get_mut(base)
                    .or_else(|| self.globals.get_mut(base))
                    .ok_or_else(|| RuntimeError::Unbound(base.clone()))?;
                if let Value::Map(m) = slot {
                    m.remove(&key);
                    return Ok(Value::Unit);
                }
                return Err(RuntimeError::Type("map_remove on non-map".into()));
            }
            "q_push" => {
                let ExprKind::Var(base) = &args[0].kind else {
                    return Err(RuntimeError::Type("q_push needs a variable".into()));
                };
                let v = self.eval(&args[1], locals, ctx)?;
                let Value::Packet(p) = v else {
                    return Err(RuntimeError::Type("q_push takes a packet".into()));
                };
                let slot = locals
                    .get_mut(base)
                    .or_else(|| self.globals.get_mut(base))
                    .ok_or_else(|| RuntimeError::Unbound(base.clone()))?;
                if let Value::Queue(q) = slot {
                    q.push_back(p);
                    return Ok(Value::Unit);
                }
                return Err(RuntimeError::Type("q_push on non-queue".into()));
            }
            "q_pop" => {
                let ExprKind::Var(base) = &args[0].kind else {
                    return Err(RuntimeError::Type("q_pop needs a variable".into()));
                };
                let slot = locals
                    .get_mut(base)
                    .or_else(|| self.globals.get_mut(base))
                    .ok_or_else(|| RuntimeError::Unbound(base.clone()))?;
                if let Value::Queue(q) = slot {
                    return q
                        .pop_front()
                        .map(Value::Packet)
                        .ok_or_else(|| RuntimeError::Index("pop from empty queue".into()));
                }
                return Err(RuntimeError::Type("q_pop on non-queue".into()));
            }
            _ => {}
        }
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a, locals, ctx)?);
        }
        match name {
            "send" => {
                let p = vals
                    .first()
                    .and_then(|v| v.as_packet())
                    .ok_or_else(|| RuntimeError::Type("send takes a packet".into()))?;
                ctx.outputs.push(p.clone());
                Ok(Value::Unit)
            }
            "drop" => Ok(Value::Unit),
            "log" => {
                let line = vals
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                ctx.logs.push(line);
                Ok(Value::Unit)
            }
            "hash" => Ok(Value::Int(stable_hash(&vals[0]))),
            "len" => match &vals[0] {
                Value::Array(a) => Ok(Value::Int(a.len() as i64)),
                Value::Map(m) => Ok(Value::Int(m.len() as i64)),
                Value::Str(s) => Ok(Value::Int(s.len() as i64)),
                Value::Tuple(t) => Ok(Value::Int(t.len() as i64)),
                Value::Queue(q) => Ok(Value::Int(q.len() as i64)),
                Value::Packet(p) => Ok(Value::Int(p.wire_len() as i64)),
                other => Err(RuntimeError::Type(format!("len of {}", other.type_name()))),
            },
            "min" | "max" => {
                let x = vals[0]
                    .as_int()
                    .ok_or_else(|| RuntimeError::Type("min/max of non-int".into()))?;
                let y = vals[1]
                    .as_int()
                    .ok_or_else(|| RuntimeError::Type("min/max of non-int".into()))?;
                Ok(Value::Int(if name == "min" {
                    x.min(y)
                } else {
                    x.max(y)
                }))
            }
            "checksum" => {
                let p = vals[0]
                    .as_packet()
                    .ok_or_else(|| RuntimeError::Type("checksum of non-packet".into()))?;
                Ok(Value::Int(i64::from(nf_packet::wire::internet_checksum(
                    &p.to_wire(),
                ))))
            }
            "fragment" => {
                let p = vals[0]
                    .as_packet()
                    .ok_or_else(|| RuntimeError::Type("fragment of non-packet".into()))?;
                let size = vals[1]
                    .as_int()
                    .ok_or_else(|| RuntimeError::Type("fragment size not int".into()))?;
                let size = usize::try_from(size)
                    .map_err(|_| RuntimeError::Arith("negative fragment size".into()))?;
                Ok(Value::Array(
                    frag::fragment(p, size.max(8))
                        .into_iter()
                        .map(Value::Packet)
                        .collect(),
                ))
            }
            "map" => Ok(Value::Map(BTreeMap::new())),
            "queue" => Ok(Value::Queue(VecDeque::new())),
            "recv" | "sniff" | "spawn" => Err(RuntimeError::Type(format!(
                "`{name}` must not appear in a per-packet function (normalise first)"
            ))),
            "listen" | "accept" | "connect" | "sock_read" | "sock_write" | "sock_close"
            | "fork" | "select2" => Err(RuntimeError::SocketNotUnfolded(name.to_string())),
            _ => {
                // User function (when interpreting non-inlined programs).
                let f = self
                    .program
                    .function(name)
                    .ok_or_else(|| RuntimeError::Unbound(format!("function `{name}`")))?
                    .clone();
                let mut frame: HashMap<String, Value> = HashMap::new();
                for ((pname, _), v) in f.params.iter().zip(vals) {
                    frame.insert(pname.clone(), v);
                }
                self.exec_block(&f.body, &mut frame, ctx)?;
                Ok(frame.remove("__return").unwrap_or(Value::Unit))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_packet::wire::{parse_ipv4, TcpFlags};
    use nfl_analysis::normalize;
    use nfl_lang::parse_and_check;

    fn interp_of(src: &str) -> Interp {
        let p = parse_and_check(src).unwrap();
        let pl = normalize(&p).unwrap();
        Interp::new(&pl).unwrap()
    }

    const COUNTER_NF: &str = r#"
        config PORT = 80;
        state hits = 0;
        state misses = 0;
        fn cb(pkt: packet) {
            if pkt.tcp.dport == PORT {
                hits = hits + 1;
                send(pkt);
            } else {
                misses = misses + 1;
            }
        }
        fn main() { sniff(cb); }
    "#;

    fn tcp_to(port: u16) -> Packet {
        Packet::tcp(
            parse_ipv4("10.0.0.1").unwrap(),
            1234,
            parse_ipv4("3.3.3.3").unwrap(),
            port,
            TcpFlags::syn(),
        )
    }

    #[test]
    fn forwards_matching_drops_other() {
        let mut i = interp_of(COUNTER_NF);
        let r = i.process(&tcp_to(80)).unwrap();
        assert_eq!(r.outputs.len(), 1);
        assert!(!r.dropped);
        let r2 = i.process(&tcp_to(81)).unwrap();
        assert!(r2.dropped);
        assert_eq!(i.global("hits"), Some(&Value::Int(1)));
        assert_eq!(i.global("misses"), Some(&Value::Int(1)));
    }

    #[test]
    fn state_persists_across_packets() {
        let mut i = interp_of(COUNTER_NF);
        for _ in 0..5 {
            i.process(&tcp_to(80)).unwrap();
        }
        assert_eq!(i.global("hits"), Some(&Value::Int(5)));
    }

    #[test]
    fn set_config_changes_behaviour() {
        let mut i = interp_of(COUNTER_NF);
        i.set_config("PORT", Value::Int(443)).unwrap();
        assert!(i.process(&tcp_to(80)).unwrap().dropped);
        assert!(!i.process(&tcp_to(443)).unwrap().dropped);
    }

    #[test]
    fn set_config_after_traffic_rejected() {
        let mut i = interp_of(COUNTER_NF);
        i.process(&tcp_to(80)).unwrap();
        assert!(i.set_config("PORT", Value::Int(1)).is_err());
    }

    #[test]
    fn nat_map_behaviour() {
        let src = r#"
            state nat = map();
            state next_port = 10000;
            fn cb(pkt: packet) {
                let key = (pkt.ip.src, pkt.tcp.sport);
                if key not in nat {
                    nat[key] = next_port;
                    next_port = next_port + 1;
                }
                pkt.tcp.sport = nat[key];
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#;
        let mut i = interp_of(src);
        let r1 = i.process(&tcp_to(80)).unwrap();
        assert_eq!(r1.outputs[0].get(nf_packet::Field::TcpSport).unwrap(), 10000);
        // Same flow, same mapping.
        let r2 = i.process(&tcp_to(80)).unwrap();
        assert_eq!(r2.outputs[0].get(nf_packet::Field::TcpSport).unwrap(), 10000);
        // Different source port → new mapping.
        let mut other = tcp_to(80);
        other.set(nf_packet::Field::TcpSport, 9999).unwrap();
        let r3 = i.process(&other).unwrap();
        assert_eq!(r3.outputs[0].get(nf_packet::Field::TcpSport).unwrap(), 10001);
    }

    #[test]
    fn trace_records_branches_and_emits() {
        let mut i = interp_of(COUNTER_NF);
        let r = i.process(&tcp_to(80)).unwrap();
        let branch_ev = r
            .trace
            .events
            .iter()
            .find(|e| e.branch.is_some())
            .expect("if recorded");
        assert_eq!(branch_ev.branch, Some(true));
        assert_eq!(r.trace.emit_indices().len(), 1);
        // The send event is controlled by the branch.
        let send_idx = r.trace.emit_indices()[0];
        assert!(r.trace.events[send_idx].ctrl.is_some());
    }

    #[test]
    fn division_by_zero_caught() {
        let src = r#"
            fn cb(pkt: packet) {
                let x = 1 / (pkt.ip.ttl - pkt.ip.ttl);
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#;
        let mut i = interp_of(src);
        assert!(matches!(
            i.process(&tcp_to(80)),
            Err(RuntimeError::Arith(_))
        ));
    }

    #[test]
    fn unbounded_loop_hits_step_limit() {
        let src = r#"
            state n = 0;
            fn cb(pkt: packet) {
                while true {
                    n = n + 1;
                }
            }
            fn main() { sniff(cb); }
        "#;
        let mut i = interp_of(src);
        assert!(matches!(i.process(&tcp_to(80)), Err(RuntimeError::StepLimit)));
    }

    #[test]
    fn fragment_and_forward() {
        let src = r#"
            const MTU = 64;
            fn cb(pkt: packet) {
                for f in fragment(pkt, MTU) {
                    send(f);
                }
            }
            fn main() { sniff(cb); }
        "#;
        let mut i = interp_of(src);
        let mut big = tcp_to(80);
        big.payload = vec![7u8; 300];
        let r = i.process(&big).unwrap();
        assert!(r.outputs.len() > 1, "fragmented into {}", r.outputs.len());
    }

    #[test]
    fn map_remove_builtin() {
        let src = r#"
            state seen = map();
            fn cb(pkt: packet) {
                seen[pkt.ip.src] = 1;
                if pkt.tcp.flags == 17 {
                    map_remove(seen, pkt.ip.src);
                }
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#;
        let mut i = interp_of(src);
        i.process(&tcp_to(80)).unwrap();
        let Value::Map(m) = i.global("seen").unwrap() else {
            panic!()
        };
        assert_eq!(m.len(), 1);
        let mut fin = tcp_to(80);
        fin.set(nf_packet::Field::TcpFlags, 17).unwrap();
        i.process(&fin).unwrap();
        let Value::Map(m) = i.global("seen").unwrap() else {
            panic!()
        };
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn missing_map_key_is_error() {
        let src = r#"
            state nat = map();
            fn cb(pkt: packet) {
                let v = nat[(1, 2)];
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#;
        let mut i = interp_of(src);
        assert!(matches!(
            i.process(&tcp_to(80)),
            Err(RuntimeError::MissingKey(_))
        ));
    }

    #[test]
    fn logs_are_collected() {
        let src = r#"
            fn cb(pkt: packet) {
                log("saw", pkt.tcp.dport);
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#;
        let mut i = interp_of(src);
        let r = i.process(&tcp_to(80)).unwrap();
        assert_eq!(r.logs, vec![r#""saw" 80"#.to_string()]);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use nf_packet::wire::{parse_ipv4, TcpFlags};
    use nfl_analysis::normalize;
    use nfl_lang::parse_and_check;

    fn interp_of(src: &str) -> Interp {
        let p = parse_and_check(src).unwrap();
        Interp::new(&normalize::normalize(&p).unwrap()).unwrap()
    }

    fn pkt() -> Packet {
        Packet::tcp(
            parse_ipv4("10.0.0.1").unwrap(),
            1234,
            parse_ipv4("3.3.3.3").unwrap(),
            80,
            TcpFlags::syn(),
        )
    }

    #[test]
    fn for_range_with_break_and_continue() {
        let mut i = interp_of(
            r#"
            state acc = 0;
            fn cb(pkt: packet) {
                for i in 0..100 {
                    if i == 2 { continue; }
                    if i == 5 { break; }
                    acc = acc + i;
                }
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        i.process(&pkt()).unwrap();
        // 0 + 1 + 3 + 4 = 8 (2 skipped, stop at 5).
        assert_eq!(i.global("acc"), Some(&Value::Int(8)));
    }

    #[test]
    fn tuple_index_out_of_bounds_is_error() {
        let mut i = interp_of(
            r#"
            state t = (1, 2);
            state idx = 5;
            fn cb(pkt: packet) {
                let x = t[idx];
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert!(matches!(i.process(&pkt()), Err(RuntimeError::Index(_))));
    }

    #[test]
    fn array_element_assignment() {
        let mut i = interp_of(
            r#"
            state arr = [10, 20, 30];
            fn cb(pkt: packet) {
                arr[1] = 99;
                pkt.ip.id = arr[1];
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        let out = i.process(&pkt()).unwrap().outputs;
        assert_eq!(out[0].ip_id, 99);
    }

    #[test]
    fn array_store_out_of_bounds_is_error() {
        let mut i = interp_of(
            r#"
            state arr = [1];
            state k = 7;
            fn cb(pkt: packet) {
                arr[k] = 2;
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert!(matches!(i.process(&pkt()), Err(RuntimeError::Index(_))));
    }

    #[test]
    fn min_max_checksum_len_builtins() {
        let mut i = interp_of(
            r#"
            fn cb(pkt: packet) {
                pkt.ip.id = min(7, 3) + max(7, 3);
                let c = checksum(pkt);
                let n = len(pkt);
                if c >= 0 && n > 0 {
                    send(pkt);
                }
            }
            fn main() { sniff(cb); }
        "#,
        );
        let out = i.process(&pkt()).unwrap().outputs;
        assert_eq!(out[0].ip_id, 10);
    }

    #[test]
    fn short_circuit_protects_missing_layer() {
        let mut i = interp_of(
            r#"
            fn cb(pkt: packet) {
                if pkt.ip.proto == 6 && pkt.tcp.flags & 2 != 0 {
                    send(pkt);
                }
            }
            fn main() { sniff(cb); }
        "#,
        );
        // A UDP packet: flags read must be short-circuited away.
        let udp = Packet::udp(1, 2, 3, 80);
        let r = i.process(&udp).unwrap();
        assert!(r.dropped);
        // TCP SYN passes.
        assert!(!i.process(&pkt()).unwrap().dropped);
    }

    #[test]
    fn overflow_is_caught() {
        let mut i = interp_of(
            r#"
            state big = 9223372036854775807;
            fn cb(pkt: packet) {
                big = big + 1;
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert!(matches!(i.process(&pkt()), Err(RuntimeError::Arith(_))));
    }

    #[test]
    fn nested_while_loops() {
        let mut i = interp_of(
            r#"
            state total = 0;
            fn cb(pkt: packet) {
                let i = 0;
                while i < 3 {
                    let j = 0;
                    while j < 4 {
                        total = total + 1;
                        j = j + 1;
                    }
                    i = i + 1;
                }
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        i.process(&pkt()).unwrap();
        assert_eq!(i.global("total"), Some(&Value::Int(12)));
    }

    #[test]
    fn trace_ctrl_nesting_is_dynamic() {
        let mut i = interp_of(
            r#"
            fn cb(pkt: packet) {
                if pkt.ip.ttl > 0 {
                    if pkt.tcp.dport == 80 {
                        send(pkt);
                    }
                }
            }
            fn main() { sniff(cb); }
        "#,
        );
        let r = i.process(&pkt()).unwrap();
        let send_idx = r.trace.emit_indices()[0];
        let inner_ctrl = r.trace.events[send_idx].ctrl.unwrap();
        let outer_ctrl = r.trace.events[inner_ctrl].ctrl.unwrap();
        assert!(r.trace.events[outer_ctrl].ctrl.is_none(), "two levels deep");
    }
}
