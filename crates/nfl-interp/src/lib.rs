//! Concrete interpreter for NFL programs.
//!
//! Runs the canonical per-packet function (a [`nfl_analysis::PacketLoop`])
//! one packet at a time against persistent `state` globals — the ground
//! truth the paper's §5 accuracy experiment compares the synthesized model
//! against ("we generate random inputs (i.e., packets) to both NFactor
//! model and the original program, and test whether they output the same
//! result").
//!
//! Every execution also produces a [`trace::Trace`]: the dynamic sequence
//! of executed statements with their runtime def/use variables and branch
//! outcomes. The trace is what `nfl-slicer`'s *dynamic* slicer consumes
//! (the paper's Figure 1 highlights a dynamic slice, citing Agrawal &
//! Horgan \[3\]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interp;
pub mod trace;
pub mod value;

pub use interp::{Interp, RuntimeError, StepResult};
pub use trace::{Trace, TraceEvent};
pub use value::{Value, ValueKey};
