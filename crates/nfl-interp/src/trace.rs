//! Execution traces.
//!
//! A [`Trace`] is the dynamic record of one packet's journey through the
//! NF: every executed statement, its runtime def/use variables, the
//! outcome of each branch, and the *event index* of the branch instance
//! each statement was controlled by. The dynamic slicer walks this
//! backwards (Agrawal–Horgan \[3\]) to find the statements that *really*
//! contributed to an output, versus the static slice's *might*.

use nfl_lang::StmtId;

/// One executed statement instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The statement that executed.
    pub stmt: StmtId,
    /// Variables the instance read.
    pub uses: Vec<String>,
    /// Variables the instance wrote.
    pub defs: Vec<String>,
    /// For branch statements: which way the condition went.
    pub branch: Option<bool>,
    /// Event index of the innermost enclosing branch instance, if any —
    /// the *dynamic* control dependence.
    pub ctrl: Option<usize>,
    /// Did this instance emit a packet (`send`)?
    pub emitted: bool,
}

/// The full trace of one per-packet execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events in execution order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Record an event, returning its index.
    pub fn push(&mut self, ev: TraceEvent) -> usize {
        self.events.push(ev);
        self.events.len() - 1
    }

    /// Indices of events that emitted packets.
    pub fn emit_indices(&self) -> Vec<usize> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.emitted)
            .map(|(i, _)| i)
            .collect()
    }

    /// The distinct statements executed.
    pub fn executed_stmts(&self) -> Vec<StmtId> {
        let mut v: Vec<StmtId> = self.events.iter().map(|e| e.stmt).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(stmt: u32, emitted: bool) -> TraceEvent {
        TraceEvent {
            stmt: StmtId(stmt),
            uses: vec![],
            defs: vec![],
            branch: None,
            ctrl: None,
            emitted,
        }
    }

    #[test]
    fn emit_indices_finds_sends() {
        let mut t = Trace::default();
        t.push(ev(0, false));
        t.push(ev(1, true));
        t.push(ev(2, false));
        t.push(ev(1, true));
        assert_eq!(t.emit_indices(), vec![1, 3]);
    }

    #[test]
    fn executed_stmts_dedups() {
        let mut t = Trace::default();
        t.push(ev(5, false));
        t.push(ev(5, false));
        t.push(ev(2, false));
        assert_eq!(t.executed_stmts(), vec![StmtId(2), StmtId(5)]);
    }
}
