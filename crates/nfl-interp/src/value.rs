//! Runtime values.
//!
//! NFL has value semantics throughout — assigning a packet or map copies
//! it. (The paper's Python example mutates one packet object in place; our
//! corpus programs never alias, so value semantics is observationally
//! identical and far easier to reason about in the symbolic executor.)

use nf_packet::Packet;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// A hashable map key: the subset of values NFL allows as dictionary keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueKey {
    /// Integer key.
    Int(i64),
    /// Boolean key.
    Bool(bool),
    /// String key.
    Str(String),
    /// Flat integer tuple key (NAT 4-tuples).
    Tuple(Vec<i64>),
}

impl fmt::Display for ValueKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueKey::Int(v) => write!(f, "{v}"),
            ValueKey::Bool(b) => write!(f, "{b}"),
            ValueKey::Str(s) => write!(f, "{s:?}"),
            ValueKey::Tuple(t) => {
                write!(f, "(")?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Flat integer tuple.
    Tuple(Vec<i64>),
    /// Array of values.
    Array(Vec<Value>),
    /// Dictionary. `BTreeMap` keeps iteration deterministic.
    Map(BTreeMap<ValueKey, Value>),
    /// A packet.
    Packet(Packet),
    /// A packet FIFO (consumer-producer programs).
    Queue(VecDeque<Packet>),
    /// No value.
    Unit,
}

impl Value {
    /// Convert to a map key, if this value is keyable.
    pub fn as_key(&self) -> Option<ValueKey> {
        match self {
            Value::Int(v) => Some(ValueKey::Int(*v)),
            Value::Bool(b) => Some(ValueKey::Bool(*b)),
            Value::Str(s) => Some(ValueKey::Str(s.clone())),
            Value::Tuple(t) => Some(ValueKey::Tuple(t.clone())),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Packet view.
    pub fn as_packet(&self) -> Option<&Packet> {
        match self {
            Value::Packet(p) => Some(p),
            _ => None,
        }
    }

    /// A short type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
            Value::Tuple(_) => "tuple",
            Value::Array(_) => "array",
            Value::Map(_) => "map",
            Value::Packet(_) => "packet",
            Value::Queue(_) => "queue",
            Value::Unit => "unit",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Tuple(t) => {
                write!(f, "(")?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Packet(p) => write!(f, "<{p}>"),
            Value::Queue(q) => write!(f, "<queue len={}>", q.len()),
            Value::Unit => write!(f, "()"),
        }
    }
}

/// Deterministic FNV-1a hash of a value — the `hash()` builtin. Stable
/// across runs and platforms so model/program equivalence is meaningful.
pub fn stable_hash(v: &Value) -> i64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fn mix(h: &mut u64, bytes: &[u8]) {
        for b in bytes {
            *h ^= u64::from(*b);
            *h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    fn go(v: &Value, h: &mut u64) {
        match v {
            Value::Int(i) => mix(h, &i.to_le_bytes()),
            Value::Bool(b) => mix(h, &[u8::from(*b)]),
            Value::Str(s) => mix(h, s.as_bytes()),
            Value::Tuple(t) => {
                for i in t {
                    mix(h, &i.to_le_bytes());
                }
            }
            Value::Array(a) => {
                for x in a {
                    go(x, h);
                }
            }
            Value::Map(m) => {
                for (k, x) in m {
                    mix(h, k.to_string().as_bytes());
                    go(x, h);
                }
            }
            Value::Packet(p) => mix(h, &p.to_wire()),
            Value::Queue(q) => {
                for p in q {
                    mix(h, &p.to_wire());
                }
            }
            Value::Unit => {}
        }
    }
    go(v, &mut h);
    // Keep it positive so `hash(x) % n` behaves like the paper's Python.
    (h & 0x7fff_ffff_ffff_ffff) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_roundtrip() {
        assert_eq!(Value::Int(7).as_key(), Some(ValueKey::Int(7)));
        assert_eq!(
            Value::Tuple(vec![1, 2]).as_key(),
            Some(ValueKey::Tuple(vec![1, 2]))
        );
        assert_eq!(Value::Array(vec![]).as_key(), None);
    }

    #[test]
    fn stable_hash_is_deterministic_and_positive() {
        let v = Value::Tuple(vec![167772161, 1234, 50529027, 80]);
        assert_eq!(stable_hash(&v), stable_hash(&v.clone()));
        assert!(stable_hash(&v) >= 0);
        assert_ne!(stable_hash(&v), stable_hash(&Value::Int(0)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Tuple(vec![1, 2]).to_string(), "(1, 2)");
        let mut m = BTreeMap::new();
        m.insert(ValueKey::Int(1), Value::Int(2));
        assert_eq!(Value::Map(m).to_string(), "{1: 2}");
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Unit.type_name(), "unit");
        assert_eq!(Value::Queue(VecDeque::new()).type_name(), "queue");
    }
}
