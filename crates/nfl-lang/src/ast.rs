//! The NFL abstract syntax tree.
//!
//! Every statement carries a unique [`StmtId`] and a [`Span`]; slices are
//! sets of `StmtId`s and Table 2's LoC numbers come from the spans. The
//! tree is deliberately flat and clone-friendly — analyses transform
//! programs by rebuilding statement vectors (inlining, loop normalisation,
//! socket unfolding) rather than by mutating shared nodes.

use crate::span::Span;
use nf_packet::Field;
use std::fmt;

/// Unique identifier of a statement within one [`Program`].
///
/// Ids are dense, assigned in parse order, and re-assigned by
/// [`Program::renumber`] after transformations.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
)]
pub struct StmtId(pub u32);

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `&` bitwise
    BitAnd,
    /// `|` bitwise
    BitOr,
    /// `k in m` — map/array membership.
    In,
    /// `k not in m`.
    NotIn,
}

impl BinOp {
    /// Does this operator produce a boolean?
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
                | BinOp::In
                | BinOp::NotIn
        )
    }

    /// Surface syntax of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::In => "in",
            BinOp::NotIn => "not in",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal (plain, hex, or dotted-quad IPv4).
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// Variable reference.
    Var(String),
    /// Packet field read: `pkt.ip.src`. The `String` is the packet-typed
    /// variable; nested packet expressions are not allowed.
    Field(String, Field),
    /// Tuple literal `(a, b, …)` of integer expressions.
    Tuple(Vec<Expr>),
    /// Array literal `[a, b, …]`.
    Array(Vec<Expr>),
    /// Indexing: map get `m[k]`, array element `a[i]`, or tuple element
    /// `t[0]` (constant index).
    Index(Box<Expr>, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Builtin or user function call.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Convenience constructor with a default span.
    pub fn synthetic(kind: ExprKind) -> Expr {
        Expr {
            kind,
            span: Span::default(),
        }
    }

    /// All variable names read by this expression (including map/array
    /// bases and packet variables).
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match &self.kind {
            ExprKind::Int(_) | ExprKind::Bool(_) | ExprKind::Str(_) => {}
            ExprKind::Var(v) => out.push(v.clone()),
            ExprKind::Field(base, _) => out.push(base.clone()),
            ExprKind::Tuple(es) | ExprKind::Array(es) => {
                for e in es {
                    e.collect_vars(out);
                }
            }
            ExprKind::Index(a, b) | ExprKind::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            ExprKind::Unary(_, e) => e.collect_vars(out),
            ExprKind::Call(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// All function names called anywhere inside this expression.
    pub fn calls(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_calls(&mut out);
        out
    }

    fn collect_calls(&self, out: &mut Vec<String>) {
        match &self.kind {
            ExprKind::Call(name, args) => {
                out.push(name.clone());
                for a in args {
                    a.collect_calls(out);
                }
            }
            ExprKind::Tuple(es) | ExprKind::Array(es) => {
                for e in es {
                    e.collect_calls(out);
                }
            }
            ExprKind::Index(a, b) | ExprKind::Binary(_, a, b) => {
                a.collect_calls(out);
                b.collect_calls(out);
            }
            ExprKind::Unary(_, e) => e.collect_calls(out),
            _ => {}
        }
    }
}

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// `x = …`
    Var(String),
    /// `m[k] = …` (map insert / array store).
    Index(String, Expr),
    /// `pkt.ip.src = …` (packet header rewrite).
    Field(String, Field),
}

impl LValue {
    /// The variable ultimately defined by this l-value (the map or packet
    /// variable itself for indexed/field stores — a *weak* update).
    pub fn base(&self) -> &str {
        match self {
            LValue::Var(v) | LValue::Index(v, _) | LValue::Field(v, _) => v,
        }
    }

    /// Variables *read* in order to perform the store (index keys), plus
    /// the base for weak updates.
    pub fn uses(&self) -> Vec<String> {
        match self {
            LValue::Var(_) => vec![],
            LValue::Index(base, key) => {
                let mut v = key.vars();
                v.push(base.clone());
                v
            }
            LValue::Field(base, _) => vec![base.clone()],
        }
    }
}

/// What a `for` loop iterates over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForIter {
    /// `for i in lo..hi` — an integer range.
    Range(Expr, Expr),
    /// `for x in arr` — the elements of an array expression.
    Array(Expr),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Unique id, dense within the program.
    pub id: StmtId,
    /// Source location.
    pub span: Span,
    /// What the statement is.
    pub kind: StmtKind,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `let x = e;` — introduces a local.
    Let {
        /// The new local's name.
        name: String,
        /// Initializer.
        value: Expr,
    },
    /// `lv = e;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Right-hand side.
        value: Expr,
    },
    /// `if cond { … } else { … }` — `else` may be empty.
    If {
        /// Branch condition; this statement's id is the "condition
        /// statement" Algorithm 1 collects into the match field.
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_branch: Vec<Stmt>,
    },
    /// `while cond { … }` — must be boundable (§3.2).
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for v in iter { … }`.
    For {
        /// Loop variable.
        var: String,
        /// Iteration space.
        iter: ForIter,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return;` or `return e;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A bare expression statement — almost always a call
    /// (`send(pkt);`, `log(…);`, `map_remove(m, k);`).
    Expr(Expr),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters as `(name, declared type)`; the type annotation is a
    /// simple identifier (`packet`, `int`, …) resolved by the checker.
    pub params: Vec<(String, String)>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location of the `fn` keyword.
    pub span: Span,
}

/// A top-level declaration other than a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Declared name.
    pub name: String,
    /// Initializer expression.
    pub init: Expr,
    /// Source location.
    pub span: Span,
}

/// A whole NFL program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// `const` declarations — compile-time constants, folded freely.
    pub consts: Vec<Item>,
    /// `config` declarations — the NF's deploy-time configuration
    /// (candidate `cfgVar`s).
    pub configs: Vec<Item>,
    /// `state` declarations — variables persisting across packets
    /// (candidate `oisVar`s / `logVar`s).
    pub states: Vec<Item>,
    /// Function definitions; the entry point is `main`.
    pub functions: Vec<Function>,
    /// The original source text, kept for LoC accounting and diagnostics.
    pub source: String,
}

impl Program {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Count non-blank, non-comment source lines — the paper's Table 2
    /// "LoC (orig)" metric ("excluding comments").
    pub fn loc(&self) -> usize {
        self.source
            .lines()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with("//") && !t.starts_with('#')
            })
            .count()
    }

    /// Visit every statement in the program (pre-order, nested bodies
    /// included).
    pub fn for_each_stmt<'a>(&'a self, mut f: impl FnMut(&'a Stmt)) {
        fn walk<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
            for s in stmts {
                f(s);
                match &s.kind {
                    StmtKind::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        walk(then_branch, f);
                        walk(else_branch, f);
                    }
                    StmtKind::While { body, .. } | StmtKind::For { body, .. } => walk(body, f),
                    _ => {}
                }
            }
        }
        for func in &self.functions {
            walk(&func.body, &mut f);
        }
    }

    /// Total number of statements.
    pub fn stmt_count(&self) -> usize {
        let mut n = 0;
        self.for_each_stmt(|_| n += 1);
        n
    }

    /// Reassign dense statement ids in visit order. Returns the number of
    /// statements. Call after any transformation that clones statements.
    pub fn renumber(&mut self) -> usize {
        fn walk(stmts: &mut [Stmt], next: &mut u32) {
            for s in stmts {
                s.id = StmtId(*next);
                *next += 1;
                match &mut s.kind {
                    StmtKind::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        walk(then_branch, next);
                        walk(else_branch, next);
                    }
                    StmtKind::While { body, .. } | StmtKind::For { body, .. } => walk(body, next),
                    _ => {}
                }
            }
        }
        let mut next = 0;
        for func in &mut self.functions {
            walk(&mut func.body, &mut next);
        }
        next as usize
    }

    /// Look up a statement by id.
    pub fn stmt(&self, id: StmtId) -> Option<&Stmt> {
        let mut found = None;
        self.for_each_stmt(|s| {
            if s.id == id {
                found = Some(s);
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Expr {
        Expr::synthetic(ExprKind::Int(v))
    }

    #[test]
    fn expr_vars_collects_all() {
        let e = Expr::synthetic(ExprKind::Binary(
            BinOp::Add,
            Box::new(Expr::synthetic(ExprKind::Var("a".into()))),
            Box::new(Expr::synthetic(ExprKind::Index(
                Box::new(Expr::synthetic(ExprKind::Var("m".into()))),
                Box::new(Expr::synthetic(ExprKind::Var("k".into()))),
            ))),
        ));
        let mut vars = e.vars();
        vars.sort();
        assert_eq!(vars, vec!["a", "k", "m"]);
    }

    #[test]
    fn field_expr_reads_packet_var() {
        let e = Expr::synthetic(ExprKind::Field("pkt".into(), Field::IpSrc));
        assert_eq!(e.vars(), vec!["pkt"]);
    }

    #[test]
    fn lvalue_base_and_uses() {
        let lv = LValue::Index("m".into(), Expr::synthetic(ExprKind::Var("k".into())));
        assert_eq!(lv.base(), "m");
        let mut uses = lv.uses();
        uses.sort();
        assert_eq!(uses, vec!["k", "m"]);
        assert!(LValue::Var("x".into()).uses().is_empty());
    }

    #[test]
    fn renumber_is_dense_and_preorder() {
        let mk = |kind| Stmt {
            id: StmtId(99),
            span: Span::default(),
            kind,
        };
        let mut p = Program {
            functions: vec![Function {
                name: "f".into(),
                params: vec![],
                body: vec![
                    mk(StmtKind::Let {
                        name: "x".into(),
                        value: int(1),
                    }),
                    mk(StmtKind::If {
                        cond: Expr::synthetic(ExprKind::Bool(true)),
                        then_branch: vec![mk(StmtKind::Return(None))],
                        else_branch: vec![mk(StmtKind::Break)],
                    }),
                ],
                span: Span::default(),
            }],
            ..Program::default()
        };
        assert_eq!(p.renumber(), 4);
        let mut ids = Vec::new();
        p.for_each_stmt(|s| ids.push(s.id.0));
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert!(p.stmt(StmtId(3)).is_some());
        assert!(p.stmt(StmtId(4)).is_none());
    }

    #[test]
    fn loc_skips_comments_and_blanks() {
        let p = Program {
            source: "let x = 1;\n\n// comment\n# also\nlet y = 2;\n".into(),
            ..Program::default()
        };
        assert_eq!(p.loc(), 2);
    }

    #[test]
    fn expr_calls_nested() {
        let e = Expr::synthetic(ExprKind::Call(
            "hash".into(),
            vec![Expr::synthetic(ExprKind::Call("len".into(), vec![]))],
        ));
        assert_eq!(e.calls(), vec!["hash", "len"]);
    }
}
