//! The NFL builtin function table.
//!
//! §3.1 of the paper: *"NF programs usually use standard library or system
//! functions to exchange packets with the OS kernel/network devices — thus,
//! NFactor leverages this knowledge to locate packet read/write statements
//! in the program."* This table is that knowledge, made explicit: every
//! builtin carries an [`Effect`] so the analyses can recognise packet I/O
//! (`send` is `PKT_OUTPUT_FUNC` in Algorithm 1), logging (pruned from
//! slices), and socket calls with hidden OS state (unfolded by `nf-tcp`).

use crate::types::Ty;

/// The analysis-relevant effect of a builtin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Effect {
    /// No side effect; value depends only on arguments.
    Pure,
    /// Reads one packet from the wire (`recv`). Its result is the packet
    /// variable (`pktVar`).
    PacketInput,
    /// Writes a packet to the wire (`send`). Slicing criteria start here.
    PacketOutput,
    /// Explicitly discards the packet (`drop` — usually implicit, §3.2
    /// "Drop Action").
    Drop,
    /// Writes to the log. `logVar`s flow only into these.
    Log,
    /// A socket API call whose semantics live in the OS TCP state machine
    /// (§3.2 "Hidden States"); replaced by `nf-tcp`'s unfolding pass.
    Socket,
    /// Mutates its first argument in place (map/queue operations).
    Mutator,
    /// Registers a callback packet loop (`sniff`) — the Figure 4b
    /// structure, normalised away by `nfl-analysis`.
    Loop,
}

/// Signature and classification of one builtin.
#[derive(Debug, Clone)]
pub struct Builtin {
    /// Callable name.
    pub name: &'static str,
    /// Minimum number of arguments.
    pub min_args: usize,
    /// Maximum number of arguments.
    pub max_args: usize,
    /// Parameter types (padded with [`Ty::Unknown`] = any for variadic
    /// tails).
    pub params: &'static [Ty],
    /// Return type.
    pub ret: Ty,
    /// Effect classification.
    pub effect: Effect,
    /// Index of an argument that is mutated in place, if any.
    pub mutates: Option<usize>,
}

/// The full builtin table.
pub const BUILTINS: &[Builtin] = &[
    // Packet I/O ---------------------------------------------------------
    Builtin {
        name: "recv",
        min_args: 0,
        max_args: 1, // optional interface name
        params: &[Ty::Str],
        ret: Ty::Packet,
        effect: Effect::PacketInput,
        mutates: None,
    },
    Builtin {
        name: "send",
        min_args: 1,
        max_args: 2, // optional interface name
        params: &[Ty::Packet, Ty::Str],
        ret: Ty::Unit,
        effect: Effect::PacketOutput,
        mutates: None,
    },
    Builtin {
        name: "drop",
        min_args: 0,
        max_args: 1,
        params: &[Ty::Packet],
        ret: Ty::Unit,
        effect: Effect::Drop,
        mutates: None,
    },
    Builtin {
        name: "sniff",
        min_args: 1,
        max_args: 2, // callback, optional interface
        params: &[Ty::Unknown, Ty::Str],
        ret: Ty::Unit,
        effect: Effect::Loop,
        mutates: None,
    },
    Builtin {
        name: "spawn",
        min_args: 1,
        max_args: 1, // a zero-argument thread body function
        params: &[Ty::Unknown],
        ret: Ty::Unit,
        effect: Effect::Loop,
        mutates: None,
    },
    // Logging -------------------------------------------------------------
    Builtin {
        name: "log",
        min_args: 1,
        max_args: 4,
        params: &[Ty::Unknown, Ty::Unknown, Ty::Unknown, Ty::Unknown],
        ret: Ty::Unit,
        effect: Effect::Log,
        mutates: None,
    },
    // Pure helpers ---------------------------------------------------------
    Builtin {
        name: "hash",
        min_args: 1,
        max_args: 1,
        params: &[Ty::Unknown],
        ret: Ty::Int,
        effect: Effect::Pure,
        mutates: None,
    },
    Builtin {
        name: "len",
        min_args: 1,
        max_args: 1,
        params: &[Ty::Unknown],
        ret: Ty::Int,
        effect: Effect::Pure,
        mutates: None,
    },
    Builtin {
        name: "min",
        min_args: 2,
        max_args: 2,
        params: &[Ty::Int, Ty::Int],
        ret: Ty::Int,
        effect: Effect::Pure,
        mutates: None,
    },
    Builtin {
        name: "max",
        min_args: 2,
        max_args: 2,
        params: &[Ty::Int, Ty::Int],
        ret: Ty::Int,
        effect: Effect::Pure,
        mutates: None,
    },
    Builtin {
        name: "checksum",
        min_args: 1,
        max_args: 1,
        params: &[Ty::Packet],
        ret: Ty::Int,
        effect: Effect::Pure,
        mutates: None,
    },
    Builtin {
        name: "fragment",
        min_args: 2,
        max_args: 2,
        params: &[Ty::Packet, Ty::Int],
        ret: Ty::ARRAY_OF_PACKET,
        effect: Effect::Pure,
        mutates: None,
    },
    // Constructors ---------------------------------------------------------
    Builtin {
        name: "map",
        min_args: 0,
        max_args: 0,
        params: &[],
        ret: Ty::MAP_UNKNOWN,
        effect: Effect::Pure,
        mutates: None,
    },
    Builtin {
        name: "queue",
        min_args: 0,
        max_args: 0,
        params: &[],
        ret: Ty::Queue,
        effect: Effect::Pure,
        mutates: None,
    },
    // Mutators --------------------------------------------------------------
    Builtin {
        name: "map_remove",
        min_args: 2,
        max_args: 2,
        params: &[Ty::MAP_UNKNOWN, Ty::Unknown],
        ret: Ty::Unit,
        effect: Effect::Mutator,
        mutates: Some(0),
    },
    Builtin {
        name: "q_push",
        min_args: 2,
        max_args: 2,
        params: &[Ty::Queue, Ty::Packet],
        ret: Ty::Unit,
        effect: Effect::Mutator,
        mutates: Some(0),
    },
    Builtin {
        name: "q_pop",
        min_args: 1,
        max_args: 1,
        params: &[Ty::Queue],
        ret: Ty::Packet,
        effect: Effect::Mutator,
        mutates: Some(0),
    },
    // Socket API (hidden TCP state; unfolded by nf-tcp) ---------------------
    Builtin {
        name: "listen",
        min_args: 1,
        max_args: 1,
        params: &[Ty::Int], // port
        ret: Ty::Int,       // listening fd
        effect: Effect::Socket,
        mutates: None,
    },
    Builtin {
        name: "accept",
        min_args: 1,
        max_args: 1,
        params: &[Ty::Int], // listening fd
        ret: Ty::Int,       // connection fd
        effect: Effect::Socket,
        mutates: None,
    },
    Builtin {
        name: "connect",
        min_args: 2,
        max_args: 2,
        params: &[Ty::Int, Ty::Int], // addr, port
        ret: Ty::Int,                // connection fd
        effect: Effect::Socket,
        mutates: None,
    },
    Builtin {
        name: "sock_read",
        min_args: 1,
        max_args: 1,
        params: &[Ty::Int],
        ret: Ty::Packet, // a buffer, viewed as payload-only packet
        effect: Effect::Socket,
        mutates: None,
    },
    Builtin {
        name: "sock_write",
        min_args: 2,
        max_args: 2,
        params: &[Ty::Int, Ty::Packet],
        ret: Ty::Unit,
        effect: Effect::Socket,
        mutates: None,
    },
    Builtin {
        name: "sock_close",
        min_args: 1,
        max_args: 1,
        params: &[Ty::Int],
        ret: Ty::Unit,
        effect: Effect::Socket,
        mutates: None,
    },
    Builtin {
        name: "fork",
        min_args: 0,
        max_args: 0,
        params: &[],
        ret: Ty::Int, // 0 in child, 1 in parent (simplified)
        effect: Effect::Socket,
        mutates: None,
    },
    Builtin {
        name: "select2",
        min_args: 2,
        max_args: 2,
        params: &[Ty::Int, Ty::Int],
        ret: Ty::Int, // which fd is readable: 0 or 1
        effect: Effect::Socket,
        mutates: None,
    },
];

/// Look up a builtin by name.
pub fn lookup(name: &str) -> Option<&'static Builtin> {
    BUILTINS.iter().find(|b| b.name == name)
}

/// Is `name` the packet output function (`PKT_OUTPUT_FUNC` of Algorithm 1)?
pub fn is_packet_output(name: &str) -> bool {
    lookup(name).map(|b| b.effect == Effect::PacketOutput) == Some(true)
}

/// Is `name` the packet input function?
pub fn is_packet_input(name: &str) -> bool {
    lookup(name).map(|b| b.effect == Effect::PacketInput) == Some(true)
}

/// Is `name` a socket builtin with hidden OS state?
pub fn is_socket(name: &str) -> bool {
    lookup(name).map(|b| b.effect == Effect::Socket) == Some(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_known_and_unknown() {
        assert!(lookup("send").is_some());
        assert!(lookup("frobnicate").is_none());
    }

    #[test]
    fn effect_queries() {
        assert!(is_packet_output("send"));
        assert!(!is_packet_output("recv"));
        assert!(is_packet_input("recv"));
        assert!(is_socket("accept"));
        assert!(!is_socket("hash"));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = BUILTINS.iter().map(|b| b.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn arg_bounds_consistent() {
        for b in BUILTINS {
            assert!(b.min_args <= b.max_args, "{}", b.name);
            assert!(b.params.len() >= b.max_args.min(b.params.len()));
            if let Some(i) = b.mutates {
                assert!(i < b.max_args, "{} mutates out-of-range arg", b.name);
            }
        }
    }
}
