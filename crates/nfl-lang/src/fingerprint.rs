//! Stable structural fingerprints of NFL programs and functions.
//!
//! The incremental query engine (`nf-query`) keys every derived
//! analysis fact on the *content* of the program it was computed from,
//! not on the raw source text: two parses whose ASTs agree — including
//! spans, statement ids, and literal values, but excluding comments and
//! whitespace that no span covers — must fingerprint identically, so
//! that a trivia-only edit re-runs the parser and then *early-cuts*
//! every downstream pass. Conversely, any edit that moves a span (and
//! would therefore move a diagnostic) must change the fingerprint, so
//! span data is deliberately part of the hash.
//!
//! The hash is a 64-bit FNV-1a over a deterministic pre-order walk of
//! the AST. It is stable within a process and across runs of the same
//! build (no randomized hasher state); it is *not* a cross-version
//! serialization format.

use crate::ast::{
    Expr, ExprKind, ForIter, Function, Item, LValue, Program, Stmt, StmtKind, UnOp,
};
use crate::span::Span;

/// 64-bit FNV-1a, the workhorse behind all fingerprints.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    /// Fold one byte.
    pub fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    /// Fold a byte slice.
    pub fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    /// Fold a `u64` (little-endian bytes).
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Fold a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Hash a string with FNV-1a (convenience for error strings etc.).
pub fn fnv64_str(s: &str) -> u64 {
    let mut h = Fnv64::new();
    h.str(s);
    h.finish()
}

/// Combine two digests non-commutatively.
pub fn mix(a: u64, b: u64) -> u64 {
    let mut h = Fnv64::new();
    h.u64(a);
    h.u64(b);
    h.finish()
}

fn hash_span(h: &mut Fnv64, s: Span) {
    h.u64(s.start as u64);
    h.u64(s.end as u64);
    h.u64(u64::from(s.line));
}

fn hash_expr(h: &mut Fnv64, e: &Expr) {
    hash_span(h, e.span);
    match &e.kind {
        ExprKind::Int(v) => {
            h.byte(0);
            h.u64(*v as u64);
        }
        ExprKind::Bool(v) => {
            h.byte(1);
            h.byte(u8::from(*v));
        }
        ExprKind::Str(s) => {
            h.byte(2);
            h.str(s);
        }
        ExprKind::Var(v) => {
            h.byte(3);
            h.str(v);
        }
        ExprKind::Field(base, f) => {
            h.byte(4);
            h.str(base);
            h.str(f.path());
        }
        ExprKind::Tuple(es) => {
            h.byte(5);
            h.u64(es.len() as u64);
            for x in es {
                hash_expr(h, x);
            }
        }
        ExprKind::Array(es) => {
            h.byte(6);
            h.u64(es.len() as u64);
            for x in es {
                hash_expr(h, x);
            }
        }
        ExprKind::Index(a, b) => {
            h.byte(7);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        ExprKind::Binary(op, a, b) => {
            h.byte(8);
            h.str(op.symbol());
            hash_expr(h, a);
            hash_expr(h, b);
        }
        ExprKind::Unary(op, a) => {
            h.byte(9);
            h.byte(match op {
                UnOp::Neg => 0,
                UnOp::Not => 1,
            });
            hash_expr(h, a);
        }
        ExprKind::Call(name, args) => {
            h.byte(10);
            h.str(name);
            h.u64(args.len() as u64);
            for a in args {
                hash_expr(h, a);
            }
        }
    }
}

fn hash_lvalue(h: &mut Fnv64, lv: &LValue) {
    match lv {
        LValue::Var(v) => {
            h.byte(0);
            h.str(v);
        }
        LValue::Index(base, key) => {
            h.byte(1);
            h.str(base);
            hash_expr(h, key);
        }
        LValue::Field(base, f) => {
            h.byte(2);
            h.str(base);
            h.str(f.path());
        }
    }
}

fn hash_stmt(h: &mut Fnv64, s: &Stmt) {
    h.u64(u64::from(s.id.0));
    hash_span(h, s.span);
    match &s.kind {
        StmtKind::Let { name, value } => {
            h.byte(0);
            h.str(name);
            hash_expr(h, value);
        }
        StmtKind::Assign { target, value } => {
            h.byte(1);
            hash_lvalue(h, target);
            hash_expr(h, value);
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            h.byte(2);
            hash_expr(h, cond);
            hash_stmts(h, then_branch);
            hash_stmts(h, else_branch);
        }
        StmtKind::While { cond, body } => {
            h.byte(3);
            hash_expr(h, cond);
            hash_stmts(h, body);
        }
        StmtKind::For { var, iter, body } => {
            h.byte(4);
            h.str(var);
            match iter {
                ForIter::Range(lo, hi) => {
                    h.byte(0);
                    hash_expr(h, lo);
                    hash_expr(h, hi);
                }
                ForIter::Array(a) => {
                    h.byte(1);
                    hash_expr(h, a);
                }
            }
            hash_stmts(h, body);
        }
        StmtKind::Return(e) => {
            h.byte(5);
            match e {
                None => h.byte(0),
                Some(x) => {
                    h.byte(1);
                    hash_expr(h, x);
                }
            }
        }
        StmtKind::Break => h.byte(6),
        StmtKind::Continue => h.byte(7),
        StmtKind::Expr(e) => {
            h.byte(8);
            hash_expr(h, e);
        }
    }
}

fn hash_stmts(h: &mut Fnv64, stmts: &[Stmt]) {
    h.u64(stmts.len() as u64);
    for s in stmts {
        hash_stmt(h, s);
    }
}

fn hash_item(h: &mut Fnv64, it: &Item) {
    h.str(&it.name);
    hash_span(h, it.span);
    hash_expr(h, &it.init);
}

/// Fingerprint of one function: name, parameters, body, and spans.
pub fn function_fingerprint(f: &Function) -> u64 {
    let mut h = Fnv64::new();
    h.str(&f.name);
    hash_span(&mut h, f.span);
    h.u64(f.params.len() as u64);
    for (name, ty) in &f.params {
        h.str(name);
        h.str(ty);
    }
    hash_stmts(&mut h, &f.body);
    h.finish()
}

/// Fingerprint of a whole program: every `const`/`config`/`state`
/// declaration plus every function, in declaration order. The raw
/// `source` text is deliberately **not** hashed — trivia-only edits
/// (comments, whitespace past the last span) keep the fingerprint
/// stable, which is what lets an incremental engine early-cut after a
/// re-parse.
pub fn program_fingerprint(p: &Program) -> u64 {
    let mut h = Fnv64::new();
    for (tag, items) in [(0u8, &p.consts), (1, &p.configs), (2, &p.states)] {
        h.byte(tag);
        h.u64(items.len() as u64);
        for it in items {
            hash_item(&mut h, it);
        }
    }
    h.u64(p.functions.len() as u64);
    for f in &p.functions {
        h.u64(function_fingerprint(f));
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_check;

    const BASE: &str = "\
state hits = 0;
fn cb(pkt: packet) { hits = hits + 1; send(pkt); }
fn main() { sniff(cb); }
";

    #[test]
    fn identical_source_identical_fingerprint() {
        let a = parse_and_check(BASE).unwrap();
        let b = parse_and_check(BASE).unwrap();
        assert_eq!(program_fingerprint(&a), program_fingerprint(&b));
    }

    #[test]
    fn trailing_comment_is_invisible() {
        let a = parse_and_check(BASE).unwrap();
        let b = parse_and_check(&format!("{BASE}// a trailing comment\n")).unwrap();
        assert_eq!(program_fingerprint(&a), program_fingerprint(&b));
    }

    #[test]
    fn leading_comment_shifts_spans_and_fingerprint() {
        let a = parse_and_check(BASE).unwrap();
        let b = parse_and_check(&format!("// leading\n{BASE}")).unwrap();
        assert_ne!(program_fingerprint(&a), program_fingerprint(&b));
    }

    #[test]
    fn semantic_edit_changes_fingerprint() {
        let a = parse_and_check(BASE).unwrap();
        let b = parse_and_check(&BASE.replace("hits + 1", "hits + 2")).unwrap();
        assert_ne!(program_fingerprint(&a), program_fingerprint(&b));
    }

    #[test]
    fn per_function_fingerprints_are_independent() {
        let a = parse_and_check(BASE).unwrap();
        let b = parse_and_check(&BASE.replace("sniff(cb)", "sniff( cb )")).unwrap();
        // Editing main's whitespace inside its span region may move
        // main's spans but must not disturb cb's fingerprint.
        let fa = a.function("cb").map(function_fingerprint);
        let fb = b.function("cb").map(function_fingerprint);
        assert_eq!(fa, fb);
    }

    #[test]
    fn mix_is_order_sensitive() {
        assert_ne!(mix(1, 2), mix(2, 1));
        assert_eq!(fnv64_str("abc"), fnv64_str("abc"));
        assert_ne!(fnv64_str("abc"), fnv64_str("abd"));
    }
}
