//! The NFL lexer.
//!
//! Hand-written, single pass, no backtracking beyond one character of
//! lookahead — except dotted-quad IPv4 literals (`3.3.3.3`), which are
//! disambiguated from range syntax (`0..N`) and field access by peeking:
//! a digit directly after a `.` that directly follows an integer makes an
//! address literal.

use crate::span::Span;
use crate::token::{keyword_or_ident, Token, TokenKind};
use std::fmt;

/// A lexical error with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Where it happened.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'#') => {
                    // Python-style comments too, to keep corpus sources
                    // close to the paper's Figure 1.
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn err(&self, start: usize, line: u32, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            span: Span::new(start, self.pos, line),
        }
    }

    fn lex_number(&mut self, start: usize, line: u32) -> Result<TokenKind, LexError> {
        // Hex?
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let digits_start = self.pos;
            while self
                .peek()
                .map(|c| c.is_ascii_hexdigit())
                .unwrap_or(false)
            {
                self.bump();
            }
            if self.pos == digits_start {
                return Err(self.err(start, line, "hex literal needs digits"));
            }
            let text = std::str::from_utf8(&self.src[digits_start..self.pos]).unwrap();
            let v = i64::from_str_radix(text, 16)
                .map_err(|_| self.err(start, line, "hex literal overflows i64"))?;
            return Ok(TokenKind::Int(v));
        }
        let mut first = 0i64;
        let mut any = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                first = first
                    .checked_mul(10)
                    .and_then(|v| v.checked_add(i64::from(c - b'0')))
                    .ok_or_else(|| self.err(start, line, "integer literal overflows i64"))?;
                any = true;
                self.bump();
            } else {
                break;
            }
        }
        debug_assert!(any);
        // Dotted-quad address literal: digit '.' digit, but NOT '..'.
        if self.peek() == Some(b'.') && self.peek2().map(|c| c.is_ascii_digit()).unwrap_or(false) {
            let mut octets = vec![first];
            while self.peek() == Some(b'.')
                && self.peek2().map(|c| c.is_ascii_digit()).unwrap_or(false)
            {
                self.bump(); // '.'
                let mut v = 0i64;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        v = v * 10 + i64::from(c - b'0');
                        self.bump();
                    } else {
                        break;
                    }
                }
                octets.push(v);
            }
            if octets.len() != 4 || octets.iter().any(|&o| o > 255) {
                return Err(self.err(start, line, "malformed IPv4 address literal"));
            }
            let addr = octets.iter().fold(0i64, |acc, &o| (acc << 8) | o);
            return Ok(TokenKind::Int(addr));
        }
        Ok(TokenKind::Int(first))
    }

    fn lex_string(&mut self, start: usize, line: u32) -> Result<TokenKind, LexError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(TokenKind::Str(s)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    _ => return Err(self.err(start, line, "bad escape in string")),
                },
                Some(c) => s.push(c as char),
                None => return Err(self.err(start, line, "unterminated string")),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia();
        let start = self.pos;
        let line = self.line;
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                span: Span::new(start, start, line),
            });
        };
        let kind = match c {
            b'0'..=b'9' => self.lex_number(start, line)?,
            b'"' => self.lex_string(start, line)?,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                while self
                    .peek()
                    .map(|c| c.is_ascii_alphanumeric() || c == b'_')
                    .unwrap_or(false)
                {
                    self.bump();
                }
                let word = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                keyword_or_ident(word)
            }
            _ => {
                self.bump();
                match c {
                    b'(' => TokenKind::LParen,
                    b')' => TokenKind::RParen,
                    b'{' => TokenKind::LBrace,
                    b'}' => TokenKind::RBrace,
                    b'[' => TokenKind::LBracket,
                    b']' => TokenKind::RBracket,
                    b',' => TokenKind::Comma,
                    b';' => TokenKind::Semi,
                    b':' => TokenKind::Colon,
                    b'.' => {
                        if self.peek() == Some(b'.') {
                            self.bump();
                            TokenKind::DotDot
                        } else {
                            TokenKind::Dot
                        }
                    }
                    b'=' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            TokenKind::Eq
                        } else {
                            TokenKind::Assign
                        }
                    }
                    b'!' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            TokenKind::Ne
                        } else {
                            TokenKind::Bang
                        }
                    }
                    b'<' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            TokenKind::Le
                        } else {
                            TokenKind::Lt
                        }
                    }
                    b'>' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            TokenKind::Ge
                        } else {
                            TokenKind::Gt
                        }
                    }
                    b'+' => TokenKind::Plus,
                    b'-' => TokenKind::Minus,
                    b'*' => TokenKind::Star,
                    b'/' => TokenKind::Slash,
                    b'%' => TokenKind::Percent,
                    b'&' => {
                        if self.peek() == Some(b'&') {
                            self.bump();
                            TokenKind::AndAnd
                        } else {
                            TokenKind::Amp
                        }
                    }
                    b'|' => {
                        if self.peek() == Some(b'|') {
                            self.bump();
                            TokenKind::OrOr
                        } else {
                            TokenKind::Pipe
                        }
                    }
                    other => {
                        return Err(self.err(
                            start,
                            line,
                            format!("unexpected character {:?}", other as char),
                        ))
                    }
                }
            }
        };
        Ok(Token {
            kind,
            span: Span::new(start, self.pos, line),
        })
    }
}

/// Tokenize a whole source string. The final token is always
/// [`TokenKind::Eof`].
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    loop {
        let t = lx.next_token()?;
        let done = t.kind == TokenKind::Eof;
        out.push(t);
        if done {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("let x = 42;"),
            vec![
                TokenKind::Let,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(42),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn ip_literal() {
        assert_eq!(
            kinds("3.3.3.3"),
            vec![TokenKind::Int(0x03030303), TokenKind::Eof]
        );
        assert_eq!(
            kinds("10.0.0.1"),
            vec![TokenKind::Int(0x0a000001), TokenKind::Eof]
        );
    }

    #[test]
    fn range_is_not_ip() {
        assert_eq!(
            kinds("0..10"),
            vec![
                TokenKind::Int(0),
                TokenKind::DotDot,
                TokenKind::Int(10),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn field_access_dots() {
        assert_eq!(
            kinds("pkt.ip.src"),
            vec![
                TokenKind::Ident("pkt".into()),
                TokenKind::Dot,
                TokenKind::Ident("ip".into()),
                TokenKind::Dot,
                TokenKind::Ident("src".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn malformed_ip_rejected() {
        assert!(tokenize("1.2.3").is_err());
        assert!(tokenize("1.2.3.4.5").is_err());
        assert!(tokenize("1.2.3.999").is_err());
    }

    #[test]
    fn hex_and_overflow() {
        assert_eq!(kinds("0x10"), vec![TokenKind::Int(16), TokenKind::Eof]);
        assert!(tokenize("99999999999999999999").is_err());
        assert!(tokenize("0x").is_err());
    }

    #[test]
    fn comments_both_styles() {
        assert_eq!(
            kinds("// c style\n# py style\n1"),
            vec![TokenKind::Int(1), TokenKind::Eof]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""eth0" "a\nb""#),
            vec![
                TokenKind::Str("eth0".into()),
                TokenKind::Str("a\nb".into()),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("\"unterminated").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a == b != c <= d >= e && f || !g"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Eq,
                TokenKind::Ident("b".into()),
                TokenKind::Ne,
                TokenKind::Ident("c".into()),
                TokenKind::Le,
                TokenKind::Ident("d".into()),
                TokenKind::Ge,
                TokenKind::Ident("e".into()),
                TokenKind::AndAnd,
                TokenKind::Ident("f".into()),
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Ident("g".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_advance() {
        let toks = tokenize("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[2].span.line, 4);
    }

    #[test]
    fn unexpected_char() {
        assert!(tokenize("let $x = 1;").is_err());
    }
}
