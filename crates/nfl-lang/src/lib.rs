//! NFL — the *Network Function Language*.
//!
//! The NFactor paper analyzes NF source code through LLVM (giri for slicing,
//! KLEE for symbolic execution). This crate is the reproduction's language
//! substrate: a small, C/Python-flavoured imperative language in which the
//! corpus NFs (the Figure 1 load balancer, a balance-like TCP relay, a
//! snort-like IDS, NAT, firewall …) are written. It deliberately exposes
//! exactly the program objects NFactor's Algorithm 1 manipulates:
//!
//! * **statements** with def/use sets (for slicing),
//! * **`config` / `state` / local variables** (for StateAlyzer-style
//!   classification into `pktVar` / `cfgVar` / `oisVar` / `logVar`),
//! * **packet I/O builtins** (`recv`, `send`, `sniff`) so the analyses can
//!   "locate packet read/write statements" as §3.1 prescribes,
//! * **socket builtins** (`listen`, `accept`, `connect`, …) whose hidden
//!   OS state is unfolded by the `nf-tcp` crate (§3.2 "Hidden States"),
//! * **bounded loops only** (§3.2 "Execution Paths": NF programs are
//!   written with bounded loops so symbolic execution terminates).
//!
//! Pipeline: [`lexer`] → [`parser`] → [`ast`] → [`types`] (checking) →
//! consumed by `nfl-analysis` (CFG/PDG), `nfl-interp`, `nfl-slicer`,
//! `nfl-symex`.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     config LB_PORT = 80;
//!     state hits = 0;
//!     fn process(pkt: packet) {
//!         if pkt.tcp.dport == LB_PORT {
//!             hits = hits + 1;
//!             send(pkt);
//!         }
//!     }
//!     fn main() { sniff(process); }
//! "#;
//! let program = nfl_lang::parse(src).unwrap();
//! nfl_lang::types::check(&program).unwrap();
//! assert_eq!(program.functions.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod builtins;
pub mod fingerprint;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;
pub mod types;

pub use ast::{
    BinOp, Expr, ExprKind, ForIter, Function, Item, LValue, Program, Stmt, StmtId, StmtKind, UnOp,
};
pub use builtins::{Builtin, Effect};
pub use span::{LineIndex, ResolvedSpan, Span};

pub use parser::{parse_all, ParseError};

/// Parse NFL source into a [`Program`]. Convenience over
/// [`parser::parse_program`].
pub fn parse(src: &str) -> Result<Program, parser::ParseError> {
    parser::parse_program(src)
}

/// Parse and type-check in one step; the common front door for the rest of
/// the workspace. Parsing runs with error recovery, so the message carries
/// *every* syntax error (newline-separated), not just the first.
pub fn parse_and_check(src: &str) -> Result<Program, String> {
    let p = parse_all(src).map_err(|errs| {
        errs.iter()
            .map(ParseError::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    })?;
    types::check(&p).map_err(|e| e.to_string())?;
    Ok(p)
}
