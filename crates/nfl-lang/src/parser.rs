//! Recursive-descent parser for NFL.
//!
//! One token of lookahead, standard precedence climbing for expressions.
//! Statement ids are assigned densely in parse order; every node carries
//! the span of its source text.

use crate::ast::*;
use crate::lexer::{tokenize, LexError};
use crate::span::Span;
use crate::token::{Token, TokenKind};
use nf_packet::Field;
use std::fmt;

/// A syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Location of the offending token.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            span: e.span,
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
    /// Diagnostics accumulated while recovering. Recovery never invents
    /// AST nodes: a statement or item that fails to parse is dropped and
    /// its error recorded, so a program is only returned error-free when
    /// `errors` is empty.
    errors: Vec<ParseError>,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> PResult<Token> {
        if self.peek() == &kind {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected `{kind}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            span: self.span(),
        }
    }

    fn ident(&mut self) -> PResult<(String, Span)> {
        let sp = self.span();
        match self.bump().kind {
            TokenKind::Ident(s) => Ok((s, sp)),
            other => Err(ParseError {
                message: format!("expected identifier, found `{other}`"),
                span: sp,
            }),
        }
    }

    fn fresh_id(&mut self) -> StmtId {
        let id = StmtId(self.next_id);
        self.next_id += 1;
        id
    }

    // ---- error recovery --------------------------------------------------

    /// Skip a balanced `{ … }` block (assumes the next token is `{`).
    fn skip_balanced_block(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::Eof => return,
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    self.bump();
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Statement-level synchronisation: skip past the next `;` (consumed)
    /// or up to the enclosing `}` (left for the block to consume), treating
    /// nested `{ … }` blocks as opaque.
    fn sync_stmt(&mut self) {
        loop {
            match self.peek() {
                TokenKind::Eof | TokenKind::RBrace => return,
                TokenKind::Semi => {
                    self.bump();
                    return;
                }
                TokenKind::LBrace => self.skip_balanced_block(),
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Top-level synchronisation: skip to the next item keyword.
    fn sync_item(&mut self) {
        loop {
            match self.peek() {
                TokenKind::Eof
                | TokenKind::Const
                | TokenKind::Config
                | TokenKind::State
                | TokenKind::Fn => return,
                TokenKind::LBrace => self.skip_balanced_block(),
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- items ----------------------------------------------------------

    fn program(&mut self, source: &str) -> Program {
        let mut p = Program {
            source: source.to_string(),
            ..Program::default()
        };
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Const => {
                    self.bump();
                    match self.item() {
                        Ok(i) => p.consts.push(i),
                        Err(e) => {
                            self.errors.push(e);
                            self.sync_stmt();
                        }
                    }
                }
                TokenKind::Config => {
                    self.bump();
                    match self.item() {
                        Ok(i) => p.configs.push(i),
                        Err(e) => {
                            self.errors.push(e);
                            self.sync_stmt();
                        }
                    }
                }
                TokenKind::State => {
                    self.bump();
                    match self.item() {
                        Ok(i) => p.states.push(i),
                        Err(e) => {
                            self.errors.push(e);
                            self.sync_stmt();
                        }
                    }
                }
                TokenKind::Fn => {
                    self.bump();
                    match self.function() {
                        Ok(f) => p.functions.push(f),
                        Err(e) => {
                            self.errors.push(e);
                            self.sync_item();
                        }
                    }
                }
                other => {
                    let e = self.err(format!(
                        "expected `const`, `config`, `state` or `fn`, found `{other}`"
                    ));
                    self.errors.push(e);
                    self.bump();
                    self.sync_item();
                }
            }
        }
        p
    }

    fn item(&mut self) -> PResult<Item> {
        let (name, span) = self.ident()?;
        self.expect(TokenKind::Assign)?;
        let init = self.expr()?;
        self.expect(TokenKind::Semi)?;
        Ok(Item { name, init, span })
    }

    fn function(&mut self) -> PResult<Function> {
        let (name, span) = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                let (pname, _) = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let (pty, _) = self.ident()?;
                params.push((pname, pty));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Function {
            name,
            params,
            body,
            span,
        })
    }

    // ---- statements -------------------------------------------------------

    fn block(&mut self) -> PResult<Vec<Stmt>> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Eof {
                return Err(self.err("unterminated block"));
            }
            match self.stmt() {
                Ok(s) => stmts.push(s),
                Err(e) => {
                    // Record and resynchronise on `;` / `}` so one bad
                    // statement doesn't hide the rest of the file's errors.
                    self.errors.push(e);
                    self.sync_stmt();
                }
            }
        }
        self.expect(TokenKind::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let start = self.span();
        let id = self.fresh_id();
        let kind = match self.peek().clone() {
            TokenKind::Let => {
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(TokenKind::Assign)?;
                let value = self.expr()?;
                self.expect(TokenKind::Semi)?;
                StmtKind::Let { name, value }
            }
            TokenKind::If => {
                self.bump();
                self.if_stmt()?
            }
            TokenKind::While => {
                self.bump();
                let cond = self.expr()?;
                let body = self.block()?;
                StmtKind::While { cond, body }
            }
            TokenKind::For => {
                self.bump();
                let (var, _) = self.ident()?;
                self.expect(TokenKind::In)?;
                let first = self.expr()?;
                let iter = if self.eat(&TokenKind::DotDot) {
                    let hi = self.expr()?;
                    ForIter::Range(first, hi)
                } else {
                    ForIter::Array(first)
                };
                let body = self.block()?;
                StmtKind::For { var, iter, body }
            }
            TokenKind::Return => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                StmtKind::Return(value)
            }
            TokenKind::Break => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                StmtKind::Break
            }
            TokenKind::Continue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                StmtKind::Continue
            }
            _ => {
                let e = self.expr()?;
                if self.eat(&TokenKind::Assign) {
                    let target = self.lvalue_of(e)?;
                    let value = self.expr()?;
                    self.expect(TokenKind::Semi)?;
                    StmtKind::Assign { target, value }
                } else {
                    self.expect(TokenKind::Semi)?;
                    StmtKind::Expr(e)
                }
            }
        };
        Ok(Stmt {
            id,
            span: start.merge(self.prev_span()),
            kind,
        })
    }

    fn if_stmt(&mut self) -> PResult<StmtKind> {
        let cond = self.expr()?;
        let then_branch = self.block()?;
        let else_branch = if self.eat(&TokenKind::Else) {
            if self.peek() == &TokenKind::If {
                // `else if …` desugars to an else-block with one nested if.
                let start = self.span();
                let id = self.fresh_id();
                self.bump();
                let kind = self.if_stmt()?;
                vec![Stmt {
                    id,
                    span: start.merge(self.prev_span()),
                    kind,
                }]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(StmtKind::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn lvalue_of(&self, e: Expr) -> PResult<LValue> {
        match e.kind {
            ExprKind::Var(name) => Ok(LValue::Var(name)),
            ExprKind::Field(base, field) => Ok(LValue::Field(base, field)),
            ExprKind::Index(base, key) => match base.kind {
                ExprKind::Var(name) => Ok(LValue::Index(name, *key)),
                _ => Err(ParseError {
                    message: "indexed assignment target must be a variable".into(),
                    span: e.span,
                }),
            },
            _ => Err(ParseError {
                message: "invalid assignment target".into(),
                span: e.span,
            }),
        }
    }

    // ---- expressions -------------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            lhs = bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> PResult<Expr> {
        let lhs = self.bitor_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::In => BinOp::In,
            TokenKind::Not if self.peek2() == &TokenKind::In => BinOp::NotIn,
            _ => return Ok(lhs),
        };
        if op == BinOp::NotIn {
            self.bump(); // `not`
        }
        self.bump(); // operator / `in`
        let rhs = self.bitor_expr()?;
        Ok(bin(op, lhs, rhs))
    }

    fn bitor_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.bitand_expr()?;
        while self.peek() == &TokenKind::Pipe {
            self.bump();
            let rhs = self.bitand_expr()?;
            lhs = bin(BinOp::BitOr, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bitand_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.add_expr()?;
        while self.peek() == &TokenKind::Amp {
            self.bump();
            let rhs = self.add_expr()?;
            lhs = bin(BinOp::BitAnd, lhs, rhs);
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        let span = self.span();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let inner = self.unary_expr()?;
                Ok(Expr {
                    span: span.merge(inner.span),
                    kind: ExprKind::Unary(UnOp::Neg, Box::new(inner)),
                })
            }
            TokenKind::Bang | TokenKind::Not => {
                self.bump();
                let inner = self.unary_expr()?;
                Ok(Expr {
                    span: span.merge(inner.span),
                    kind: ExprKind::Unary(UnOp::Not, Box::new(inner)),
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> PResult<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    let span = e.span.merge(self.prev_span());
                    e = Expr {
                        span,
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                    };
                }
                TokenKind::Dot => {
                    // Dotted packet-field path: `pkt.ip.src`. Collect all
                    // `.segment` parts and resolve against the Field table.
                    let base = match &e.kind {
                        ExprKind::Var(name) => name.clone(),
                        _ => {
                            return Err(self.err(
                                "field access requires a packet variable on the left",
                            ))
                        }
                    };
                    let mut segments = Vec::new();
                    while self.peek() == &TokenKind::Dot {
                        self.bump();
                        let (seg, _) = self.ident()?;
                        segments.push(seg);
                    }
                    let path = segments.join(".");
                    let field = Field::from_path(&path).ok_or_else(|| ParseError {
                        message: format!("unknown packet field `{path}`"),
                        span: e.span.merge(self.prev_span()),
                    })?;
                    let span = e.span.merge(self.prev_span());
                    e = Expr {
                        span,
                        kind: ExprKind::Field(base, field),
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> PResult<Expr> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr {
                    span,
                    kind: ExprKind::Int(v),
                })
            }
            TokenKind::Bool(b) => {
                self.bump();
                Ok(Expr {
                    span,
                    kind: ExprKind::Bool(b),
                })
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr {
                    span,
                    kind: ExprKind::Str(s),
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek() == &TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(Expr {
                        span: span.merge(self.prev_span()),
                        kind: ExprKind::Call(name, args),
                    })
                } else {
                    Ok(Expr {
                        span,
                        kind: ExprKind::Var(name),
                    })
                }
            }
            TokenKind::LParen => {
                self.bump();
                let first = self.expr()?;
                if self.eat(&TokenKind::Comma) {
                    // Tuple literal.
                    let mut elems = vec![first];
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            elems.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(Expr {
                        span: span.merge(self.prev_span()),
                        kind: ExprKind::Tuple(elems),
                    })
                } else {
                    self.expect(TokenKind::RParen)?;
                    Ok(first)
                }
            }
            TokenKind::LBracket => {
                self.bump();
                let mut elems = Vec::new();
                if self.peek() != &TokenKind::RBracket {
                    loop {
                        elems.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RBracket)?;
                Ok(Expr {
                    span: span.merge(self.prev_span()),
                    kind: ExprKind::Array(elems),
                })
            }
            other => Err(self.err(format!("expected expression, found `{other}`"))),
        }
    }
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr {
        span: lhs.span.merge(rhs.span),
        kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
    }
}

/// Parse a complete program, reporting only the first syntax error.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    parse_all(src).map_err(|mut errs| errs.swap_remove(0))
}

/// Parse a complete program with error recovery: on a bad statement the
/// parser records the diagnostic, synchronises on `;` / `}` (or the next
/// top-level item keyword), and keeps going — so a single pass reports
/// *every* syntax error, not just the first. Returns the program only
/// when it parsed cleanly.
pub fn parse_all(src: &str) -> Result<Program, Vec<ParseError>> {
    let tokens = tokenize(src).map_err(|e| vec![ParseError::from(e)])?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        next_id: 0,
        errors: Vec::new(),
    };
    let p = parser.program(src);
    if parser.errors.is_empty() {
        Ok(p)
    } else {
        Err(parser.errors)
    }
}

/// Parse a single expression — used by tests and the REPL-ish tooling.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        next_id: 0,
        errors: Vec::new(),
    };
    let e = parser.expr()?;
    parser.expect(TokenKind::Eof)?;
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_figure1_fragment() {
        let src = r#"
            # Configurations
            config mode = 1;
            config LB_IP = 3.3.3.3;
            config LB_PORT = 80;
            config servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
            # Output-Impacting States
            state f2b_nat = map();
            state rr_idx = 0;
            state cur_port = 10000;
            # Log States
            state pass_stat = 0;
            state drop_stat = 0;

            fn pkt_callback(pkt: packet) {
                let si = pkt.ip.src;
                let di = pkt.ip.dst;
                let sp = pkt.tcp.sport;
                let dp = pkt.tcp.dport;
                if dp == LB_PORT {
                    let cs_ftpl = (si, sp, di, dp);
                    if cs_ftpl not in f2b_nat {
                        let server = servers[rr_idx];
                        rr_idx = (rr_idx + 1) % len(servers);
                    }
                } else {
                    drop_stat = drop_stat + 1;
                    return;
                }
                pass_stat = pass_stat + 1;
                send(pkt);
            }

            fn main() {
                sniff(pkt_callback);
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.configs.len(), 4);
        assert_eq!(p.states.len(), 5);
        assert_eq!(p.functions.len(), 2);
        // Ids are dense.
        let mut ids = Vec::new();
        p.for_each_stmt(|s| ids.push(s.id.0));
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn not_in_parses() {
        let e = parse_expr("k not in m").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::NotIn, _, _)));
    }

    #[test]
    fn in_parses() {
        let e = parse_expr("k in m").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::In, _, _)));
    }

    #[test]
    fn precedence() {
        // a + b * c == d  →  ((a + (b*c)) == d)
        let e = parse_expr("a + b * c == d").unwrap();
        let ExprKind::Binary(BinOp::Eq, lhs, _) = e.kind else {
            panic!("expected ==");
        };
        let ExprKind::Binary(BinOp::Add, _, rhs) = lhs.kind else {
            panic!("expected +");
        };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn field_path() {
        let e = parse_expr("pkt.tcp.sport").unwrap();
        assert!(
            matches!(e.kind, ExprKind::Field(ref b, Field::TcpSport) if b == "pkt"),
            "{e:?}"
        );
    }

    #[test]
    fn unknown_field_rejected() {
        assert!(parse_expr("pkt.ip.bogus").is_err());
    }

    #[test]
    fn tuple_vs_paren() {
        assert!(matches!(
            parse_expr("(1, 2, 3)").unwrap().kind,
            ExprKind::Tuple(ref v) if v.len() == 3
        ));
        assert!(matches!(
            parse_expr("(1 + 2)").unwrap().kind,
            ExprKind::Binary(BinOp::Add, _, _)
        ));
    }

    #[test]
    fn assignment_targets() {
        let p = parse_program(
            r#"
            state m = map();
            fn main() {
                let pkt = recv();
                m[1] = 2;
                pkt.ip.src = 3;
                let x = 0;
                x = 4;
            }
        "#,
        )
        .unwrap();
        let body = &p.function("main").unwrap().body;
        assert!(matches!(
            body[1].kind,
            StmtKind::Assign {
                target: LValue::Index(..),
                ..
            }
        ));
        assert!(matches!(
            body[2].kind,
            StmtKind::Assign {
                target: LValue::Field(..),
                ..
            }
        ));
        assert!(matches!(
            body[4].kind,
            StmtKind::Assign {
                target: LValue::Var(..),
                ..
            }
        ));
    }

    #[test]
    fn invalid_assignment_target() {
        assert!(parse_program("fn main() { 1 + 2 = 3; }").is_err());
    }

    #[test]
    fn else_if_chain() {
        let p = parse_program(
            r#"
            fn main() {
                let x = 1;
                if x == 1 { } else if x == 2 { } else { x = 3; }
            }
        "#,
        )
        .unwrap();
        let body = &p.function("main").unwrap().body;
        let StmtKind::If { else_branch, .. } = &body[1].kind else {
            panic!()
        };
        assert_eq!(else_branch.len(), 1);
        assert!(matches!(else_branch[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn for_range_and_array() {
        let p = parse_program(
            r#"
            fn main() {
                for i in 0..10 { }
                for x in [1, 2, 3] { }
            }
        "#,
        )
        .unwrap();
        let body = &p.function("main").unwrap().body;
        assert!(matches!(
            body[0].kind,
            StmtKind::For {
                iter: ForIter::Range(..),
                ..
            }
        ));
        assert!(matches!(
            body[1].kind,
            StmtKind::For {
                iter: ForIter::Array(..),
                ..
            }
        ));
    }

    #[test]
    fn unterminated_block() {
        assert!(parse_program("fn main() { let x = 1;").is_err());
    }

    #[test]
    fn spans_carry_lines() {
        let p = parse_program("fn main() {\n let x = 1;\n send(x);\n}").unwrap();
        let body = &p.function("main").unwrap().body;
        assert_eq!(body[0].span.line, 2);
        assert_eq!(body[1].span.line, 3);
    }

    #[test]
    fn while_and_flow_keywords() {
        let p = parse_program(
            r#"
            fn main() {
                let i = 0;
                while i < 3 {
                    i = i + 1;
                    if i == 2 { continue; }
                    if i == 3 { break; }
                }
                return;
            }
        "#,
        )
        .unwrap();
        assert_eq!(p.stmt_count(), 8);
    }

    #[test]
    fn recovery_reports_every_error() {
        // Three distinct mistakes in three statements; recovery must
        // surface all of them in one pass (golden diagnostics below).
        let src = r#"
            state n = 0;
            fn cb(pkt: packet) {
                let a = ;
                n = n + 1;
                b = = 2;
                if pkt.ip.ttl > { send(pkt); }
                n = n + 2;
            }
            fn main() { sniff(cb); }
        "#;
        let errs = parse_all(src).unwrap_err();
        let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        assert_eq!(errs.len(), 3, "{msgs:?}");
        assert!(msgs[0].contains("expected expression, found `;`"), "{msgs:?}");
        assert!(msgs[1].contains("expected expression, found `=`"), "{msgs:?}");
        assert!(msgs[2].contains("expected expression, found `{`"), "{msgs:?}");
        // Errors come out in source order with correct lines.
        assert_eq!(errs[0].span.line, 4);
        assert_eq!(errs[1].span.line, 6);
        assert_eq!(errs[2].span.line, 7);
    }

    #[test]
    fn recovery_spans_top_level_items() {
        let src = r#"
            config port = ;
            state ok = 0;
            fn broken( { }
            fn main() { ok = 1; }
        "#;
        let errs = parse_all(src).unwrap_err();
        assert!(errs.len() >= 2, "{errs:?}");
        // The well-formed items around the bad ones still parse.
        // (The program is only *returned* on success, so check via a
        // clean sibling source.)
        let clean = parse_all("state ok = 0;\nfn main() { ok = 1; }").unwrap();
        assert_eq!(clean.states.len(), 1);
        assert_eq!(clean.functions.len(), 1);
    }

    #[test]
    fn recovery_skips_nested_blocks_when_syncing() {
        // The bad statement contains a braced block; sync must treat it
        // as opaque and not resume parsing in its middle.
        let src = r#"
            fn main() {
                let x = 1;
                while { let y = 2; } ;
                x = 3;
            }
        "#;
        let errs = parse_all(src).unwrap_err();
        assert_eq!(errs.len(), 1, "{errs:?}");
    }

    #[test]
    fn parse_program_still_reports_first_error() {
        let err = parse_program("fn main() { let a = ; let b = ; }").unwrap_err();
        assert!(err.message.contains("expected expression"));
    }

    #[test]
    fn clean_source_roundtrips_through_parse_all() {
        let p = parse_all("fn main() { let x = 1; send(x); }").unwrap();
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn unary_not_forms() {
        assert!(matches!(
            parse_expr("!x").unwrap().kind,
            ExprKind::Unary(UnOp::Not, _)
        ));
        assert!(matches!(
            parse_expr("not x").unwrap().kind,
            ExprKind::Unary(UnOp::Not, _)
        ));
        assert!(matches!(
            parse_expr("-x").unwrap().kind,
            ExprKind::Unary(UnOp::Neg, _)
        ));
    }
}
