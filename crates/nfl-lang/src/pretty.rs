//! Pretty printer: regenerates NFL source from an AST.
//!
//! Used to display transformed programs (inlined, loop-normalised,
//! socket-unfolded), to render slices the way the paper's Figure 1
//! highlights them, and in property tests (`parse ∘ pretty ∘ parse = parse`).

use crate::ast::*;
use std::collections::HashSet;
use std::fmt::Write;

/// Render an expression as source text.
pub fn expr_to_string(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Int(v) => v.to_string(),
        ExprKind::Bool(b) => b.to_string(),
        ExprKind::Str(s) => format!("{s:?}"),
        ExprKind::Var(v) => v.clone(),
        ExprKind::Field(base, f) => format!("{base}.{}", f.path()),
        ExprKind::Tuple(es) => {
            let inner: Vec<_> = es.iter().map(expr_to_string).collect();
            format!("({})", inner.join(", "))
        }
        ExprKind::Array(es) => {
            let inner: Vec<_> = es.iter().map(expr_to_string).collect();
            format!("[{}]", inner.join(", "))
        }
        ExprKind::Index(b, i) => format!("{}[{}]", expr_to_string(b), expr_to_string(i)),
        ExprKind::Binary(op, a, b) => {
            format!("({} {} {})", expr_to_string(a), op.symbol(), expr_to_string(b))
        }
        ExprKind::Unary(UnOp::Neg, a) => format!("(-{})", expr_to_string(a)),
        ExprKind::Unary(UnOp::Not, a) => format!("(!{})", expr_to_string(a)),
        ExprKind::Call(name, args) => {
            let inner: Vec<_> = args.iter().map(expr_to_string).collect();
            format!("{name}({})", inner.join(", "))
        }
    }
}

fn lvalue_to_string(lv: &LValue) -> String {
    match lv {
        LValue::Var(v) => v.clone(),
        LValue::Index(b, k) => format!("{b}[{}]", expr_to_string(k)),
        LValue::Field(b, f) => format!("{b}.{}", f.path()),
    }
}

/// Options controlling statement rendering.
#[derive(Debug, Clone, Default)]
pub struct RenderOpts {
    /// If set, statements whose id is in this set are prefixed with `>> `
    /// and all others with three spaces — the Figure 1 "highlighted slice"
    /// view.
    pub highlight: Option<HashSet<StmtId>>,
    /// If set, only statements in this set (plus enclosing control
    /// structure) are printed at all — the sliced-program view.
    pub keep_only: Option<HashSet<StmtId>>,
    /// Print `s<N>` statement ids in a margin.
    pub show_ids: bool,
}

struct Printer<'o> {
    out: String,
    indent: usize,
    opts: &'o RenderOpts,
}

impl<'o> Printer<'o> {
    fn line(&mut self, id: Option<StmtId>, text: &str) {
        if let (Some(hl), Some(id)) = (&self.opts.highlight, id) {
            if hl.contains(&id) {
                self.out.push_str(">> ");
            } else {
                self.out.push_str("   ");
            }
        }
        if self.opts.show_ids {
            match id {
                Some(id) => {
                    let _ = write!(self.out, "{:>5} | ", id.to_string());
                }
                None => self.out.push_str("      | "),
            }
        }
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    /// Should this statement be printed under `keep_only`? Control
    /// statements are kept when any nested statement is kept, so the
    /// printed slice stays well-formed.
    fn keeps(&self, s: &Stmt) -> bool {
        let Some(keep) = &self.opts.keep_only else {
            return true;
        };
        if keep.contains(&s.id) {
            return true;
        }
        let mut any = false;
        walk_stmt(s, &mut |inner| {
            if keep.contains(&inner.id) {
                any = true;
            }
        });
        any
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            if !self.keeps(s) {
                continue;
            }
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Let { name, value } => {
                self.line(Some(s.id), &format!("let {name} = {};", expr_to_string(value)));
            }
            StmtKind::Assign { target, value } => {
                self.line(
                    Some(s.id),
                    &format!("{} = {};", lvalue_to_string(target), expr_to_string(value)),
                );
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.line(Some(s.id), &format!("if {} {{", expr_to_string(cond)));
                self.indent += 1;
                self.stmts(then_branch);
                self.indent -= 1;
                if else_branch.is_empty() {
                    self.line(None, "}");
                } else {
                    self.line(None, "} else {");
                    self.indent += 1;
                    self.stmts(else_branch);
                    self.indent -= 1;
                    self.line(None, "}");
                }
            }
            StmtKind::While { cond, body } => {
                self.line(Some(s.id), &format!("while {} {{", expr_to_string(cond)));
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                self.line(None, "}");
            }
            StmtKind::For { var, iter, body } => {
                let head = match iter {
                    ForIter::Range(lo, hi) => format!(
                        "for {var} in {}..{} {{",
                        expr_to_string(lo),
                        expr_to_string(hi)
                    ),
                    ForIter::Array(a) => format!("for {var} in {} {{", expr_to_string(a)),
                };
                self.line(Some(s.id), &head);
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                self.line(None, "}");
            }
            StmtKind::Return(None) => self.line(Some(s.id), "return;"),
            StmtKind::Return(Some(e)) => {
                self.line(Some(s.id), &format!("return {};", expr_to_string(e)))
            }
            StmtKind::Break => self.line(Some(s.id), "break;"),
            StmtKind::Continue => self.line(Some(s.id), "continue;"),
            StmtKind::Expr(e) => self.line(Some(s.id), &format!("{};", expr_to_string(e))),
        }
    }
}

fn walk_stmt<'a>(s: &'a Stmt, f: &mut impl FnMut(&'a Stmt)) {
    f(s);
    match &s.kind {
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            for c in then_branch.iter().chain(else_branch) {
                walk_stmt(c, f);
            }
        }
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
            for c in body {
                walk_stmt(c, f);
            }
        }
        _ => {}
    }
}

/// Render a whole program as source text with the given options.
pub fn program_to_string_opts(p: &Program, opts: &RenderOpts) -> String {
    let mut pr = Printer {
        out: String::new(),
        indent: 0,
        opts,
    };
    for (kw, items) in [
        ("const", &p.consts),
        ("config", &p.configs),
        ("state", &p.states),
    ] {
        for item in items.iter() {
            pr.line(
                None,
                &format!("{kw} {} = {};", item.name, expr_to_string(&item.init)),
            );
        }
        if !items.is_empty() {
            pr.line(None, "");
        }
    }
    for f in &p.functions {
        let params: Vec<_> = f
            .params
            .iter()
            .map(|(n, t)| format!("{n}: {t}"))
            .collect();
        pr.line(None, &format!("fn {}({}) {{", f.name, params.join(", ")));
        pr.indent += 1;
        pr.stmts(&f.body);
        pr.indent -= 1;
        pr.line(None, "}");
        pr.line(None, "");
    }
    pr.out
}

/// Render a whole program with default options.
pub fn program_to_string(p: &Program) -> String {
    program_to_string_opts(p, &RenderOpts::default())
}

/// Count the lines a slice keeps when rendered — Table 2's "LoC (slice)".
///
/// Only *statement* lines count: the declaration preamble (consts,
/// configs, states) is the program's environment, not part of the slice,
/// exactly as the paper's 129-line snort slice excludes its thousands of
/// rule definitions.
pub fn slice_loc(p: &Program, keep: &HashSet<StmtId>) -> usize {
    let opts = RenderOpts {
        keep_only: Some(keep.clone()),
        ..RenderOpts::default()
    };
    program_to_string_opts(p, &opts)
        .lines()
        .skip_while(|l| !l.trim_start().starts_with("fn "))
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && t != "}" && !t.starts_with("} else") && !t.starts_with("fn ")
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    const SRC: &str = r#"
        config LB_PORT = 80;
        state hits = 0;
        fn cb(pkt: packet) {
            if pkt.tcp.dport == LB_PORT {
                hits = hits + 1;
                send(pkt);
            } else {
                return;
            }
        }
        fn main() { sniff(cb); }
    "#;

    #[test]
    fn roundtrip_through_pretty() {
        let p1 = parse(SRC).unwrap();
        let text = program_to_string(&p1);
        let mut p2 = parse(&text).unwrap();
        // Sources differ; structure must not (after normalising ids/spans).
        let mut p1n = p1.clone();
        p1n.renumber();
        p2.renumber();
        p1n.source = String::new();
        p2.source = String::new();
        strip_spans(&mut p1n);
        strip_spans(&mut p2);
        assert_eq!(p1n, p2);
    }

    fn strip_spans(p: &mut Program) {
        fn fix_expr(e: &mut Expr) {
            e.span = Default::default();
            match &mut e.kind {
                ExprKind::Tuple(es) | ExprKind::Array(es) => es.iter_mut().for_each(fix_expr),
                ExprKind::Index(a, b) | ExprKind::Binary(_, a, b) => {
                    fix_expr(a);
                    fix_expr(b);
                }
                ExprKind::Unary(_, a) => fix_expr(a),
                ExprKind::Call(_, args) => args.iter_mut().for_each(fix_expr),
                _ => {}
            }
        }
        fn fix_stmts(stmts: &mut [Stmt]) {
            for s in stmts {
                s.span = Default::default();
                match &mut s.kind {
                    StmtKind::Let { value, .. } => fix_expr(value),
                    StmtKind::Assign { target, value } => {
                        if let LValue::Index(_, k) = target {
                            fix_expr(k);
                        }
                        fix_expr(value);
                    }
                    StmtKind::If {
                        cond,
                        then_branch,
                        else_branch,
                    } => {
                        fix_expr(cond);
                        fix_stmts(then_branch);
                        fix_stmts(else_branch);
                    }
                    StmtKind::While { cond, body } => {
                        fix_expr(cond);
                        fix_stmts(body);
                    }
                    StmtKind::For { iter, body, .. } => {
                        match iter {
                            ForIter::Range(a, b) => {
                                fix_expr(a);
                                fix_expr(b);
                            }
                            ForIter::Array(a) => fix_expr(a),
                        }
                        fix_stmts(body);
                    }
                    StmtKind::Return(Some(e)) | StmtKind::Expr(e) => fix_expr(e),
                    _ => {}
                }
            }
        }
        for item in p
            .consts
            .iter_mut()
            .chain(p.configs.iter_mut())
            .chain(p.states.iter_mut())
        {
            item.span = Default::default();
            fix_expr(&mut item.init);
        }
        for f in &mut p.functions {
            f.span = Default::default();
            fix_stmts(&mut f.body);
        }
    }

    #[test]
    fn highlight_marks_slice_lines() {
        let p = parse(SRC).unwrap();
        let mut ids = Vec::new();
        p.for_each_stmt(|s| ids.push(s.id));
        let hl: HashSet<_> = ids.iter().copied().take(2).collect();
        let text = program_to_string_opts(
            &p,
            &RenderOpts {
                highlight: Some(hl),
                ..Default::default()
            },
        );
        assert!(text.lines().any(|l| l.starts_with(">> ")));
        assert!(text.lines().any(|l| l.starts_with("   ")));
    }

    #[test]
    fn keep_only_retains_enclosing_control() {
        let p = parse(SRC).unwrap();
        // Keep only the innermost `send(pkt);`.
        let mut send_id = None;
        p.for_each_stmt(|s| {
            if let StmtKind::Expr(e) = &s.kind {
                if matches!(&e.kind, ExprKind::Call(n, _) if n == "send") {
                    send_id = Some(s.id);
                }
            }
        });
        let keep: HashSet<_> = [send_id.unwrap()].into_iter().collect();
        let text = program_to_string_opts(
            &p,
            &RenderOpts {
                keep_only: Some(keep.clone()),
                ..Default::default()
            },
        );
        assert!(text.contains("if"), "control structure kept:\n{text}");
        assert!(text.contains("send(pkt)"));
        assert!(
            !text.contains("hits = (hits + 1)"),
            "unrelated statement pruned:\n{text}"
        );
        assert!(slice_loc(&p, &keep) >= 2);
    }

    #[test]
    fn expr_rendering() {
        let e = crate::parser::parse_expr("(a + 1) % len(servers)").unwrap();
        assert_eq!(expr_to_string(&e), "((a + 1) % len(servers))");
    }
}
