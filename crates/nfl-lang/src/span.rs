//! Source positions, used for diagnostics and for the Table 2 LoC
//! accounting (a slice is reported by which source lines it keeps).

use std::fmt;

/// A half-open byte range in the source with the 1-based line of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Span {
    /// A span covering `start..end` on `line`.
    pub fn new(start: usize, end: usize, line: u32) -> Self {
        Span { start, end, line }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// Precomputed line-start table for a source text, turning byte offsets
/// into `(line, column)` pairs and back into line text — the substrate
/// for rustc-style diagnostic snippets (`nfl-lint`'s text renderer).
#[derive(Debug, Clone)]
pub struct LineIndex {
    /// Byte offset of the first character of each line (line 1 first).
    starts: Vec<usize>,
    /// Total source length, so the last line has a known end.
    len: usize,
}

impl LineIndex {
    /// Index `src`'s line structure.
    pub fn new(src: &str) -> LineIndex {
        let mut starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex {
            starts,
            len: src.len(),
        }
    }

    /// Number of lines (at least 1, even for empty input).
    pub fn line_count(&self) -> usize {
        self.starts.len()
    }

    /// 1-based `(line, column)` of a byte offset. Offsets past the end
    /// clamp to the last position.
    pub fn line_col(&self, offset: usize) -> (u32, u32) {
        let offset = offset.min(self.len);
        let line = match self.starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let col = offset - self.starts[line] + 1;
        (line as u32 + 1, col as u32)
    }

    /// The byte range `start..end` of a 1-based line (newline excluded).
    pub fn line_range(&self, line: u32) -> Option<(usize, usize)> {
        let i = (line as usize).checked_sub(1)?;
        let start = *self.starts.get(i)?;
        let end = self
            .starts
            .get(i + 1)
            .map(|s| s.saturating_sub(1))
            .unwrap_or(self.len);
        Some((start, end))
    }

    /// The text of a 1-based line (no trailing newline).
    pub fn line_text<'a>(&self, src: &'a str, line: u32) -> Option<&'a str> {
        let (start, end) = self.line_range(line)?;
        src.get(start..end)
    }
}

/// A span resolved against a [`LineIndex`]: where it starts and how wide
/// the underline should be on that first line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedSpan {
    /// 1-based line of the span start.
    pub line: u32,
    /// 1-based column of the span start.
    pub col: u32,
    /// Underline width in bytes, clamped to the end of the start line
    /// (multi-line spans underline only their first line) and at least 1.
    pub width: usize,
}

impl Span {
    /// Resolve this span's start position and underline width.
    pub fn resolve(&self, index: &LineIndex) -> ResolvedSpan {
        let (line, col) = index.line_col(self.start);
        let line_end = index
            .line_range(line)
            .map(|(_, e)| e)
            .unwrap_or(self.start);
        let width = self
            .end
            .min(line_end)
            .saturating_sub(self.start)
            .max(1);
        ResolvedSpan { line, col, width }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_extremes() {
        let a = Span::new(10, 20, 2);
        let b = Span::new(5, 15, 1);
        let m = a.merge(b);
        assert_eq!((m.start, m.end, m.line), (5, 20, 1));
    }

    #[test]
    fn display_is_line_oriented() {
        assert_eq!(Span::new(0, 1, 7).to_string(), "line 7");
    }

    #[test]
    fn line_index_maps_offsets() {
        let src = "ab\ncde\n\nf";
        let ix = LineIndex::new(src);
        assert_eq!(ix.line_count(), 4);
        assert_eq!(ix.line_col(0), (1, 1));
        assert_eq!(ix.line_col(1), (1, 2));
        assert_eq!(ix.line_col(3), (2, 1));
        assert_eq!(ix.line_col(5), (2, 3));
        assert_eq!(ix.line_col(7), (3, 1));
        assert_eq!(ix.line_col(8), (4, 1));
        // Past the end clamps.
        assert_eq!(ix.line_col(999), (4, 2));
    }

    #[test]
    fn line_text_excludes_newline() {
        let src = "ab\ncde\n\nf";
        let ix = LineIndex::new(src);
        assert_eq!(ix.line_text(src, 1), Some("ab"));
        assert_eq!(ix.line_text(src, 2), Some("cde"));
        assert_eq!(ix.line_text(src, 3), Some(""));
        assert_eq!(ix.line_text(src, 4), Some("f"));
        assert_eq!(ix.line_text(src, 5), None);
    }

    #[test]
    fn resolve_clamps_multiline_spans() {
        let src = "ab\ncde\nf";
        let ix = LineIndex::new(src);
        // Span covering "cde\nf" starts at line 2 col 1; underline stops
        // at the end of line 2.
        let r = Span::new(3, 8, 2).resolve(&ix);
        assert_eq!((r.line, r.col, r.width), (2, 1, 3));
        // Zero-width spans still underline one character.
        let r = Span::new(4, 4, 2).resolve(&ix);
        assert_eq!((r.line, r.col, r.width), (2, 2, 1));
    }
}
