//! Source positions, used for diagnostics and for the Table 2 LoC
//! accounting (a slice is reported by which source lines it keeps).

use std::fmt;

/// A half-open byte range in the source with the 1-based line of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Span {
    /// A span covering `start..end` on `line`.
    pub fn new(start: usize, end: usize, line: u32) -> Self {
        Span { start, end, line }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_extremes() {
        let a = Span::new(10, 20, 2);
        let b = Span::new(5, 15, 1);
        let m = a.merge(b);
        assert_eq!((m.start, m.end, m.line), (5, 20, 1));
    }

    #[test]
    fn display_is_line_oriented() {
        assert_eq!(Span::new(0, 1, 7).to_string(), "line 7");
    }
}
