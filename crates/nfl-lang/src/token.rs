//! Lexical tokens of NFL.

use crate::span::Span;
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals ----------------------------------------------------------
    /// Integer literal (decimal, hex `0x…`, or dotted-quad IPv4 which lexes
    /// to its 32-bit value — `3.3.3.3` is the integer `0x03030303`).
    Int(i64),
    /// String literal (interface names, log messages, rule patterns).
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// An identifier or a dotted packet path (`pkt` is an identifier; the
    /// dots of `pkt.ip.src` are separate [`TokenKind::Dot`] tokens).
    Ident(String),

    // Keywords ----------------------------------------------------------
    /// `const`
    Const,
    /// `config`
    Config,
    /// `state`
    State,
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `in`
    In,
    /// `not`
    Not,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,

    // Punctuation / operators --------------------------------------------
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `!`
    Bang,

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Bool(b) => write!(f, "{b}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Const => write!(f, "const"),
            TokenKind::Config => write!(f, "config"),
            TokenKind::State => write!(f, "state"),
            TokenKind::Fn => write!(f, "fn"),
            TokenKind::Let => write!(f, "let"),
            TokenKind::If => write!(f, "if"),
            TokenKind::Else => write!(f, "else"),
            TokenKind::While => write!(f, "while"),
            TokenKind::For => write!(f, "for"),
            TokenKind::In => write!(f, "in"),
            TokenKind::Not => write!(f, "not"),
            TokenKind::Return => write!(f, "return"),
            TokenKind::Break => write!(f, "break"),
            TokenKind::Continue => write!(f, "continue"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::DotDot => write!(f, ".."),
            TokenKind::Assign => write!(f, "="),
            TokenKind::Eq => write!(f, "=="),
            TokenKind::Ne => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::AndAnd => write!(f, "&&"),
            TokenKind::OrOr => write!(f, "||"),
            TokenKind::Amp => write!(f, "&"),
            TokenKind::Pipe => write!(f, "|"),
            TokenKind::Bang => write!(f, "!"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

/// Map an identifier to a keyword token, or keep it as an identifier.
pub fn keyword_or_ident(word: &str) -> TokenKind {
    match word {
        "const" => TokenKind::Const,
        "config" => TokenKind::Config,
        "state" => TokenKind::State,
        "fn" => TokenKind::Fn,
        "let" => TokenKind::Let,
        "if" => TokenKind::If,
        "else" => TokenKind::Else,
        "while" => TokenKind::While,
        "for" => TokenKind::For,
        "in" => TokenKind::In,
        "not" => TokenKind::Not,
        "return" => TokenKind::Return,
        "break" => TokenKind::Break,
        "continue" => TokenKind::Continue,
        "true" => TokenKind::Bool(true),
        "false" => TokenKind::Bool(false),
        _ => TokenKind::Ident(word.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(keyword_or_ident("if"), TokenKind::If);
        assert_eq!(keyword_or_ident("true"), TokenKind::Bool(true));
        assert_eq!(
            keyword_or_ident("pkt"),
            TokenKind::Ident("pkt".to_string())
        );
    }

    #[test]
    fn display_roundtrips_punct() {
        assert_eq!(TokenKind::DotDot.to_string(), "..");
        assert_eq!(TokenKind::Ne.to_string(), "!=");
    }
}
