//! The NFL type system and checker.
//!
//! Types are deliberately shallow: maps and arrays hold scalars or flat
//! tuples of ints (exactly what NF code keys NAT dictionaries on —
//! 4-tuples), never other containers. This keeps the whole system
//! const-constructible (no boxing) and the symbolic executor's value
//! domain finite-depth.
//!
//! Checking is flow-insensitive per function with a single refinement
//! pass: an empty `map()` starts as `Map(Unknown, Unknown)` and adopts the
//! key/value types of its first use — the same inference a reader of
//! Figure 1 performs on `f2b_nat = {}`.

use crate::ast::{BinOp, Expr, ExprKind, ForIter, Function, LValue, Program, Stmt, StmtKind, UnOp};
use crate::builtins;
use crate::span::Span;
use std::collections::HashMap;
use std::fmt;

/// Element types — what may live inside a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemTy {
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// String.
    Str,
    /// Flat tuple of `n` integers.
    Tuple(usize),
    /// A packet.
    Packet,
    /// Not yet known; unifies with anything.
    Unknown,
}

/// NFL types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit signed integer (also IPv4 addresses, ports, fds).
    Int,
    /// Boolean.
    Bool,
    /// String (interface names, log text, rule patterns).
    Str,
    /// No value (statement-position calls).
    Unit,
    /// A network packet.
    Packet,
    /// Flat tuple of `n` integers.
    Tuple(usize),
    /// Homogeneous array.
    Array(ElemTy),
    /// Hash map.
    Map(ElemTy, ElemTy),
    /// FIFO of packets (consumer-producer structure, Figure 4c).
    Queue,
    /// Not yet known; unifies with anything.
    Unknown,
}

impl Ty {
    /// Shorthand used by the builtin table.
    pub const ARRAY_OF_PACKET: Ty = Ty::Array(ElemTy::Packet);
    /// Shorthand used by the builtin table.
    pub const MAP_UNKNOWN: Ty = Ty::Map(ElemTy::Unknown, ElemTy::Unknown);

    /// View as an element type, if this type may live in a container.
    pub fn as_elem(self) -> Option<ElemTy> {
        match self {
            Ty::Int => Some(ElemTy::Int),
            Ty::Bool => Some(ElemTy::Bool),
            Ty::Str => Some(ElemTy::Str),
            Ty::Tuple(n) => Some(ElemTy::Tuple(n)),
            Ty::Packet => Some(ElemTy::Packet),
            Ty::Unknown => Some(ElemTy::Unknown),
            _ => None,
        }
    }
}

impl From<ElemTy> for Ty {
    fn from(e: ElemTy) -> Ty {
        match e {
            ElemTy::Int => Ty::Int,
            ElemTy::Bool => Ty::Bool,
            ElemTy::Str => Ty::Str,
            ElemTy::Tuple(n) => Ty::Tuple(n),
            ElemTy::Packet => Ty::Packet,
            ElemTy::Unknown => Ty::Unknown,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Bool => write!(f, "bool"),
            Ty::Str => write!(f, "str"),
            Ty::Unit => write!(f, "unit"),
            Ty::Packet => write!(f, "packet"),
            Ty::Tuple(n) => write!(f, "tuple{n}"),
            Ty::Array(e) => write!(f, "array<{}>", Ty::from(*e)),
            Ty::Map(k, v) => write!(f, "map<{}, {}>", Ty::from(*k), Ty::from(*v)),
            Ty::Queue => write!(f, "queue"),
            Ty::Unknown => write!(f, "?"),
        }
    }
}

/// Unify two types; `Unknown` adopts the other side. `None` on mismatch.
pub fn unify(a: Ty, b: Ty) -> Option<Ty> {
    match (a, b) {
        (Ty::Unknown, t) | (t, Ty::Unknown) => Some(t),
        (Ty::Map(k1, v1), Ty::Map(k2, v2)) => Some(Ty::Map(
            unify_elem(k1, k2)?,
            unify_elem(v1, v2)?,
        )),
        (Ty::Array(e1), Ty::Array(e2)) => Some(Ty::Array(unify_elem(e1, e2)?)),
        _ if a == b => Some(a),
        _ => None,
    }
}

fn unify_elem(a: ElemTy, b: ElemTy) -> Option<ElemTy> {
    match (a, b) {
        (ElemTy::Unknown, t) | (t, ElemTy::Unknown) => Some(t),
        _ if a == b => Some(a),
        _ => None,
    }
}

/// A type error with location and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for TypeError {}

/// The kind of a global binding, for mutability rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GlobalKind {
    Const,
    Config,
    State,
}

/// The typing environment produced by [`check`]; other crates use it to
/// query variable types.
#[derive(Debug, Clone, Default)]
pub struct TypeInfo {
    /// Global variable types (consts, configs, states).
    pub globals: HashMap<String, Ty>,
    /// Per-function local types, keyed by `"func::local"`.
    pub locals: HashMap<String, Ty>,
    /// Function return types.
    pub returns: HashMap<String, Ty>,
}

impl TypeInfo {
    /// Type of `name` as seen from inside `func`.
    pub fn var_ty(&self, func: &str, name: &str) -> Option<Ty> {
        self.locals
            .get(&format!("{func}::{name}"))
            .or_else(|| self.globals.get(name))
            .copied()
    }
}

struct Checker<'p> {
    program: &'p Program,
    globals: HashMap<String, (Ty, GlobalKind)>,
    info: TypeInfo,
    errors: Vec<TypeError>,
}

/// Check a program; on success returns the inferred [`TypeInfo`].
pub fn check(program: &Program) -> Result<TypeInfo, TypeError> {
    let mut ck = Checker {
        program,
        globals: HashMap::new(),
        info: TypeInfo::default(),
        errors: Vec::new(),
    };
    ck.check_program();
    match ck.errors.into_iter().next() {
        Some(e) => Err(e),
        None => Ok(ck.info),
    }
}

impl<'p> Checker<'p> {
    fn error(&mut self, span: Span, message: impl Into<String>) {
        self.errors.push(TypeError {
            message: message.into(),
            span,
        });
    }

    fn check_program(&mut self) {
        // Globals first: consts, then configs, then states — later groups
        // may reference earlier ones in initializers.
        for (items, kind) in [
            (&self.program.consts, GlobalKind::Const),
            (&self.program.configs, GlobalKind::Config),
            (&self.program.states, GlobalKind::State),
        ] {
            for item in items {
                let ty = self.infer_global_init(&item.init);
                if self.globals.contains_key(&item.name) {
                    self.error(item.span, format!("duplicate global `{}`", item.name));
                }
                self.globals.insert(item.name.clone(), (ty, kind));
                self.info.globals.insert(item.name.clone(), ty);
            }
        }
        // Pre-declare user functions (arity only; returns inferred lazily).
        let funcs: Vec<&Function> = self.program.functions.iter().collect();
        for f in &funcs {
            if builtins::lookup(&f.name).is_some() {
                self.error(f.span, format!("function `{}` shadows a builtin", f.name));
            }
        }
        for f in funcs {
            self.check_function(f);
        }
        if self.program.function("main").is_none() {
            self.error(Span::default(), "program has no `main` function");
        }
    }

    /// Globals are initialised outside any function: only literals,
    /// constructor builtins and references to earlier globals.
    fn infer_global_init(&mut self, e: &Expr) -> Ty {
        let mut locals = HashMap::new();
        self.infer_expr(e, "", &mut locals)
    }

    fn param_ty(&mut self, name: &str, span: Span) -> Ty {
        match name {
            "int" => Ty::Int,
            "bool" => Ty::Bool,
            "str" => Ty::Str,
            "packet" => Ty::Packet,
            "queue" => Ty::Queue,
            other => {
                if let Some(n) = other.strip_prefix("tuple").and_then(|s| s.parse().ok()) {
                    Ty::Tuple(n)
                } else {
                    self.error(span, format!("unknown parameter type `{other}`"));
                    Ty::Unknown
                }
            }
        }
    }

    fn check_function(&mut self, f: &Function) {
        let mut locals: HashMap<String, Ty> = HashMap::new();
        for (pname, pty) in &f.params {
            let ty = self.param_ty(pty, f.span);
            locals.insert(pname.clone(), ty);
        }
        self.check_block(&f.body, &f.name, &mut locals);
        for (name, ty) in locals {
            self.info.locals.insert(format!("{}::{name}", f.name), ty);
        }
        self.info
            .returns
            .entry(f.name.clone())
            .or_insert(Ty::Unit);
    }

    fn check_block(&mut self, stmts: &[Stmt], func: &str, locals: &mut HashMap<String, Ty>) {
        for s in stmts {
            self.check_stmt(s, func, locals);
        }
    }

    fn lookup_var(&self, func: &str, name: &str, locals: &HashMap<String, Ty>) -> Option<Ty> {
        locals
            .get(name)
            .copied()
            .or_else(|| self.globals.get(name).map(|(t, _)| *t))
            .or_else(|| {
                // Functions are first-class only as callback names.
                self.program.function(name).map(|_| Ty::Unknown)
            })
            .or_else(|| self.info.var_ty(func, name))
    }

    fn refine_var(
        &mut self,
        func: &str,
        name: &str,
        ty: Ty,
        locals: &mut HashMap<String, Ty>,
    ) {
        if let Some(slot) = locals.get_mut(name) {
            if let Some(u) = unify(*slot, ty) {
                *slot = u;
            }
        } else if let Some((slot, _)) = self.globals.get_mut(name) {
            if let Some(u) = unify(*slot, ty) {
                *slot = u;
                self.info.globals.insert(name.to_string(), u);
            }
        }
        let _ = func;
    }

    fn check_stmt(&mut self, s: &Stmt, func: &str, locals: &mut HashMap<String, Ty>) {
        match &s.kind {
            StmtKind::Let { name, value } => {
                let ty = self.infer_expr(value, func, locals);
                if ty == Ty::Unit {
                    self.error(s.span, format!("`{name}` bound to unit expression"));
                }
                locals.insert(name.clone(), ty);
            }
            StmtKind::Assign { target, value } => {
                let vty = self.infer_expr(value, func, locals);
                self.check_assign(target, vty, s.span, func, locals);
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cty = self.infer_expr(cond, func, locals);
                if unify(cty, Ty::Bool).is_none() {
                    self.error(cond.span, format!("if condition has type {cty}, not bool"));
                }
                self.check_block(then_branch, func, locals);
                self.check_block(else_branch, func, locals);
            }
            StmtKind::While { cond, body } => {
                let cty = self.infer_expr(cond, func, locals);
                if unify(cty, Ty::Bool).is_none() {
                    self.error(
                        cond.span,
                        format!("while condition has type {cty}, not bool"),
                    );
                }
                self.check_block(body, func, locals);
            }
            StmtKind::For { var, iter, body } => {
                let elem = match iter {
                    ForIter::Range(lo, hi) => {
                        for b in [lo, hi] {
                            let t = self.infer_expr(b, func, locals);
                            if unify(t, Ty::Int).is_none() {
                                self.error(b.span, format!("range bound has type {t}, not int"));
                            }
                        }
                        Ty::Int
                    }
                    ForIter::Array(arr) => {
                        let t = self.infer_expr(arr, func, locals);
                        match t {
                            Ty::Array(e) => Ty::from(e),
                            Ty::Unknown => Ty::Unknown,
                            other => {
                                self.error(
                                    arr.span,
                                    format!("for-in iterates {other}, expected array"),
                                );
                                Ty::Unknown
                            }
                        }
                    }
                };
                let shadowed = locals.insert(var.clone(), elem);
                self.check_block(body, func, locals);
                match shadowed {
                    Some(t) => {
                        locals.insert(var.clone(), t);
                    }
                    None => {
                        // Keep the loop var visible for TypeInfo, mirroring
                        // how analyses treat it, but it is not usable after
                        // the loop in well-formed programs.
                    }
                }
            }
            StmtKind::Return(Some(e)) => {
                let ty = self.infer_expr(e, func, locals);
                let prev = self.info.returns.get(func).copied().unwrap_or(Ty::Unknown);
                match unify(prev, ty) {
                    Some(u) => {
                        self.info.returns.insert(func.to_string(), u);
                    }
                    None => self.error(
                        s.span,
                        format!("conflicting return types {prev} and {ty} in `{func}`"),
                    ),
                }
            }
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Expr(e) => {
                self.infer_expr(e, func, locals);
            }
        }
    }

    fn check_assign(
        &mut self,
        target: &LValue,
        vty: Ty,
        span: Span,
        func: &str,
        locals: &mut HashMap<String, Ty>,
    ) {
        // Mutability: consts and configs are read-only inside functions.
        if let Some((_, kind)) = self.globals.get(target.base()) {
            match kind {
                GlobalKind::Const => {
                    self.error(span, format!("cannot assign to const `{}`", target.base()))
                }
                GlobalKind::Config => self.error(
                    span,
                    format!(
                        "cannot assign to config `{}` (configs are fixed at deploy time)",
                        target.base()
                    ),
                ),
                GlobalKind::State => {}
            }
        }
        match target {
            LValue::Var(name) => {
                let cur = self.lookup_var(func, name, locals);
                match cur {
                    Some(cur) => match unify(cur, vty) {
                        Some(u) => self.refine_var(func, name, u, locals),
                        None => self.error(
                            span,
                            format!("assigning {vty} to `{name}` of type {cur}"),
                        ),
                    },
                    None => self.error(
                        span,
                        format!("assignment to undeclared variable `{name}` (use `let`)"),
                    ),
                }
            }
            LValue::Index(base, key) => {
                let kty = self.infer_expr(key, func, locals);
                let bty = self.lookup_var(func, base, locals);
                match bty {
                    Some(Ty::Map(k, v)) => {
                        let (Some(ke), Some(ve)) = (kty.as_elem(), vty.as_elem()) else {
                            self.error(span, "map keys/values must be scalars or tuples");
                            return;
                        };
                        match (unify_elem(k, ke), unify_elem(v, ve)) {
                            (Some(nk), Some(nv)) => {
                                self.refine_var(func, base, Ty::Map(nk, nv), locals)
                            }
                            _ => self.error(
                                span,
                                format!(
                                    "map `{base}` is map<{},{}>, got key {kty} value {vty}",
                                    Ty::from(k),
                                    Ty::from(v)
                                ),
                            ),
                        }
                    }
                    Some(Ty::Array(e)) => {
                        if unify(kty, Ty::Int).is_none() {
                            self.error(span, "array index must be int");
                        }
                        match vty.as_elem().and_then(|ve| unify_elem(e, ve)) {
                            Some(ne) => self.refine_var(func, base, Ty::Array(ne), locals),
                            None => self.error(
                                span,
                                format!("array `{base}` holds {}, got {vty}", Ty::from(e)),
                            ),
                        }
                    }
                    Some(Ty::Unknown) => {
                        // Refine to a map, the common case.
                        if let (Some(ke), Some(ve)) = (kty.as_elem(), vty.as_elem()) {
                            self.refine_var(func, base, Ty::Map(ke, ve), locals);
                        }
                    }
                    Some(other) => {
                        self.error(span, format!("cannot index into `{base}` of type {other}"))
                    }
                    None => self.error(span, format!("unknown variable `{base}`")),
                }
            }
            LValue::Field(base, _field) => {
                let bty = self.lookup_var(func, base, locals);
                match bty {
                    Some(Ty::Packet) | Some(Ty::Unknown) => {
                        if unify(vty, Ty::Int).is_none() {
                            self.error(span, format!("packet fields are int, got {vty}"));
                        }
                    }
                    Some(other) => self.error(
                        span,
                        format!("field store on `{base}` of type {other}, expected packet"),
                    ),
                    None => self.error(span, format!("unknown variable `{base}`")),
                }
            }
        }
    }

    fn infer_expr(&mut self, e: &Expr, func: &str, locals: &mut HashMap<String, Ty>) -> Ty {
        match &e.kind {
            ExprKind::Int(_) => Ty::Int,
            ExprKind::Bool(_) => Ty::Bool,
            ExprKind::Str(_) => Ty::Str,
            ExprKind::Var(name) => match self.lookup_var(func, name, locals) {
                Some(t) => t,
                None => {
                    self.error(e.span, format!("unknown variable `{name}`"));
                    Ty::Unknown
                }
            },
            ExprKind::Field(base, _field) => {
                match self.lookup_var(func, base, locals) {
                    Some(Ty::Packet) | Some(Ty::Unknown) => {}
                    Some(other) => self.error(
                        e.span,
                        format!("field read on `{base}` of type {other}, expected packet"),
                    ),
                    None => self.error(e.span, format!("unknown variable `{base}`")),
                }
                Ty::Int
            }
            ExprKind::Tuple(es) => {
                for el in es {
                    let t = self.infer_expr(el, func, locals);
                    if unify(t, Ty::Int).is_none() {
                        self.error(el.span, format!("tuple element has type {t}, not int"));
                    }
                }
                Ty::Tuple(es.len())
            }
            ExprKind::Array(es) => {
                let mut elem = ElemTy::Unknown;
                for el in es {
                    let t = self.infer_expr(el, func, locals);
                    match t.as_elem().and_then(|te| unify_elem(elem, te)) {
                        Some(ne) => elem = ne,
                        None => self.error(
                            el.span,
                            format!("array element {t} conflicts with {}", Ty::from(elem)),
                        ),
                    }
                }
                Ty::Array(elem)
            }
            ExprKind::Index(base, idx) => {
                let bty = self.infer_expr(base, func, locals);
                let ity = self.infer_expr(idx, func, locals);
                match bty {
                    Ty::Map(k, v) => {
                        if ity.as_elem().and_then(|ie| unify_elem(k, ie)).is_none() {
                            self.error(
                                idx.span,
                                format!("map key has type {ity}, expected {}", Ty::from(k)),
                            );
                        }
                        Ty::from(v)
                    }
                    Ty::Array(el) => {
                        if unify(ity, Ty::Int).is_none() {
                            self.error(idx.span, "array index must be int");
                        }
                        Ty::from(el)
                    }
                    Ty::Tuple(n) => {
                        if unify(ity, Ty::Int).is_none() {
                            self.error(idx.span, "tuple index must be int");
                        }
                        if let ExprKind::Int(i) = idx.kind {
                            if i < 0 || i as usize >= n {
                                self.error(idx.span, format!("tuple index {i} out of range 0..{n}"));
                            }
                        }
                        Ty::Int
                    }
                    Ty::Unknown => Ty::Unknown,
                    other => {
                        self.error(e.span, format!("cannot index into value of type {other}"));
                        Ty::Unknown
                    }
                }
            }
            ExprKind::Binary(op, a, b) => {
                let ta = self.infer_expr(a, func, locals);
                let tb = self.infer_expr(b, func, locals);
                match op {
                    BinOp::Add
                    | BinOp::Sub
                    | BinOp::Mul
                    | BinOp::Div
                    | BinOp::Mod
                    | BinOp::BitAnd
                    | BinOp::BitOr => {
                        for (t, ex) in [(ta, a), (tb, b)] {
                            if unify(t, Ty::Int).is_none() {
                                self.error(
                                    ex.span,
                                    format!("arithmetic operand has type {t}, not int"),
                                );
                            }
                        }
                        Ty::Int
                    }
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        if unify(ta, tb).is_none() {
                            self.error(
                                e.span,
                                format!("comparison between {ta} and {tb}"),
                            );
                        }
                        Ty::Bool
                    }
                    BinOp::And | BinOp::Or => {
                        for (t, ex) in [(ta, a), (tb, b)] {
                            if unify(t, Ty::Bool).is_none() {
                                self.error(
                                    ex.span,
                                    format!("logical operand has type {t}, not bool"),
                                );
                            }
                        }
                        Ty::Bool
                    }
                    BinOp::In | BinOp::NotIn => {
                        match tb {
                            Ty::Map(k, _) => {
                                if ta.as_elem().and_then(|ae| unify_elem(k, ae)).is_none() {
                                    self.error(
                                        e.span,
                                        format!(
                                            "membership key {ta} vs map key {}",
                                            Ty::from(k)
                                        ),
                                    );
                                } else if let (ExprKind::Var(base), Some(ke)) =
                                    (&b.kind, ta.as_elem())
                                {
                                    // Refine the map's key type from use.
                                    self.refine_var(
                                        func,
                                        base,
                                        Ty::Map(ke, ElemTy::Unknown),
                                        locals,
                                    );
                                }
                            }
                            Ty::Array(el) => {
                                if ta.as_elem().and_then(|ae| unify_elem(el, ae)).is_none() {
                                    self.error(
                                        e.span,
                                        format!("membership of {ta} in array<{}>", Ty::from(el)),
                                    );
                                }
                            }
                            Ty::Unknown => {}
                            other => self.error(
                                e.span,
                                format!("`in` requires a map or array, got {other}"),
                            ),
                        }
                        Ty::Bool
                    }
                }
            }
            ExprKind::Unary(op, inner) => {
                let t = self.infer_expr(inner, func, locals);
                match op {
                    UnOp::Neg => {
                        if unify(t, Ty::Int).is_none() {
                            self.error(inner.span, format!("negating {t}"));
                        }
                        Ty::Int
                    }
                    UnOp::Not => {
                        if unify(t, Ty::Bool).is_none() {
                            self.error(inner.span, format!("logical-not of {t}"));
                        }
                        Ty::Bool
                    }
                }
            }
            ExprKind::Call(name, args) => self.infer_call(e, name, args, func, locals),
        }
    }

    fn infer_call(
        &mut self,
        e: &Expr,
        name: &str,
        args: &[Expr],
        func: &str,
        locals: &mut HashMap<String, Ty>,
    ) -> Ty {
        if let Some(b) = builtins::lookup(name) {
            if args.len() < b.min_args || args.len() > b.max_args {
                self.error(
                    e.span,
                    format!(
                        "`{name}` takes {}..={} arguments, got {}",
                        b.min_args,
                        b.max_args,
                        args.len()
                    ),
                );
            }
            for (i, a) in args.iter().enumerate() {
                let at = self.infer_expr(a, func, locals);
                if let Some(expect) = b.params.get(i) {
                    if unify(at, *expect).is_none() {
                        self.error(
                            a.span,
                            format!("argument {i} of `{name}` has type {at}, expected {expect}"),
                        );
                    }
                }
            }
            // `sniff(callback)` — the callback must be a unary fn(packet);
            // `spawn(body)` — the thread body takes no arguments.
            if b.effect == crate::builtins::Effect::Loop {
                if let Some(Expr {
                    kind: ExprKind::Var(cb),
                    ..
                }) = args.first()
                {
                    let want = if name == "spawn" { 0 } else { 1 };
                    match self.program.function(cb) {
                        Some(f) if f.params.len() == want => {}
                        Some(_) => self.error(
                            e.span,
                            format!("callback `{cb}` must take {want} parameter(s)"),
                        ),
                        None => self.error(e.span, format!("unknown callback `{cb}`")),
                    }
                }
            }
            return b.ret;
        }
        // User function.
        match self.program.function(name) {
            Some(f) => {
                if f.params.len() != args.len() {
                    self.error(
                        e.span,
                        format!(
                            "`{name}` takes {} arguments, got {}",
                            f.params.len(),
                            args.len()
                        ),
                    );
                }
                let ptys: Vec<(Span, String)> = f
                    .params
                    .iter()
                    .map(|(_, t)| (f.span, t.clone()))
                    .collect();
                for (a, (pspan, pty_name)) in args.iter().zip(ptys) {
                    let at = self.infer_expr(a, func, locals);
                    let pt = self.param_ty(&pty_name, pspan);
                    if unify(at, pt).is_none() {
                        self.error(
                            a.span,
                            format!("argument to `{name}` has type {at}, expected {pt}"),
                        );
                    }
                }
                self.info
                    .returns
                    .get(name)
                    .copied()
                    .unwrap_or(Ty::Unknown)
            }
            None => {
                self.error(e.span, format!("unknown function `{name}`"));
                Ty::Unknown
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn check_src(src: &str) -> Result<TypeInfo, TypeError> {
        check(&parse(src).expect("parse"))
    }

    #[test]
    fn figure1_core_typechecks() {
        let src = r#"
            config LB_IP = 3.3.3.3;
            config LB_PORT = 80;
            state f2b_nat = map();
            state rr_idx = 0;
            fn cb(pkt: packet) {
                let si = pkt.ip.src;
                let sp = pkt.tcp.sport;
                let tpl = (si, sp, pkt.ip.dst, pkt.tcp.dport);
                if tpl not in f2b_nat {
                    f2b_nat[tpl] = (LB_IP, 10000, 1.1.1.1, 80);
                }
                let nat = f2b_nat[tpl];
                pkt.ip.src = nat[0];
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#;
        let info = check_src(src).unwrap();
        assert_eq!(
            info.globals.get("f2b_nat"),
            Some(&Ty::Map(ElemTy::Tuple(4), ElemTy::Tuple(4)))
        );
        assert_eq!(info.globals.get("LB_PORT"), Some(&Ty::Int));
        assert_eq!(info.var_ty("cb", "si"), Some(Ty::Int));
        assert_eq!(info.var_ty("cb", "tpl"), Some(Ty::Tuple(4)));
    }

    #[test]
    fn config_assignment_rejected() {
        let err = check_src(
            "config m = 1; fn main() { m = 2; }",
        )
        .unwrap_err();
        assert!(err.message.contains("config"), "{err}");
    }

    #[test]
    fn const_assignment_rejected() {
        let err = check_src("const C = 1; fn main() { C = 2; }").unwrap_err();
        assert!(err.message.contains("const"), "{err}");
    }

    #[test]
    fn undeclared_assignment_rejected() {
        let err = check_src("fn main() { x = 1; }").unwrap_err();
        assert!(err.message.contains("undeclared"), "{err}");
    }

    #[test]
    fn condition_must_be_bool() {
        let err = check_src("fn main() { if 1 { } }").unwrap_err();
        assert!(err.message.contains("not bool"), "{err}");
    }

    #[test]
    fn arithmetic_on_tuple_rejected() {
        let err =
            check_src("fn main() { let t = (1, 2); let x = t + 1; }").unwrap_err();
        assert!(err.message.contains("not int"), "{err}");
    }

    #[test]
    fn map_key_conflict_rejected() {
        let err = check_src(
            r#"
            state m = map();
            fn main() {
                m[1] = 2;
                m[(1, 2)] = 3;
            }
        "#,
        )
        .unwrap_err();
        assert!(err.message.contains("map"), "{err}");
    }

    #[test]
    fn tuple_index_bounds_checked() {
        let err =
            check_src("fn main() { let t = (1, 2); let x = t[5]; }").unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
    }

    #[test]
    fn builtin_arity_checked() {
        let err = check_src("fn main() { hash(); }").unwrap_err();
        assert!(err.message.contains("arguments"), "{err}");
    }

    #[test]
    fn unknown_function_rejected() {
        let err = check_src("fn main() { zorp(1); }").unwrap_err();
        assert!(err.message.contains("unknown function"), "{err}");
    }

    #[test]
    fn missing_main_rejected() {
        let err = check_src("fn helper() { }").unwrap_err();
        assert!(err.message.contains("main"), "{err}");
    }

    #[test]
    fn sniff_callback_validated() {
        let err = check_src(
            "fn cb(a: packet, b: packet) { } fn main() { sniff(cb); }",
        )
        .unwrap_err();
        assert!(err.message.contains("callback"), "{err}");
    }

    #[test]
    fn user_fn_return_type_inferred() {
        let info = check_src(
            r#"
            fn pick(x: int) { return x + 1; }
            fn main() { let y = pick(2); }
        "#,
        )
        .unwrap();
        assert_eq!(info.returns.get("pick"), Some(&Ty::Int));
    }

    #[test]
    fn unify_rules() {
        assert_eq!(unify(Ty::Unknown, Ty::Int), Some(Ty::Int));
        assert_eq!(
            unify(
                Ty::Map(ElemTy::Unknown, ElemTy::Int),
                Ty::Map(ElemTy::Tuple(4), ElemTy::Unknown)
            ),
            Some(Ty::Map(ElemTy::Tuple(4), ElemTy::Int))
        );
        assert_eq!(unify(Ty::Int, Ty::Bool), None);
        assert_eq!(unify(Ty::Tuple(2), Ty::Tuple(3)), None);
    }

    #[test]
    fn shadowing_builtin_rejected() {
        let err = check_src("fn send(p: packet) { } fn main() { }").unwrap_err();
        assert!(err.message.contains("shadows"), "{err}");
    }

    #[test]
    fn for_over_array_binds_elem_type() {
        let info = check_src(
            r#"
            config servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
            fn main() {
                for s in servers {
                    let ip = s[0];
                }
            }
        "#,
        )
        .unwrap();
        assert_eq!(
            info.globals.get("servers"),
            Some(&Ty::Array(ElemTy::Tuple(2)))
        );
    }
}
