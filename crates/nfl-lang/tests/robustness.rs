//! Frontend robustness: the lexer and parser must never panic, and the
//! pretty-printer must be a parser fixpoint on everything the corpus
//! grammar can produce.

use nf_support::check::{
    self, ascii_printable, check, identifier, int_range, string_of, tuple2, Config, Gen,
};
use nfl_lang::{lexer, parse, parser, pretty};

/// Arbitrary byte soup: tokenize returns Ok or Err, never panics.
#[test]
fn lexer_total_on_arbitrary_input() {
    let cfg = Config::with_cases(256);
    check(
        "lexer_total_on_arbitrary_input",
        &cfg,
        &ascii_printable(120),
        |s| {
            let _ = lexer::tokenize(s);
        },
    );
}

/// Arbitrary ASCII with NFL-ish characters: parser never panics.
#[test]
fn parser_total_on_nflish_input() {
    let cfg = Config::with_cases(256);
    let soup = string_of("abcdefghijklmnopqrstuvwxyz0123456789(){}[];=<>!&|.,+*/% \n\"_-", 0, 200);
    check("parser_total_on_nflish_input", &cfg, &soup, |s| {
        let _ = parse(s);
    });
}

/// Integer literals round-trip through the lexer.
#[test]
fn int_literals_roundtrip() {
    let cfg = Config::with_cases(256);
    check(
        "int_literals_roundtrip",
        &cfg,
        &int_range(0, i64::MAX),
        |&v| {
            let toks = lexer::tokenize(&v.to_string()).unwrap();
            assert_eq!(toks[0].kind, nfl_lang::token::TokenKind::Int(v));
        },
    );
}

/// Dotted quads lex to the packed address.
#[test]
fn ip_literals_pack() {
    let cfg = Config::with_cases(256);
    let octet = || int_range(0, 255);
    let quad = tuple2(tuple2(octet(), octet()), tuple2(octet(), octet()));
    check("ip_literals_pack", &cfg, &quad, |((a, b), (c, d))| {
        let src = format!("{a}.{b}.{c}.{d}");
        let toks = lexer::tokenize(&src).unwrap();
        let expect = (a << 24) | (b << 16) | (c << 8) | d;
        assert_eq!(toks[0].kind, nfl_lang::token::TokenKind::Int(expect));
    });
}

/// Generator for random well-formed NFL expressions.
fn expr_gen() -> Gen<String> {
    let leaf = Gen::one_of(vec![
        int_range(0, 99_999).map(|v| v.to_string()),
        Gen::just("true".to_string()),
        Gen::just("false".to_string()),
        identifier(6),
        Gen::just("pkt.ip.src".to_string()),
        Gen::just("pkt.tcp.dport".to_string()),
    ]);
    check::recursive(leaf.clone(), 3, move |inner| {
        Gen::one_of(vec![
            leaf.clone(),
            tuple2(inner.clone(), inner.clone()).map(|(a, b)| format!("({a} + {b})")),
            tuple2(inner.clone(), inner.clone()).map(|(a, b)| format!("({a} == {b})")),
            tuple2(inner.clone(), inner.clone()).map(|(a, b)| format!("({a} % {b})")),
            inner.clone().map(|a| format!("hash({a})")),
            tuple2(inner.clone(), inner.clone()).map(|(a, b)| format!("min({a}, {b})")),
        ])
    })
}

/// parse ∘ pretty is a fixpoint on generated expressions.
#[test]
fn expr_pretty_parse_fixpoint() {
    let cfg = Config::with_cases(128);
    check("expr_pretty_parse_fixpoint", &cfg, &expr_gen(), |e| {
        let parsed = parser::parse_expr(e).unwrap();
        let printed = pretty::expr_to_string(&parsed);
        let reparsed = parser::parse_expr(&printed).unwrap();
        let reprinted = pretty::expr_to_string(&reparsed);
        assert_eq!(printed, reprinted);
    });
}

#[test]
fn deeply_nested_expressions_parse() {
    // Recursion-depth sanity: 64 levels of parens.
    let mut e = String::from("1");
    for _ in 0..64 {
        e = format!("({e} + 1)");
    }
    assert!(parser::parse_expr(&e).is_ok());
}

#[test]
fn error_messages_carry_line_numbers() {
    let err = parse("fn main() {\n let x = ;\n}").unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");
}
