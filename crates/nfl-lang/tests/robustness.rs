//! Frontend robustness: the lexer and parser must never panic, and the
//! pretty-printer must be a parser fixpoint on everything the corpus
//! grammar can produce.

use nfl_lang::{lexer, parse, parser, pretty};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup: tokenize returns Ok or Err, never panics.
    #[test]
    fn lexer_total_on_arbitrary_input(s in "\\PC*") {
        let _ = lexer::tokenize(&s);
    }

    /// Arbitrary ASCII with NFL-ish characters: parser never panics.
    #[test]
    fn parser_total_on_nflish_input(s in "[a-z0-9(){}\\[\\];=<>!&|.,+*/% \n\"_-]{0,200}") {
        let _ = parse(&s);
    }

    /// Integer literals round-trip through the lexer.
    #[test]
    fn int_literals_roundtrip(v in 0i64..=i64::MAX) {
        let toks = lexer::tokenize(&v.to_string()).unwrap();
        assert_eq!(toks[0].kind, nfl_lang::token::TokenKind::Int(v));
    }

    /// Dotted quads lex to the packed address.
    #[test]
    fn ip_literals_pack(a in 0u8..=255, b in 0u8..=255, c in 0u8..=255, d in 0u8..=255) {
        let src = format!("{a}.{b}.{c}.{d}");
        let toks = lexer::tokenize(&src).unwrap();
        let expect = (i64::from(a) << 24) | (i64::from(b) << 16) | (i64::from(c) << 8) | i64::from(d);
        assert_eq!(toks[0].kind, nfl_lang::token::TokenKind::Int(expect));
    }
}

/// Strategy: generate random well-formed NFL expressions.
fn expr_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0i64..100000).prop_map(|v| v.to_string()),
        Just("true".to_string()),
        Just("false".to_string()),
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| s),
        Just("pkt.ip.src".to_string()),
        Just("pkt.tcp.dport".to_string()),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} == {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} % {b})")),
            inner.clone().prop_map(|a| format!("hash({a})")),
            (inner.clone(), inner).prop_map(|(a, b)| format!("min({a}, {b})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// parse ∘ pretty is a fixpoint on generated expressions.
    #[test]
    fn expr_pretty_parse_fixpoint(e in expr_strategy()) {
        let parsed = parser::parse_expr(&e).unwrap();
        let printed = pretty::expr_to_string(&parsed);
        let reparsed = parser::parse_expr(&printed).unwrap();
        let reprinted = pretty::expr_to_string(&reparsed);
        prop_assert_eq!(printed, reprinted);
    }
}

#[test]
fn deeply_nested_expressions_parse() {
    // Recursion-depth sanity: 64 levels of parens.
    let mut e = String::from("1");
    for _ in 0..64 {
        e = format!("({e} + 1)");
    }
    assert!(parser::parse_expr(&e).is_ok());
}

#[test]
fn error_messages_carry_line_numbers() {
    let err = parse("fn main() {\n let x = ;\n}").unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");
}
