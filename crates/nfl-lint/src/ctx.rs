//! The shared analysis context lint passes run over.
//!
//! Built once per linted program: the normalised per-packet loop, its
//! CFG/def-use/reaching solution (inside the [`Pdg`]), dominator and
//! post-dominator trees, the packet slice, and the StateAlyzer
//! classification — everything `nfl-analysis`/`nfl-slicer` already know
//! how to compute, materialised so each pass pays nothing extra.

use nfl_analysis::dom::{dominators, post_dominators, DomTree};
use nfl_analysis::normalize::{normalize, PacketLoop, StructureError};
use nfl_analysis::pdg::{default_boundary, Pdg};
use nfl_lang::types::TypeInfo;
use nfl_lang::{Program, Stmt, StmtId};
use nfl_slicer::statealyzer::{statealyzer, StateAlyzerInput, VarClasses};
use nfl_slicer::static_slice::packet_slice;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Everything a lint pass may consult.
#[derive(Debug, Clone)]
pub struct AnalysisCtx {
    /// The normalised (and, where needed, socket-unfolded) packet loop.
    pub nf_loop: PacketLoop,
    /// Types of the normalised program.
    pub info: TypeInfo,
    /// The PDG (carries the CFG, per-node def/use, and reaching defs).
    pub pdg: Pdg,
    /// Dominator tree rooted at entry.
    pub dom: DomTree,
    /// Post-dominator tree rooted at exit.
    pub post_dom: DomTree,
    /// Statements of the packet processing slice (Algorithm 1 lines 1–4).
    pub pkt_slice: HashSet<StmtId>,
    /// Whole-program StateAlyzer classification (Table 1) — the lint
    /// wants the `logVar` column, which the slice-restricted variant
    /// drops.
    pub classes: VarClasses,
    /// Variables defined at function entry (globals + parameters).
    pub boundary: BTreeSet<String>,
}

impl AnalysisCtx {
    /// Normalise `program` into its per-packet loop, unfolding sockets
    /// for the Figure 4d shape. This is the exact front half of
    /// [`AnalysisCtx::build`], exposed so incremental callers
    /// (`nf-query`) can memoize the loop as its own fact.
    pub fn normalize_loop(program: &Program) -> Result<PacketLoop, String> {
        match normalize(program) {
            Ok(pl) => Ok(pl),
            Err(StructureError::NestedLoop) => {
                let unfolded = nf_tcp::unfold_sockets(program).map_err(|e| e.to_string())?;
                normalize(&unfolded).map_err(|e| e.to_string())
            }
            Err(e) => Err(e.to_string()),
        }
    }

    /// Normalise `program` (unfolding sockets for the Figure 4d shape)
    /// and build the context.
    pub fn build(program: &Program) -> Result<AnalysisCtx, String> {
        AnalysisCtx::from_loop(AnalysisCtx::normalize_loop(program)?)
    }

    /// Build the context from an already-normalised packet loop.
    pub fn from_loop(nf_loop: PacketLoop) -> Result<AnalysisCtx, String> {
        let info = nfl_lang::types::check(&nf_loop.program).map_err(|e| e.to_string())?;
        let boundary = default_boundary(&nf_loop.program, &nf_loop.func);
        let pdg = Pdg::build(&nf_loop.program, &nf_loop.func, &boundary);
        let dom = dominators(&pdg.cfg);
        let post_dom = post_dominators(&pdg.cfg);
        let pkt_slice = packet_slice(&pdg, &nf_loop.program, &nf_loop.func).stmts;
        let classes = statealyzer(&nf_loop, &pkt_slice, &info, StateAlyzerInput::WholeProgram);
        Ok(AnalysisCtx {
            nf_loop,
            info,
            pdg,
            dom,
            post_dom,
            pkt_slice,
            classes,
            boundary,
        })
    }

    /// The analysed program.
    pub fn program(&self) -> &Program {
        &self.nf_loop.program
    }

    /// Name of the per-packet function.
    pub fn func(&self) -> &str {
        &self.nf_loop.func
    }

    /// Statement lookup by id (includes every function, so spans of
    /// non-packet code resolve too).
    pub fn stmt_map(&self) -> HashMap<StmtId, &Stmt> {
        let mut m = HashMap::new();
        self.program().for_each_stmt(|s| {
            m.insert(s.id, s);
        });
        m
    }

    /// Names of `state` declarations.
    pub fn state_names(&self) -> BTreeSet<String> {
        self.program().states.iter().map(|i| i.name.clone()).collect()
    }

    /// Names of `config` and `const` declarations.
    pub fn config_names(&self) -> BTreeSet<String> {
        self.program()
            .configs
            .iter()
            .chain(&self.program().consts)
            .map(|i| i.name.clone())
            .collect()
    }

    /// All persistent names (consts + configs + states).
    pub fn persistent(&self) -> BTreeSet<String> {
        let mut p = self.config_names();
        p.extend(self.state_names());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_for_callback_shape() {
        let p = nfl_lang::parse_and_check(
            r#"
            state hits = 0;
            fn cb(pkt: packet) { hits = hits + 1; send(pkt); }
            fn main() { sniff(cb); }
            "#,
        )
        .unwrap();
        let ctx = AnalysisCtx::build(&p).unwrap();
        assert_eq!(ctx.func(), "cb");
        assert!(ctx.state_names().contains("hits"));
        assert!(ctx.boundary.contains("hits") && ctx.boundary.contains("pkt"));
        // The send is in the packet slice; some statement is classified.
        assert!(!ctx.pkt_slice.is_empty());
        assert_eq!(ctx.classes.class_of("hits"), Some("logVar"));
    }

    #[test]
    fn nested_loop_unfolds() {
        let p = nfl_lang::parse_and_check(
            r#"
            config PORT = 80;
            state idx = 0;
            config servers = [(1.1.1.1, 8080), (2.2.2.2, 8080)];
            fn main() {
                let lfd = listen(PORT);
                while true {
                    let cfd = accept(lfd);
                    let srv = servers[idx];
                    idx = (idx + 1) % len(servers);
                    if fork() == 0 {
                        let sfd = connect(srv[0], srv[1]);
                        while true {
                            let which = select2(cfd, sfd);
                            if which == 0 {
                                let buf = sock_read(cfd);
                                sock_write(sfd, buf);
                            } else {
                                let buf2 = sock_read(sfd);
                                sock_write(cfd, buf2);
                            }
                        }
                    }
                }
            }
            "#,
        )
        .unwrap();
        let ctx = AnalysisCtx::build(&p).unwrap();
        assert!(ctx.state_names().contains("__tcp"), "{:?}", ctx.state_names());
    }

    #[test]
    fn unstructured_program_errors() {
        let p = nfl_lang::parse_and_check("fn main() { let x = 1; }").unwrap();
        assert!(AnalysisCtx::build(&p).is_err());
    }
}
