//! The shared diagnostic type: stable codes, severities, spans.
//!
//! Every lint pass reports through [`Diagnostic`]; the codes are part of
//! the tool's public contract (scripts grep for them, goldens pin them),
//! so existing codes must never be renumbered — new lints append.

use nf_support::json::{FromJson, JsonError, ToJson, Value};
use nfl_lang::Span;
use std::fmt;

/// How serious a diagnostic is. `nfactor lint` exits non-zero iff at
/// least one [`Severity::Error`] diagnostic fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational.
    Note,
    /// Suspicious but not necessarily wrong.
    Warning,
    /// An analysis-certain bug.
    Error,
}

impl Severity {
    /// The lowercase rendering used by both renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parse the [`Severity::as_str`] form back.
    pub fn from_str(s: &str) -> Option<Severity> {
        match s {
            "note" => Some(Severity::Note),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes. The numeric part never changes; the slug is
/// the human-readable alias shown in brackets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// `NFL001` — a `let` binding whose value is never read.
    DeadLocal,
    /// `NFL002` — a `state` declaration never touched by the packet loop.
    DeadState,
    /// `NFL003` — a `state` variable only ever written.
    WriteOnlyState,
    /// `NFL004` — code unreachable from the function entry.
    UnreachableCode,
    /// `NFL005` — a `config`/`const` never read by the packet loop.
    UnusedConfig,
    /// `NFL006` — a local variable used with no initializing definition.
    UseBeforeInit,
    /// `NFL007` — a state-map read not guarded by any dominating
    /// membership test or insertion.
    UnguardedMapRead,
    /// `NFL008` — StateAlyzer inconsistency: a `logVar` feeds a flow
    /// action.
    ClassMismatch,
    /// `NFL009` — state that cannot be sharded per-flow (needs a global
    /// shard).
    SharedState,
}

impl Code {
    /// Every code, in numeric order.
    pub const ALL: [Code; 9] = [
        Code::DeadLocal,
        Code::DeadState,
        Code::WriteOnlyState,
        Code::UnreachableCode,
        Code::UnusedConfig,
        Code::UseBeforeInit,
        Code::UnguardedMapRead,
        Code::ClassMismatch,
        Code::SharedState,
    ];

    /// The stable `NFL0xx` code.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::DeadLocal => "NFL001",
            Code::DeadState => "NFL002",
            Code::WriteOnlyState => "NFL003",
            Code::UnreachableCode => "NFL004",
            Code::UnusedConfig => "NFL005",
            Code::UseBeforeInit => "NFL006",
            Code::UnguardedMapRead => "NFL007",
            Code::ClassMismatch => "NFL008",
            Code::SharedState => "NFL009",
        }
    }

    /// The human-readable slug.
    pub fn slug(self) -> &'static str {
        match self {
            Code::DeadLocal => "dead-local",
            Code::DeadState => "dead-state",
            Code::WriteOnlyState => "write-only-state",
            Code::UnreachableCode => "unreachable-code",
            Code::UnusedConfig => "unused-config",
            Code::UseBeforeInit => "use-before-init",
            Code::UnguardedMapRead => "unguarded-map-read",
            Code::ClassMismatch => "class-mismatch",
            Code::SharedState => "shared-state",
        }
    }

    /// The severity the framework assigns this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::UseBeforeInit | Code::ClassMismatch => Severity::Error,
            Code::UnusedConfig => Severity::Note,
            _ => Severity::Warning,
        }
    }

    /// Parse an `NFL0xx` string back into a code.
    pub fn from_str(s: &str) -> Option<Code> {
        Code::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding, span-anchored in the analysed source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (normally [`Code::severity`]).
    pub severity: Severity,
    /// Where in the source, best effort (synthesized statements carry the
    /// default span).
    pub span: Span,
    /// The variable the finding is about, if any.
    pub var: Option<String>,
    /// Human-readable message.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic with the code's default severity.
    pub fn new(code: Code, span: Span, var: Option<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            var,
            message: message.into(),
        }
    }

    /// The total order diagnostics are reported in: source position first,
    /// then code, then variable — deterministic across runs by
    /// construction.
    pub fn sort_key(&self) -> (usize, usize, &'static str, &Option<String>, &String) {
        (
            self.span.start,
            self.span.end,
            self.code.as_str(),
            &self.var,
            &self.message,
        )
    }
}

impl ToJson for Diagnostic {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("code".into(), Value::Str(self.code.as_str().into())),
            ("slug".into(), Value::Str(self.code.slug().into())),
            (
                "severity".into(),
                Value::Str(self.severity.as_str().into()),
            ),
            ("line".into(), Value::Int(i64::from(self.span.line))),
            ("start".into(), Value::Int(self.span.start as i64)),
            ("end".into(), Value::Int(self.span.end as i64)),
            (
                "var".into(),
                match &self.var {
                    Some(v) => Value::Str(v.clone()),
                    None => Value::Null,
                },
            ),
            ("message".into(), Value::Str(self.message.clone())),
        ])
    }
}

impl FromJson for Diagnostic {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let code_str = v
            .field("code")?
            .as_str()
            .ok_or_else(|| JsonError::msg("code must be a string"))?;
        let code = Code::from_str(code_str)
            .ok_or_else(|| JsonError::msg(format!("unknown code {code_str}")))?;
        let severity_str = v
            .field("severity")?
            .as_str()
            .ok_or_else(|| JsonError::msg("severity must be a string"))?;
        let severity = Severity::from_str(severity_str)
            .ok_or_else(|| JsonError::msg(format!("unknown severity {severity_str}")))?;
        let int = |k: &str| -> Result<i64, JsonError> {
            v.field(k)?
                .as_int()
                .ok_or_else(|| JsonError::msg(format!("{k} must be an integer")))
        };
        let var = match v.field("var")? {
            Value::Null => None,
            Value::Str(s) => Some(s.clone()),
            _ => return Err(JsonError::msg("var must be a string or null")),
        };
        Ok(Diagnostic {
            code,
            severity,
            span: Span::new(int("start")? as usize, int("end")? as usize, int("line")? as u32),
            var,
            message: v
                .field("message")?
                .as_str()
                .ok_or_else(|| JsonError::msg("message must be a string"))?
                .to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for (i, c) in Code::ALL.into_iter().enumerate() {
            assert_eq!(c.as_str(), format!("NFL{:03}", i + 1));
            assert!(seen.insert(c.slug()), "duplicate slug {}", c.slug());
            assert_eq!(Code::from_str(c.as_str()), Some(c));
        }
        assert_eq!(Code::from_str("NFL999"), None);
    }

    #[test]
    fn severity_roundtrips() {
        for s in [Severity::Note, Severity::Warning, Severity::Error] {
            assert_eq!(Severity::from_str(s.as_str()), Some(s));
        }
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn diagnostic_json_roundtrips() {
        let d = Diagnostic::new(
            Code::SharedState,
            Span::new(10, 20, 3),
            Some("b2f_nat".into()),
            "state `b2f_nat` needs a global shard",
        );
        let v = d.to_json();
        let parsed = Value::parse(&v.render()).unwrap();
        assert_eq!(Diagnostic::from_json(&parsed).unwrap(), d);
        // A var-less diagnostic too.
        let d2 = Diagnostic::new(Code::UnreachableCode, Span::default(), None, "dead");
        assert_eq!(Diagnostic::from_json(&d2.to_json()).unwrap(), d2);
    }
}
