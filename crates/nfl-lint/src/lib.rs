//! nfl-lint — a diagnostics framework over the NFL analyses.
//!
//! The synthesis pipeline (`nfl-slicer`, `nfl-symex`) consumes the
//! CFG/def-use/dominator/PDG machinery of `nfl-analysis` to *extract*
//! models; this crate points the same machinery back at the NF source to
//! *judge* it. A [`PassManager`](passes::PassManager) runs registered
//! [`LintPass`](passes::LintPass)es over one shared
//! [`AnalysisCtx`](ctx::AnalysisCtx) (built once: normalisation, types,
//! PDG, dominators, packet slice, StateAlyzer classes), and every pass
//! reports through a common [`Diagnostic`] carrying a stable `NFL0xx`
//! [`Code`], a [`Severity`], and a byte [`Span`](nfl_lang::Span).
//!
//! The headline pass is the **cross-flow state-sharing analysis**
//! ([`sharding`]): for every `state` map it traces each access's key
//! expression back through the def/use chains and decides whether the
//! key derives purely from the packet's flow tuple (`per-flow` — the map
//! partitions under RSS and the NF shards across cores) or mixes
//! non-flow data (`shared` — a global shard is unavoidable). That is the
//! question the paper's oisVar/logVar taxonomy stops short of answering,
//! and the one that decides whether a synthesised model can be deployed
//! scale-out.
//!
//! Renderers: rustc-style text snippets ([`render::render_text`]) and
//! machine JSON via `nf_support::json` ([`LintReport::to_json`]).
//!
//! ```
//! let report = nfl_lint::lint_source(
//!     "demo",
//!     r#"
//!     state buckets = map();
//!     fn cb(pkt: packet) {
//!         let src = pkt.ip.src;
//!         if src not in buckets { buckets[src] = 10; }
//!         if buckets[src] > 0 { buckets[src] = buckets[src] - 1; send(pkt); }
//!     }
//!     fn main() { sniff(cb); }
//!     "#,
//! )
//! .unwrap();
//! assert!(report.sharding.shardable());
//! assert!(!report.has_errors());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctx;
pub mod diag;
pub mod passes;
pub mod render;
pub mod sharding;

pub use ctx::AnalysisCtx;
pub use diag::{Code, Diagnostic, Severity};
pub use passes::{default_passes, finish_sink, LintPass, LintSink, PassManager};
pub use sharding::{mirror_field, DispatchKey, ShardingReport, StateShard, StateVerdict};

use nf_support::json::{FromJson, JsonError, ToJson, Value};
use nfl_lang::Program;

/// The result of linting one NF.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// NF name (corpus id or file stem).
    pub name: String,
    /// Sorted diagnostics.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-state sharding verdicts.
    pub sharding: ShardingReport,
    /// The *analysed* source text the diagnostic spans index — for
    /// socket-shaped NFs this is the unfolded program, not the input.
    /// Carried for rendering; not serialised.
    pub source: String,
}

impl LintReport {
    /// Did any [`Severity::Error`] diagnostic fire? (`nfactor lint`'s
    /// exit status.)
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Render the human-readable text form.
    pub fn render_text(&self) -> String {
        render::render_text(self)
    }
}

impl ToJson for LintReport {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::Str(self.name.clone())),
            (
                "diagnostics".into(),
                Value::Array(self.diagnostics.iter().map(ToJson::to_json).collect()),
            ),
            ("sharding".into(), self.sharding.to_json()),
            ("has_errors".into(), Value::Bool(self.has_errors())),
        ])
    }
}

impl FromJson for LintReport {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(LintReport {
            name: v
                .field("name")?
                .as_str()
                .ok_or_else(|| JsonError::msg("name must be a string"))?
                .to_string(),
            diagnostics: v
                .field("diagnostics")?
                .as_array()
                .ok_or_else(|| JsonError::msg("diagnostics must be an array"))?
                .iter()
                .map(Diagnostic::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            sharding: ShardingReport::from_json(v.field("sharding")?)?,
            source: String::new(),
        })
    }
}

/// Lint an already-parsed program with the default passes.
pub fn lint_program(name: &str, program: &Program) -> Result<LintReport, String> {
    lint_program_traced(name, program, &nf_trace::Tracer::disabled())
}

/// [`lint_program`] with per-pass timing recorded into `tracer`
/// (`lint.ctx.build` for the shared analysis context, then one
/// `lint.pass.<name>` span per registered pass).
pub fn lint_program_traced(
    name: &str,
    program: &Program,
    tracer: &nf_trace::Tracer,
) -> Result<LintReport, String> {
    let span = tracer.span("lint.ctx.build");
    let ctx = AnalysisCtx::build(program)?;
    span.end();
    let sink = PassManager::with_default_passes().run_traced(&ctx, tracer);
    Ok(LintReport {
        name: name.to_string(),
        diagnostics: sink.diagnostics,
        sharding: sink.sharding.unwrap_or_default(),
        source: ctx.program().source.clone(),
    })
}

/// Parse, check and lint NFL source with the default passes.
pub fn lint_source(name: &str, src: &str) -> Result<LintReport, String> {
    lint_source_traced(name, src, &nf_trace::Tracer::disabled())
}

/// [`lint_source`] with per-pass timing recorded into `tracer`.
pub fn lint_source_traced(
    name: &str,
    src: &str,
    tracer: &nf_trace::Tracer,
) -> Result<LintReport, String> {
    let program = nfl_lang::parse_and_check(src)?;
    lint_program_traced(name, &program, tracer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_omits_source_but_roundtrips_rest() {
        let report = lint_source(
            "demo",
            r#"
            config UNUSED = 1;
            state next = 0;
            state m = map();
            fn cb(pkt: packet) {
                m[next] = 1;
                next = next + 1;
                send(pkt);
            }
            fn main() { sniff(cb); }
            "#,
        )
        .unwrap();
        let rendered = report.to_json().render();
        assert!(!rendered.contains("fn cb"), "source leaked into JSON");
        let parsed = Value::parse(&rendered).unwrap();
        let back = LintReport::from_json(&parsed).unwrap();
        assert_eq!(back.name, report.name);
        assert_eq!(back.diagnostics, report.diagnostics);
        assert_eq!(back.sharding, report.sharding);
        assert_eq!(back.has_errors(), report.has_errors());
    }

    #[test]
    fn unfolded_source_is_carried_for_rendering() {
        // balance-shaped NF: spans refer to the unfolded text, which the
        // report must carry so the renderer shows real snippets.
        let src = nf_corpus::balance::source(0);
        let report = lint_source("balance", &src).unwrap();
        assert!(report.source.contains("__tcp"), "expected unfolded source");
        // Rendering must not panic and must mention the verdict.
        assert!(report.render_text().contains("sharding verdict for balance"));
    }
}
