//! The pass manager and the built-in lint passes.
//!
//! A [`LintPass`] is a stateless rule that inspects the shared
//! [`AnalysisCtx`] and reports [`Diagnostic`]s into a [`LintSink`]. The
//! [`PassManager`] owns a registry of passes, runs them in registration
//! order, and sorts the combined findings into the deterministic order
//! [`Diagnostic::sort_key`] defines — so two runs over the same program
//! always produce byte-identical reports.

use crate::ctx::AnalysisCtx;
use crate::diag::{Code, Diagnostic};
use crate::sharding::{self, ShardingReport};
use nf_trace::Tracer;
use nfl_analysis::defuse::def_use;
use nfl_analysis::liveness;
use nfl_lang::{BinOp, Expr, ExprKind, LValue, Stmt, StmtKind};
use std::collections::{BTreeSet, HashSet};

/// Where passes deposit their findings.
#[derive(Debug, Default)]
pub struct LintSink {
    /// All diagnostics reported so far.
    pub diagnostics: Vec<Diagnostic>,
    /// Set by the sharding pass.
    pub sharding: Option<ShardingReport>,
}

impl LintSink {
    /// Report one diagnostic.
    pub fn report(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }
}

/// One registered lint rule.
pub trait LintPass {
    /// Stable pass name (used in `--help`-style listings).
    fn name(&self) -> &'static str;
    /// The codes this pass may emit.
    fn codes(&self) -> &'static [Code];
    /// Inspect `ctx` and report into `sink`.
    fn run(&self, ctx: &AnalysisCtx, sink: &mut LintSink);
}

/// Runs registered passes over a shared [`AnalysisCtx`].
pub struct PassManager {
    passes: Vec<Box<dyn LintPass>>,
}

impl PassManager {
    /// An empty manager.
    pub fn new() -> PassManager {
        PassManager { passes: Vec::new() }
    }

    /// The default registry: every built-in pass, in code order.
    pub fn with_default_passes() -> PassManager {
        PassManager { passes: default_passes() }
    }

    /// Add a pass to the registry.
    pub fn register(&mut self, pass: Box<dyn LintPass>) {
        self.passes.push(pass);
    }

    /// Registered pass names, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// The registered passes, in run order.
    pub fn passes(&self) -> &[Box<dyn LintPass>] {
        &self.passes
    }

    /// Run every pass and return the sorted findings.
    pub fn run(&self, ctx: &AnalysisCtx) -> LintSink {
        self.run_traced(ctx, &Tracer::disabled())
    }

    /// [`PassManager::run`] with per-pass timing: each pass runs under a
    /// `lint.pass.<name>` span, and the diagnostic total lands in the
    /// `lint.diagnostics` counter.
    pub fn run_traced(&self, ctx: &AnalysisCtx, tracer: &Tracer) -> LintSink {
        let mut sink = LintSink::default();
        for pass in &self.passes {
            let span = tracer.span(format!("lint.pass.{}", pass.name()));
            pass.run(ctx, &mut sink);
            span.end();
        }
        finish_sink(&mut sink);
        if tracer.is_enabled() {
            tracer.count("lint.diagnostics", sink.diagnostics.len() as u64);
        }
        sink
    }
}

/// The built-in passes in registration order. Exposed so callers that
/// memoize each pass individually (`nf-query`) run the *same* list in
/// the *same* order as [`PassManager::with_default_passes`].
pub fn default_passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(DeadStorePass),
        Box::new(UnreachableCodePass),
        Box::new(UnusedConfigPass),
        Box::new(UseBeforeInitPass),
        Box::new(UnguardedMapReadPass),
        Box::new(ClassMismatchPass),
        Box::new(ShardingPass),
    ]
}

/// The canonical post-processing every lint run applies: sort combined
/// findings into [`Diagnostic::sort_key`] order and drop exact
/// duplicates. Shared between [`PassManager::run_traced`] and the
/// incremental engine's merge step so both produce byte-identical
/// reports.
pub fn finish_sink(sink: &mut LintSink) {
    sink.diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    sink.diagnostics.dedup();
}

impl Default for PassManager {
    fn default() -> Self {
        PassManager::with_default_passes()
    }
}

// ---------------------------------------------------------------------------
// NFL001/NFL002/NFL003 — dead stores (ported from nfl-analysis::live).

/// `let` bindings never read (NFL001), `state` never used (NFL002) and
/// state only ever written (NFL003) in the per-packet function.
pub struct DeadStorePass;

impl LintPass for DeadStorePass {
    fn name(&self) -> &'static str {
        "dead-store"
    }
    fn codes(&self) -> &'static [Code] {
        &[Code::DeadLocal, Code::DeadState, Code::WriteOnlyState]
    }
    fn run(&self, ctx: &AnalysisCtx, sink: &mut LintSink) {
        let persistent = ctx.persistent();
        let (cfg, live) = liveness(ctx.program(), ctx.func(), &persistent);
        let stmts = ctx.stmt_map();

        // Dead locals: a `let` whose variable is not live out of the
        // defining node.
        for node in 0..cfg.len() {
            let Some(sid) = cfg.nodes[node].stmt else { continue };
            let Some(s) = stmts.get(&sid) else { continue };
            if let StmtKind::Let { name, .. } = &s.kind {
                if !persistent.contains(name) && !live.live_out[node].contains(name) {
                    sink.report(Diagnostic::new(
                        Code::DeadLocal,
                        s.span,
                        Some(name.clone()),
                        format!(
                            "the value bound to `{name}` here is never read \
                             (every path overwrites or ignores it)"
                        ),
                    ));
                }
            }
        }

        // Real reads vs writes of each variable across the per-packet
        // function (a weak update's self-read does not count as a read).
        let mut read = BTreeSet::new();
        let mut written = BTreeSet::new();
        if let Some(f) = ctx.program().function(ctx.func()) {
            fn walk(stmts: &[Stmt], read: &mut BTreeSet<String>, written: &mut BTreeSet<String>) {
                for s in stmts {
                    let du = def_use(s);
                    for u in &du.uses {
                        if !du.defs.iter().any(|(d, _)| d == u) {
                            read.insert(u.clone());
                        }
                    }
                    for (d, _) in &du.defs {
                        written.insert(d.clone());
                    }
                    match &s.kind {
                        StmtKind::If { then_branch, else_branch, .. } => {
                            walk(then_branch, read, written);
                            walk(else_branch, read, written);
                        }
                        StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                            walk(body, read, written)
                        }
                        _ => {}
                    }
                }
            }
            walk(&f.body, &mut read, &mut written);
        }
        for st in &ctx.program().states {
            if written.contains(&st.name) && !read.contains(&st.name) {
                sink.report(Diagnostic::new(
                    Code::WriteOnlyState,
                    st.span,
                    Some(st.name.clone()),
                    format!(
                        "state `{}` is only ever written (a log counter at best; \
                         consider whether it should influence forwarding)",
                        st.name
                    ),
                ));
            } else if !written.contains(&st.name) && !read.contains(&st.name) {
                sink.report(Diagnostic::new(
                    Code::DeadState,
                    st.span,
                    Some(st.name.clone()),
                    format!("state `{}` is never used", st.name),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// NFL004 — unreachable code.

/// Statements the CFG cannot reach from entry. Two flavours exist:
/// statements after a `return`/`break`/`continue` in the same block are
/// never even lowered into the CFG (no node), and statements chained
/// after an unreachable join (both `if` arms transfer away) get nodes
/// with no dominator-tree parent. Only the first statement of each
/// unreachable run is reported, not the whole cascade.
pub struct UnreachableCodePass;

impl LintPass for UnreachableCodePass {
    fn name(&self) -> &'static str {
        "unreachable-code"
    }
    fn codes(&self) -> &'static [Code] {
        &[Code::UnreachableCode]
    }
    fn run(&self, ctx: &AnalysisCtx, sink: &mut LintSink) {
        let Some(f) = ctx.program().function(ctx.func()) else { return };

        fn is_unreachable(ctx: &AnalysisCtx, s: &Stmt) -> bool {
            match ctx.pdg.cfg.stmt_node.get(&s.id) {
                None => true,
                Some(&n) => n != ctx.dom.root && ctx.dom.idom[n].is_none(),
            }
        }

        fn walk(ctx: &AnalysisCtx, stmts: &[Stmt], sink: &mut LintSink) {
            let mut in_dead_run = false;
            for s in stmts {
                if is_unreachable(ctx, s) {
                    if !in_dead_run {
                        sink.report(Diagnostic::new(
                            Code::UnreachableCode,
                            s.span,
                            None,
                            "this statement is unreachable".to_string(),
                        ));
                        in_dead_run = true;
                    }
                    continue;
                }
                in_dead_run = false;
                match &s.kind {
                    StmtKind::If { then_branch, else_branch, .. } => {
                        walk(ctx, then_branch, sink);
                        walk(ctx, else_branch, sink);
                    }
                    StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                        walk(ctx, body, sink)
                    }
                    _ => {}
                }
            }
        }

        walk(ctx, &f.body, sink);
    }
}

// ---------------------------------------------------------------------------
// NFL005 — unused config.

/// `config`/`const` declarations never read anywhere in the program.
/// Dead configuration is a smell: either the knob was meant to gate
/// behaviour and does not, or it should be deleted.
pub struct UnusedConfigPass;

impl LintPass for UnusedConfigPass {
    fn name(&self) -> &'static str {
        "unused-config"
    }
    fn codes(&self) -> &'static [Code] {
        &[Code::UnusedConfig]
    }
    fn run(&self, ctx: &AnalysisCtx, sink: &mut LintSink) {
        let mut used: BTreeSet<String> = BTreeSet::new();
        ctx.program().for_each_stmt(|s| {
            used.extend(def_use(s).uses.iter().cloned());
        });
        // A const referenced by another global's initializer is used too.
        let items = ctx
            .program()
            .consts
            .iter()
            .chain(&ctx.program().configs)
            .chain(&ctx.program().states);
        for it in items {
            let mut names = Vec::new();
            collect_vars(&it.init, &mut names);
            used.extend(names);
        }
        for it in ctx.program().consts.iter().chain(&ctx.program().configs) {
            if !used.contains(&it.name) {
                sink.report(Diagnostic::new(
                    Code::UnusedConfig,
                    it.span,
                    Some(it.name.clone()),
                    format!("`{}` is declared but never read", it.name),
                ));
            }
        }
    }
}

fn collect_vars(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::Var(v) => out.push(v.clone()),
        ExprKind::Field(base, _) => out.push(base.clone()),
        ExprKind::Tuple(es) | ExprKind::Array(es) => {
            for x in es {
                collect_vars(x, out);
            }
        }
        ExprKind::Index(a, b) | ExprKind::Binary(_, a, b) => {
            collect_vars(a, out);
            collect_vars(b, out);
        }
        ExprKind::Unary(_, x) => collect_vars(x, out),
        ExprKind::Call(_, args) => {
            for a in args {
                collect_vars(a, out);
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// NFL006 — use before initialization.

/// A variable read at a point no definition reaches. The type checker
/// rejects unknown names outright, so on checked programs this only
/// fires for genuinely uninitialised paths — it is an [`Code::severity`]
/// error when it does.
pub struct UseBeforeInitPass;

impl LintPass for UseBeforeInitPass {
    fn name(&self) -> &'static str {
        "use-before-init"
    }
    fn codes(&self) -> &'static [Code] {
        &[Code::UseBeforeInit]
    }
    fn run(&self, ctx: &AnalysisCtx, sink: &mut LintSink) {
        let cfg = &ctx.pdg.cfg;
        let stmts = ctx.stmt_map();
        let mut seen: HashSet<(String, usize)> = HashSet::new();
        for node in 0..cfg.len() {
            let du = &ctx.pdg.reaching.node_du[node];
            for u in &du.uses {
                if ctx.boundary.contains(u) {
                    continue;
                }
                let reached = ctx
                    .pdg
                    .reaching
                    .reaching_in(node)
                    .any(|(v, _)| v == u);
                if reached {
                    continue;
                }
                let Some(sid) = cfg.nodes[node].stmt else { continue };
                let Some(s) = stmts.get(&sid) else { continue };
                if seen.insert((u.clone(), node)) {
                    sink.report(Diagnostic::new(
                        Code::UseBeforeInit,
                        s.span,
                        Some(u.clone()),
                        format!("`{u}` is used here but no definition reaches this point"),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// NFL007 — unguarded map read.

/// A read of a `state` map (`m[k]`) with no dominating membership test
/// (`k in m` / `k not in m`) or write to `m`: if the key is absent the
/// NF's behaviour depends on the map's miss semantics, which portable
/// NFL programs must not rely on.
pub struct UnguardedMapReadPass;

impl LintPass for UnguardedMapReadPass {
    fn name(&self) -> &'static str {
        "unguarded-map-read"
    }
    fn codes(&self) -> &'static [Code] {
        &[Code::UnguardedMapRead]
    }
    fn run(&self, ctx: &AnalysisCtx, sink: &mut LintSink) {
        let states = ctx.state_names();
        let Some(f) = ctx.program().function(ctx.func()) else { return };

        // Per-map guard nodes (membership tests + writes) and read sites.
        let mut guards: Vec<(String, usize)> = Vec::new();
        let mut reads: Vec<(String, usize, nfl_lang::Span)> = Vec::new();

        fn scan_expr(
            states: &BTreeSet<String>,
            node: usize,
            e: &Expr,
            guards: &mut Vec<(String, usize)>,
            reads: &mut Vec<(String, usize, nfl_lang::Span)>,
        ) {
            match &e.kind {
                ExprKind::Index(base, key) => {
                    if let ExprKind::Var(m) = &base.kind {
                        if states.contains(m) {
                            reads.push((m.clone(), node, e.span));
                        }
                    }
                    scan_expr(states, node, base, guards, reads);
                    scan_expr(states, node, key, guards, reads);
                }
                ExprKind::Binary(op, a, b) => {
                    if matches!(op, BinOp::In | BinOp::NotIn) {
                        if let ExprKind::Var(m) = &b.kind {
                            if states.contains(m) {
                                guards.push((m.clone(), node));
                            }
                        }
                    }
                    scan_expr(states, node, a, guards, reads);
                    scan_expr(states, node, b, guards, reads);
                }
                ExprKind::Tuple(es) | ExprKind::Array(es) => {
                    for x in es {
                        scan_expr(states, node, x, guards, reads);
                    }
                }
                ExprKind::Unary(_, x) => scan_expr(states, node, x, guards, reads),
                ExprKind::Call(_, args) => {
                    for a in args {
                        scan_expr(states, node, a, guards, reads);
                    }
                }
                _ => {}
            }
        }

        fn scan_stmts(
            ctx: &AnalysisCtx,
            states: &BTreeSet<String>,
            stmts: &[Stmt],
            guards: &mut Vec<(String, usize)>,
            reads: &mut Vec<(String, usize, nfl_lang::Span)>,
        ) {
            for s in stmts {
                let Some(&node) = ctx.pdg.cfg.stmt_node.get(&s.id) else { continue };
                match &s.kind {
                    StmtKind::Let { value, .. } | StmtKind::Expr(value) => {
                        scan_expr(states, node, value, guards, reads)
                    }
                    StmtKind::Assign { target, value } => {
                        if let LValue::Index(m, key) = target {
                            if states.contains(m) {
                                guards.push((m.clone(), node));
                            }
                            scan_expr(states, node, key, guards, reads);
                        }
                        scan_expr(states, node, value, guards, reads);
                    }
                    StmtKind::If { cond, then_branch, else_branch } => {
                        scan_expr(states, node, cond, guards, reads);
                        scan_stmts(ctx, states, then_branch, guards, reads);
                        scan_stmts(ctx, states, else_branch, guards, reads);
                    }
                    StmtKind::While { cond, body } => {
                        scan_expr(states, node, cond, guards, reads);
                        scan_stmts(ctx, states, body, guards, reads);
                    }
                    StmtKind::For { iter, body, .. } => {
                        match iter {
                            nfl_lang::ForIter::Range(lo, hi) => {
                                scan_expr(states, node, lo, guards, reads);
                                scan_expr(states, node, hi, guards, reads);
                            }
                            nfl_lang::ForIter::Array(a) => {
                                scan_expr(states, node, a, guards, reads)
                            }
                        }
                        scan_stmts(ctx, states, body, guards, reads);
                    }
                    StmtKind::Return(Some(e)) => scan_expr(states, node, e, guards, reads),
                    _ => {}
                }
            }
        }

        scan_stmts(ctx, &states, &f.body, &mut guards, &mut reads);
        for (m, node, span) in reads {
            let guarded = guards
                .iter()
                .any(|(gm, gn)| *gm == m && *gn != node && ctx.dom.dominates(*gn, node));
            if !guarded {
                sink.report(Diagnostic::new(
                    Code::UnguardedMapRead,
                    span,
                    Some(m.clone()),
                    format!(
                        "read of state map `{m}` is not guarded by any dominating \
                         membership test or insertion"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// NFL008 — StateAlyzer consistency.

/// A variable StateAlyzer classified as `logVar` ("never impacts the
/// output") that is nevertheless *used* by a statement inside the packet
/// processing slice. The two analyses answering differently about the
/// same variable means one of them is wrong — an internal error worth
/// failing the build over.
pub struct ClassMismatchPass;

impl LintPass for ClassMismatchPass {
    fn name(&self) -> &'static str {
        "class-mismatch"
    }
    fn codes(&self) -> &'static [Code] {
        &[Code::ClassMismatch]
    }
    fn run(&self, ctx: &AnalysisCtx, sink: &mut LintSink) {
        let stmts = ctx.stmt_map();
        let mut reported: BTreeSet<String> = BTreeSet::new();
        let mut sids: Vec<_> = ctx.pkt_slice.iter().copied().collect();
        sids.sort();
        for sid in sids {
            let Some(s) = stmts.get(&sid) else { continue };
            for u in &def_use(s).uses {
                if ctx.classes.log_vars.contains(u) && reported.insert(u.clone()) {
                    sink.report(Diagnostic::new(
                        Code::ClassMismatch,
                        s.span,
                        Some(u.clone()),
                        format!(
                            "`{u}` is classified logVar (never output-impacting) \
                             yet feeds a packet-slice statement here"
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// NFL009 — cross-flow state sharing.

/// The headline pass: traces every state-map key back through the
/// def/use chains and decides per-flow vs shared (see [`sharding`]).
pub struct ShardingPass;

impl LintPass for ShardingPass {
    fn name(&self) -> &'static str {
        "sharding"
    }
    fn codes(&self) -> &'static [Code] {
        &[Code::SharedState]
    }
    fn run(&self, ctx: &AnalysisCtx, sink: &mut LintSink) {
        let (report, diags) = sharding::analyze(ctx);
        sink.diagnostics.extend(diags);
        sink.sharding = Some(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_all(src: &str) -> LintSink {
        let p = nfl_lang::parse_and_check(src).unwrap();
        let ctx = AnalysisCtx::build(&p).unwrap();
        PassManager::with_default_passes().run(&ctx)
    }

    fn has(sink: &LintSink, code: Code, var: &str) -> bool {
        sink.diagnostics
            .iter()
            .any(|d| d.code == code && d.var.as_deref() == Some(var))
    }

    #[test]
    fn dead_local_and_states_port() {
        let sink = run_all(
            r#"
            state counter = 0;
            state never = 0;
            fn cb(pkt: packet) {
                let unused = 42;
                counter = counter + 1;
                send(pkt);
            }
            fn main() { sniff(cb); }
            "#,
        );
        assert!(has(&sink, Code::DeadLocal, "unused"));
        assert!(has(&sink, Code::WriteOnlyState, "counter"));
        assert!(has(&sink, Code::DeadState, "never"));
    }

    #[test]
    fn unreachable_after_return() {
        let sink = run_all(
            r#"
            fn cb(pkt: packet) {
                send(pkt);
                return;
                drop(pkt);
            }
            fn main() { sniff(cb); }
            "#,
        );
        let unreachable: Vec<_> = sink
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::UnreachableCode)
            .collect();
        assert_eq!(unreachable.len(), 1, "{unreachable:?}");
    }

    #[test]
    fn unused_config_noted() {
        let sink = run_all(
            r#"
            config USED = 1;
            config UNUSED = 2;
            fn cb(pkt: packet) {
                if pkt.tcp.dport == USED { send(pkt); }
            }
            fn main() { sniff(cb); }
            "#,
        );
        assert!(has(&sink, Code::UnusedConfig, "UNUSED"));
        assert!(!has(&sink, Code::UnusedConfig, "USED"));
    }

    #[test]
    fn config_used_only_by_initializer_counts() {
        let sink = run_all(
            r#"
            const BASE = 1000;
            state next = BASE;
            fn cb(pkt: packet) {
                next = next + 1;
                send(pkt);
            }
            fn main() { sniff(cb); }
            "#,
        );
        assert!(!has(&sink, Code::UnusedConfig, "BASE"));
    }

    #[test]
    fn guarded_map_read_is_clean() {
        let sink = run_all(
            r#"
            state m = map();
            fn cb(pkt: packet) {
                let k = pkt.ip.src;
                if k not in m { m[k] = 0; }
                if m[k] > 3 { drop(pkt); } else { send(pkt); }
            }
            fn main() { sniff(cb); }
            "#,
        );
        assert!(!sink
            .diagnostics
            .iter()
            .any(|d| d.code == Code::UnguardedMapRead));
    }

    #[test]
    fn unguarded_map_read_warns() {
        let sink = run_all(
            r#"
            state m = map();
            fn cb(pkt: packet) {
                if m[pkt.ip.src] > 3 { drop(pkt); } else { send(pkt); }
                m[pkt.ip.src] = 1;
            }
            fn main() { sniff(cb); }
            "#,
        );
        assert!(has(&sink, Code::UnguardedMapRead, "m"));
    }

    #[test]
    fn diagnostics_are_sorted_and_deduped() {
        let sink = run_all(
            r#"
            config A = 1;
            config B = 2;
            state s = 0;
            fn cb(pkt: packet) {
                let x = 1;
                s = s + 1;
                send(pkt);
            }
            fn main() { sniff(cb); }
            "#,
        );
        let keys: Vec<_> = sink.diagnostics.iter().map(|d| d.sort_key()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(keys, sorted);
        // Sharding report is attached.
        assert!(sink.sharding.is_some());
    }

    #[test]
    fn clean_corpus_has_no_errors() {
        use crate::diag::Severity;
        for (name, src) in [
            ("fig1-lb", nf_corpus::fig1_lb::source()),
            ("nat", nf_corpus::nat::source()),
            ("firewall", nf_corpus::firewall::source()),
            ("ratelimiter", nf_corpus::ratelimiter::source()),
        ] {
            let p = nfl_lang::parse_and_check(&src).unwrap();
            let ctx = AnalysisCtx::build(&p).unwrap();
            let sink = PassManager::with_default_passes().run(&ctx);
            assert!(
                sink.diagnostics.iter().all(|d| d.severity != Severity::Error),
                "{name}: {:?}",
                sink.diagnostics
            );
        }
    }
}
