//! Rendering lint reports: rustc-style text and machine JSON.
//!
//! The text renderer resolves each diagnostic's byte span against a
//! [`LineIndex`] of the *analysed* source (which, for socket-shaped NFs,
//! is the unfolded program `nf-tcp` synthesised — its spans point into
//! that text, not the original). Synthetic spans (line 0) degrade
//! gracefully to a location-less header. Output is deterministic: the
//! pass manager sorts diagnostics, and the sharding table follows
//! declaration order.

use crate::diag::{Diagnostic, Severity};
use crate::sharding::ShardingReport;
use crate::LintReport;
use nfl_lang::LineIndex;
use std::fmt::Write as _;

/// Render one diagnostic in rustc style:
///
/// ```text
/// warning[NFL009]: state `b2f_nat` cannot be sharded per-flow: ...
///   --> fig1-lb:31:13
///    |
/// 31 |         b2f_nat[(server, LB_IP, n_port)] = (pkt.ip.src, pkt.tcp.sport);
///    |             ^^^^^^^^^^^^^^^^^^^^^^^^
/// ```
pub fn render_diagnostic(name: &str, src: &str, index: &LineIndex, d: &Diagnostic) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
    if d.span.line == 0 || d.span.start >= src.len() {
        let _ = writeln!(out, "  --> {name}");
        return out;
    }
    let r = d.span.resolve(index);
    let _ = writeln!(out, "  --> {}:{}:{}", name, r.line, r.col);
    let text = index.line_text(src, r.line).unwrap_or("");
    let gutter = r.line.to_string();
    let pad = " ".repeat(gutter.len());
    let _ = writeln!(out, "{pad} |");
    let _ = writeln!(out, "{gutter} | {text}");
    let carets = format!(
        "{}{}",
        " ".repeat(r.col.saturating_sub(1) as usize),
        "^".repeat(r.width)
    );
    let _ = writeln!(out, "{pad} | {carets}");
    out
}

/// Render the per-state sharding table and NF verdict.
pub fn render_sharding(name: &str, report: &ShardingReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sharding verdict for {name}: {}",
        report.nf_verdict().as_str()
    );
    if report.is_empty() {
        let _ = writeln!(out, "  (no state declarations)");
        return out;
    }
    let width = report
        .states()
        .iter()
        .map(|s| s.var().len())
        .max()
        .unwrap_or(0);
    for s in report.states() {
        match s.dispatch() {
            Some(d) => {
                let _ = writeln!(
                    out,
                    "  {:<width$}  {:<9}  {} [dispatch: {}]",
                    s.var(),
                    s.verdict().as_str(),
                    s.reason(),
                    d.render(),
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  {:<width$}  {:<9}  {}",
                    s.var(),
                    s.verdict().as_str(),
                    s.reason(),
                );
            }
        }
    }
    out
}

/// Render the whole report as human-readable text.
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    let index = LineIndex::new(&report.source);
    for d in &report.diagnostics {
        out.push_str(&render_diagnostic(&report.name, &report.source, &index, d));
        out.push('\n');
    }
    out.push_str(&render_sharding(&report.name, &report.sharding));
    let (mut errors, mut warnings, mut notes) = (0usize, 0usize, 0usize);
    for d in &report.diagnostics {
        match d.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
            Severity::Note => notes += 1,
        }
    }
    let _ = writeln!(
        out,
        "\n{}: {} error(s), {} warning(s), {} note(s)",
        report.name, errors, warnings, notes
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, Diagnostic};
    use nfl_lang::Span;

    #[test]
    fn renders_snippet_with_carets() {
        let src = "state m = map();\nfn f() { let x = 1; }\n";
        let index = LineIndex::new(src);
        // Span of `m` on line 1 (offset 6, width 1).
        let d = Diagnostic::new(
            Code::SharedState,
            Span::new(6, 7, 1),
            Some("m".into()),
            "state `m` cannot be sharded per-flow",
        );
        let text = render_diagnostic("demo", src, &index, &d);
        assert!(text.contains("warning[NFL009]"), "{text}");
        assert!(text.contains("--> demo:1:7"), "{text}");
        assert!(text.contains("state m = map();"), "{text}");
        assert!(text.lines().last().unwrap().trim_end().ends_with('^'), "{text}");
    }

    #[test]
    fn synthetic_span_degrades() {
        let src = "fn f() {}\n";
        let index = LineIndex::new(src);
        let d = Diagnostic::new(Code::UnreachableCode, Span::default(), None, "dead");
        let text = render_diagnostic("demo", src, &index, &d);
        assert!(text.contains("--> demo\n"), "{text}");
        assert!(!text.contains('^'), "{text}");
    }

    #[test]
    fn full_report_renders() {
        let src = r#"
            state next = 0;
            state m = map();
            fn cb(pkt: packet) {
                if next in m { drop(pkt); } else { m[next] = 1; send(pkt); }
                next = next + 1;
            }
            fn main() { sniff(cb); }
        "#;
        let report = crate::lint_source("demo", src).unwrap();
        let text = render_text(&report);
        assert!(text.contains("sharding verdict for demo: shared"), "{text}");
        assert!(text.contains("NFL009"), "{text}");
        assert!(text.contains("error(s)"), "{text}");
    }
}
