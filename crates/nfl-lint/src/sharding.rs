//! Cross-flow state-sharing analysis — is this NF shardable by RSS?
//!
//! The StateAlyzer classes say *what* each persistent variable is; this
//! pass decides *how state is keyed*, which is what determines whether
//! the NF can be scaled out across cores or replicas (Maestro's
//! observation): if every access to a `state` map is keyed by data
//! derived **purely from the packet's flow tuple** (src/dst address,
//! protocol, src/dst port), then RSS steers all packets of a flow to one
//! shard and the map partitions cleanly — `per-flow`. A key that mixes
//! **non-flow data** (another state variable, an allocator counter, a
//! non-flow header field, an effectful call) couples flows together and
//! forces a global shard — `shared`.
//!
//! Mechanically, each access site's key expression is traced backwards
//! through the reaching-definitions relation (the same def/use chains
//! the slicer walks): **strong** definitions replace a variable's
//! origin, **weak** definitions taint it, branches join. Sources
//! terminate at packet fields (flow or non-flow), `config`/`const`
//! (constant across packets — a constant key means every flow collides
//! on it, so constants do *not* make a key per-flow), `state` reads
//! (non-flow by definition), and calls (pure builtins classify by their
//! arguments; effectful ones are non-flow).
//!
//! Scalar state has no key: if it is written on the packet path it is a
//! single cell every flow updates — `shared`, unless StateAlyzer proved
//! it never impacts output (`logVar`), in which case per-shard copies
//! can be aggregated offline — `log-only`. State never written is
//! `read-only` and replicates freely.

use crate::ctx::AnalysisCtx;
use crate::diag::{Code, Diagnostic};
use nf_packet::Field;
use nf_support::json::{FromJson, JsonError, ToJson, Value};
use nfl_analysis::cfg::NodeId;
use nfl_analysis::defuse::DefKind;
use nfl_lang::types::Ty;
use nfl_lang::{BinOp, Expr, ExprKind, ForIter, LValue, Span, Stmt, StmtKind};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Is `f` part of the flow tuple RSS hashes on?
pub fn is_flow_field(f: Field) -> bool {
    matches!(
        f,
        Field::IpSrc | Field::IpDst | Field::IpProto | Field::TcpSport | Field::TcpDport
    )
}

/// The direction-reversed counterpart of a flow field: swapping source
/// and destination maps a packet onto its reply direction. `ip.proto`
/// is its own mirror.
pub fn mirror_field(f: Field) -> Field {
    match f {
        Field::IpSrc => Field::IpDst,
        Field::IpDst => Field::IpSrc,
        Field::TcpSport => Field::TcpDport,
        Field::TcpDport => Field::TcpSport,
        other => other,
    }
}

/// One positional component of a resolved key *shape*.
///
/// A shape is the exact structure of a map key as a tuple of packet
/// fields and constants — strictly finer information than [`Origin`],
/// which only says *whether* the key is flow-derived. The shape is what
/// a sharded runtime needs to pick a dispatch hash that keeps every
/// access to one map entry on one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShapeElem {
    /// A bare flow-tuple packet field.
    Flow(Field),
    /// A value constant across packets (literal, `config`, `const`).
    /// The value itself is not recorded: constants never vary between
    /// packets, so they contribute nothing to dispatch — but their
    /// *position* matters when matching shapes across sites.
    Const,
}

/// Elementwise direction-mirror of a shape.
fn mirror_shape(shape: &[ShapeElem]) -> Vec<ShapeElem> {
    shape
        .iter()
        .map(|e| match e {
            ShapeElem::Flow(f) => ShapeElem::Flow(mirror_field(*f)),
            ShapeElem::Const => ShapeElem::Const,
        })
        .collect()
}

/// The packet-field hash a sharded runtime must dispatch on so that a
/// per-flow map partitions cleanly — every access to one map entry
/// lands on the shard that owns it.
///
/// Part of the stable `nfl-lint` API. Two flavours:
///
/// * **Plain** (`symmetric() == false`): hash the listed fields'
///   values. Sound because every key site uses the *same* shape, so
///   the shard is a function of the entry key itself.
/// * **Symmetric** (`symmetric() == true`): the map is keyed by a
///   direction-reversed pair of shapes (e.g. a firewall pinhole
///   written with `(dst, dport, src, sport)` and probed with
///   `(src, sport, dst, dport)`). Hash the lexicographic minimum of
///   the listed fields' values and their [`mirror_field`] values, so a
///   flow and its reply direction land on one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchKey {
    fields: Vec<Field>,
    symmetric: bool,
}

impl DispatchKey {
    /// Assemble a dispatch key (used by [`analyze`] and JSON decoding).
    pub fn new(fields: Vec<Field>, symmetric: bool) -> DispatchKey {
        DispatchKey { fields, symmetric }
    }

    /// The packet fields to hash, in key-shape order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Whether dispatch must canonicalise direction (hash the minimum
    /// of the field values and their mirrored values).
    pub fn symmetric(&self) -> bool {
        self.symmetric
    }

    /// The mirrored field list the symmetric hash compares against.
    pub fn mirror_fields(&self) -> Vec<Field> {
        self.fields.iter().map(|f| mirror_field(*f)).collect()
    }

    /// Compact rendering, e.g. `ip.src` or
    /// `sym(ip.src, tcp.sport, ip.dst, tcp.dport)`.
    pub fn render(&self) -> String {
        let list = self
            .fields
            .iter()
            .map(|f| f.path())
            .collect::<Vec<_>>()
            .join(", ");
        if self.symmetric {
            format!("sym({list})")
        } else {
            list
        }
    }
}

/// Builtins whose result is a pure function of their arguments, so a key
/// through them inherits the arguments' origin.
fn is_pure_builtin(name: &str) -> bool {
    matches!(name, "hash" | "len" | "min" | "max" | "checksum")
}

/// Where a key expression's value ultimately comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Origin {
    /// Constant across packets (literals, `config`, `const`, loop
    /// counters over constant ranges). Every flow sees the same value.
    Const,
    /// Derived from the packet's flow tuple (and possibly constants).
    Flow,
    /// Mixes data that is not a function of the flow tuple; the string
    /// names the first culprit found.
    NonFlow(String),
}

impl Origin {
    fn join(self, other: Origin) -> Origin {
        match (self, other) {
            (o @ Origin::NonFlow(_), _) => o,
            (_, o @ Origin::NonFlow(_)) => o,
            (Origin::Flow, _) | (_, Origin::Flow) => Origin::Flow,
            _ => Origin::Const,
        }
    }
}

/// How a state map was accessed at a key site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// `m[k]` in expression position.
    Read,
    /// `m[k] = v`.
    Write,
    /// `k in m` / `k not in m`.
    Membership,
    /// `map_remove(m, k)`.
    Remove,
}

impl AccessKind {
    /// Lowercase label for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Membership => "membership",
            AccessKind::Remove => "remove",
        }
    }
}

/// One keyed access to a state map.
#[derive(Debug, Clone)]
pub struct KeySite {
    /// The map.
    pub var: String,
    /// Access flavour.
    pub kind: AccessKind,
    /// Span of the key expression.
    pub span: Span,
    /// Traced origin of the key.
    pub origin: Origin,
    /// The key's resolved shape, when it is an exact tuple of flow
    /// fields and constants; `None` when the key is derived (hashed,
    /// arithmetic) or joins differing definitions.
    pub shape: Option<Vec<ShapeElem>>,
}

/// The sharding verdict for one `state` variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateShard {
    /// Keyed purely by flow-tuple data — partitions under RSS.
    PerFlow,
    /// Requires a global shard (cross-flow coupling).
    Shared,
    /// Never written during packet processing — replicate freely.
    ReadOnly,
    /// Written but never output-impacting — per-shard copies, aggregate
    /// offline.
    LogOnly,
}

impl StateShard {
    /// The lowercase rendering (stable; goldens pin it).
    pub fn as_str(self) -> &'static str {
        match self {
            StateShard::PerFlow => "per-flow",
            StateShard::Shared => "shared",
            StateShard::ReadOnly => "read-only",
            StateShard::LogOnly => "log-only",
        }
    }

    /// Parse [`StateShard::as_str`] back.
    pub fn from_str(s: &str) -> Option<StateShard> {
        match s {
            "per-flow" => Some(StateShard::PerFlow),
            "shared" => Some(StateShard::Shared),
            "read-only" => Some(StateShard::ReadOnly),
            "log-only" => Some(StateShard::LogOnly),
            _ => None,
        }
    }
}

/// Verdict plus evidence for one state variable.
///
/// Part of the stable `nfl-lint` API: construct with
/// [`StateVerdict::new`], read through the accessors. The fields are
/// private so the evidence set can grow without breaking `nf-shard` or
/// external consumers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateVerdict {
    var: String,
    verdict: StateShard,
    reason: String,
    span: Span,
    key_sites: usize,
    dispatch: Option<DispatchKey>,
}

impl StateVerdict {
    /// Assemble a verdict (used by [`analyze`] and JSON decoding).
    pub fn new(
        var: impl Into<String>,
        verdict: StateShard,
        reason: impl Into<String>,
        span: Span,
        key_sites: usize,
    ) -> StateVerdict {
        StateVerdict {
            var: var.into(),
            verdict,
            reason: reason.into(),
            span,
            key_sites,
            dispatch: None,
        }
    }

    /// Attach the dispatch key a sharded runtime must use to partition
    /// this map (meaningful only for [`StateShard::PerFlow`] maps).
    pub fn with_dispatch(mut self, dispatch: Option<DispatchKey>) -> StateVerdict {
        self.dispatch = dispatch;
        self
    }

    /// The state variable's name.
    pub fn var(&self) -> &str {
        &self.var
    }

    /// The placement verdict.
    pub fn verdict(&self) -> StateShard {
        self.verdict
    }

    /// Why, in one sentence.
    pub fn reason(&self) -> &str {
        &self.reason
    }

    /// Span of the `state` declaration.
    pub fn span(&self) -> Span {
        self.span
    }

    /// Number of keyed accesses analysed (0 for scalars).
    pub fn key_sites(&self) -> usize {
        self.key_sites
    }

    /// The dispatch hash that partitions this map, when one exists.
    ///
    /// `Some` only for [`StateShard::PerFlow`] maps whose key shapes
    /// resolved to a single shape or a direction-mirrored pair. A
    /// per-flow map with `None` here is *colocatable in principle* but
    /// the analysis could not derive a packet-field hash for it (e.g.
    /// the key is `hash(...) % N`), so a runtime must fall back to a
    /// global shard for the whole NF.
    pub fn dispatch(&self) -> Option<&DispatchKey> {
        self.dispatch.as_ref()
    }
}

/// The per-NF sharding report — the contract between the lint analysis
/// and everything that places state (the `nf-shard` runtime, external
/// deployment tooling).
///
/// This type and its JSON encoding are **stable**. The JSON shape is:
///
/// ```json
/// {
///   "verdict": "per-flow" | "shared",
///   "states": [
///     {"var": "...", "verdict": "per-flow" | "shared" | "read-only" | "log-only",
///      "reason": "...", "line": 1, "start": 0, "end": 0, "key_sites": 0,
///      "dispatch_fields": ["ip.src", ...], "dispatch_symmetric": false}
///   ]
/// }
/// ```
///
/// `dispatch_fields`/`dispatch_symmetric` appear only when the state is
/// a per-flow map with a resolved [`DispatchKey`]; consumers must
/// tolerate their absence.
///
/// encoded and parsed by the in-tree `nf_support::json` (serde-free);
/// new object keys may be added, existing ones are never renamed or
/// retyped.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardingReport {
    states: Vec<StateVerdict>,
}

impl ShardingReport {
    /// Assemble a report from per-state verdicts (declaration order).
    pub fn from_states(states: Vec<StateVerdict>) -> ShardingReport {
        ShardingReport { states }
    }

    /// The verdicts, one per `state` declaration, in declaration order.
    pub fn states(&self) -> &[StateVerdict] {
        &self.states
    }

    /// Look up the verdict for one state variable.
    pub fn get(&self, var: &str) -> Option<&StateVerdict> {
        self.states.iter().find(|s| s.var == var)
    }

    /// Number of state declarations analysed.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the NF declares no state at all.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The NF-level verdict: `per-flow` iff no state needs a global
    /// shard.
    pub fn nf_verdict(&self) -> StateShard {
        if self.states.iter().any(|s| s.verdict == StateShard::Shared) {
            StateShard::Shared
        } else {
            StateShard::PerFlow
        }
    }

    /// Can the NF be sharded by RSS with no cross-shard state?
    pub fn shardable(&self) -> bool {
        self.nf_verdict() == StateShard::PerFlow
    }
}

impl ToJson for ShardingReport {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "verdict".into(),
                Value::Str(self.nf_verdict().as_str().into()),
            ),
            (
                "states".into(),
                Value::Array(
                    self.states
                        .iter()
                        .map(|s| {
                            let mut obj = vec![
                                ("var".into(), Value::Str(s.var.clone())),
                                ("verdict".into(), Value::Str(s.verdict.as_str().into())),
                                ("reason".into(), Value::Str(s.reason.clone())),
                                ("line".into(), Value::Int(i64::from(s.span.line))),
                                ("start".into(), Value::Int(s.span.start as i64)),
                                ("end".into(), Value::Int(s.span.end as i64)),
                                ("key_sites".into(), Value::Int(s.key_sites as i64)),
                            ];
                            if let Some(d) = &s.dispatch {
                                obj.push((
                                    "dispatch_fields".into(),
                                    Value::Array(
                                        d.fields()
                                            .iter()
                                            .map(|f| Value::Str(f.path().into()))
                                            .collect(),
                                    ),
                                ));
                                obj.push((
                                    "dispatch_symmetric".into(),
                                    Value::Bool(d.symmetric()),
                                ));
                            }
                            Value::Object(obj)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for ShardingReport {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let states = v
            .field("states")?
            .as_array()
            .ok_or_else(|| JsonError::msg("states must be an array"))?
            .iter()
            .map(|s| {
                let str_field = |k: &str| -> Result<String, JsonError> {
                    Ok(s.field(k)?
                        .as_str()
                        .ok_or_else(|| JsonError::msg(format!("{k} must be a string")))?
                        .to_string())
                };
                let int = |k: &str| -> Result<i64, JsonError> {
                    s.field(k)?
                        .as_int()
                        .ok_or_else(|| JsonError::msg(format!("{k} must be an integer")))
                };
                let verdict_str = str_field("verdict")?;
                // Dispatch keys are an additive extension: absent in
                // older reports, so decode them tolerantly.
                let dispatch = match s.get("dispatch_fields") {
                    None => None,
                    Some(fv) => {
                        let fields = fv
                            .as_array()
                            .ok_or_else(|| JsonError::msg("dispatch_fields must be an array"))?
                            .iter()
                            .map(|f| {
                                let path = f.as_str().ok_or_else(|| {
                                    JsonError::msg("dispatch field must be a string")
                                })?;
                                Field::from_path(path).ok_or_else(|| {
                                    JsonError::msg(format!("unknown dispatch field {path}"))
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()?;
                        let symmetric = s
                            .get("dispatch_symmetric")
                            .and_then(Value::as_bool)
                            .unwrap_or(false);
                        Some(DispatchKey::new(fields, symmetric))
                    }
                };
                Ok(StateVerdict::new(
                    str_field("var")?,
                    StateShard::from_str(&verdict_str)
                        .ok_or_else(|| JsonError::msg(format!("unknown verdict {verdict_str}")))?,
                    str_field("reason")?,
                    Span::new(
                        int("start")? as usize,
                        int("end")? as usize,
                        int("line")? as u32,
                    ),
                    int("key_sites")? as usize,
                )
                .with_dispatch(dispatch))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardingReport::from_states(states))
    }
}

/// The key tracer: classifies expressions and variables at program
/// points by walking reaching definitions.
struct Tracer<'a> {
    ctx: &'a AnalysisCtx,
    stmts: HashMap<nfl_lang::StmtId, &'a Stmt>,
    states: BTreeSet<String>,
    configs: BTreeSet<String>,
}

impl<'a> Tracer<'a> {
    fn new(ctx: &'a AnalysisCtx, stmts: HashMap<nfl_lang::StmtId, &'a Stmt>) -> Tracer<'a> {
        Tracer {
            states: ctx.state_names(),
            configs: ctx.config_names(),
            ctx,
            stmts,
        }
    }

    /// Origin of `expr` evaluated at CFG node `node`.
    fn classify_expr(
        &self,
        node: NodeId,
        expr: &Expr,
        visiting: &mut HashSet<(String, NodeId)>,
    ) -> Origin {
        match &expr.kind {
            ExprKind::Int(_) | ExprKind::Bool(_) | ExprKind::Str(_) => Origin::Const,
            ExprKind::Field(_, f) => {
                if is_flow_field(*f) {
                    Origin::Flow
                } else {
                    Origin::NonFlow(format!("non-flow packet field `{f:?}`"))
                }
            }
            ExprKind::Var(v) => self.classify_var(node, v, visiting),
            ExprKind::Tuple(es) | ExprKind::Array(es) => es
                .iter()
                .fold(Origin::Const, |acc, e| {
                    acc.join(self.classify_expr(node, e, visiting))
                }),
            ExprKind::Index(base, key) => {
                // Reading a container: a state map's *value* is non-flow
                // data even under a flow key (it was written by some other
                // packet); config/const containers contribute constants.
                let base_origin = match &base.kind {
                    ExprKind::Var(v) if self.states.contains(v) => {
                        Origin::NonFlow(format!("value read from state `{v}`"))
                    }
                    _ => self.classify_expr(node, base, visiting),
                };
                base_origin.join(self.classify_expr(node, key, visiting))
            }
            ExprKind::Binary(_, a, b) => self
                .classify_expr(node, a, visiting)
                .join(self.classify_expr(node, b, visiting)),
            ExprKind::Unary(_, e) => self.classify_expr(node, e, visiting),
            ExprKind::Call(name, args) => {
                if is_pure_builtin(name) {
                    args.iter().fold(Origin::Const, |acc, a| {
                        acc.join(self.classify_expr(node, a, visiting))
                    })
                } else {
                    Origin::NonFlow(format!("call to `{name}`"))
                }
            }
        }
    }

    /// Origin of variable `v` as read at node `node`, via its reaching
    /// definitions.
    fn classify_var(
        &self,
        node: NodeId,
        v: &str,
        visiting: &mut HashSet<(String, NodeId)>,
    ) -> Origin {
        if self.configs.contains(v) {
            return Origin::Const;
        }
        if self.states.contains(v) {
            return Origin::NonFlow(format!("state `{v}`"));
        }
        if self.ctx.info.var_ty(self.ctx.func(), v) == Some(Ty::Packet) {
            // A whole packet value as key includes non-flow headers.
            return Origin::NonFlow(format!("whole packet `{v}` used as key"));
        }
        if !visiting.insert((v.to_string(), node)) {
            // Already tracing this (var, point): a dependence cycle. The
            // cycle itself adds nothing new; other reaching defs decide.
            return Origin::Const;
        }
        let mut origin: Option<Origin> = None;
        let mut saw_def = false;
        for (dv, def_node) in self.ctx.pdg.reaching.reaching_in(node) {
            if dv != v {
                continue;
            }
            saw_def = true;
            let o = self.classify_def(*def_node, v, visiting);
            origin = Some(match origin {
                None => o,
                Some(acc) => acc.join(o),
            });
        }
        visiting.remove(&(v.to_string(), node));
        if !saw_def {
            // No initializing definition — NFL006's territory; stay
            // conservative here.
            return Origin::NonFlow(format!("`{v}` has no reaching definition"));
        }
        origin.unwrap_or(Origin::Const)
    }

    /// Origin contributed by the definition of `v` at `def_node`.
    fn classify_def(
        &self,
        def_node: NodeId,
        v: &str,
        visiting: &mut HashSet<(String, NodeId)>,
    ) -> Origin {
        if def_node == self.ctx.pdg.cfg.entry {
            // Boundary definition: parameters (the packet) and globals
            // are handled in classify_var; anything else entering here is
            // a non-packet parameter.
            return Origin::NonFlow(format!("parameter `{v}`"));
        }
        let Some(sid) = self.ctx.pdg.cfg.nodes[def_node].stmt else {
            return Origin::NonFlow(format!("synthetic definition of `{v}`"));
        };
        let Some(stmt) = self.stmts.get(&sid) else {
            return Origin::NonFlow(format!("unknown definition of `{v}`"));
        };
        // Weak definitions (map/field stores, mutating builtins) taint:
        // the variable holds partially-updated contents the tracer does
        // not model element-wise.
        let du = nfl_analysis::defuse::def_use(stmt);
        let strong = du
            .defs
            .iter()
            .any(|(d, k)| d == v && *k == DefKind::Strong);
        if !strong {
            return Origin::NonFlow(format!("partial update of `{v}`"));
        }
        match &stmt.kind {
            StmtKind::Let { value, .. } => self.classify_expr(def_node, value, visiting),
            StmtKind::Assign {
                target: LValue::Var(_),
                value,
            } => self.classify_expr(def_node, value, visiting),
            StmtKind::For { iter, .. } => match iter {
                // A loop counter enumerates its range within one packet —
                // it is not flow-identifying, so only the bounds' origins
                // flow through (constant bounds ⇒ Const ⇒ shared keys).
                ForIter::Range(lo, hi) => self
                    .classify_expr(def_node, lo, visiting)
                    .join(self.classify_expr(def_node, hi, visiting)),
                ForIter::Array(a) => self.classify_expr(def_node, a, visiting),
            },
            _ => Origin::NonFlow(format!("opaque definition of `{v}`")),
        }
    }

    /// The exact shape of `expr` as a key, or `None` when the value is
    /// derived (arithmetic, hashing, container reads) rather than a
    /// plain tuple of flow fields and constants.
    ///
    /// Deliberately stricter than [`Tracer::classify_expr`]: a key can
    /// be flow-*derived* (`hash(pkt.ip.src) % 64`) without having a
    /// shape a dispatcher could hash the raw fields of.
    fn shape_of_expr(
        &self,
        node: NodeId,
        expr: &Expr,
        visiting: &mut HashSet<(String, NodeId)>,
    ) -> Option<Vec<ShapeElem>> {
        match &expr.kind {
            ExprKind::Int(_) | ExprKind::Bool(_) | ExprKind::Str(_) => {
                Some(vec![ShapeElem::Const])
            }
            ExprKind::Field(_, f) if is_flow_field(*f) => Some(vec![ShapeElem::Flow(*f)]),
            ExprKind::Var(v) => self.shape_of_var(node, v, visiting),
            ExprKind::Tuple(es) => {
                let mut shape = Vec::new();
                for e in es {
                    shape.extend(self.shape_of_expr(node, e, visiting)?);
                }
                Some(shape)
            }
            _ => None,
        }
    }

    /// Shape of variable `v` as read at `node`: every reaching
    /// definition must be strong and resolve to the same shape.
    fn shape_of_var(
        &self,
        node: NodeId,
        v: &str,
        visiting: &mut HashSet<(String, NodeId)>,
    ) -> Option<Vec<ShapeElem>> {
        if self.configs.contains(v) {
            return Some(vec![ShapeElem::Const]);
        }
        if self.states.contains(v) || self.ctx.info.var_ty(self.ctx.func(), v) == Some(Ty::Packet)
        {
            return None;
        }
        if !visiting.insert((v.to_string(), node)) {
            // A dependence cycle cannot have an exact shape.
            return None;
        }
        let mut shape: Option<Vec<ShapeElem>> = None;
        let mut exact = true;
        for (dv, def_node) in self.ctx.pdg.reaching.reaching_in(node) {
            if dv != v {
                continue;
            }
            match self.shape_of_def(*def_node, v, visiting) {
                None => {
                    exact = false;
                    break;
                }
                Some(s) => match &shape {
                    None => shape = Some(s),
                    Some(prev) if *prev == s => {}
                    Some(_) => {
                        // Differently-shaped definitions join here; the
                        // access has no single shape.
                        exact = false;
                        break;
                    }
                },
            }
        }
        visiting.remove(&(v.to_string(), node));
        if exact {
            shape
        } else {
            None
        }
    }

    /// Shape contributed by the definition of `v` at `def_node`.
    fn shape_of_def(
        &self,
        def_node: NodeId,
        v: &str,
        visiting: &mut HashSet<(String, NodeId)>,
    ) -> Option<Vec<ShapeElem>> {
        if def_node == self.ctx.pdg.cfg.entry {
            return None;
        }
        let sid = self.ctx.pdg.cfg.nodes[def_node].stmt?;
        let stmt = self.stmts.get(&sid)?;
        let du = nfl_analysis::defuse::def_use(stmt);
        let strong = du
            .defs
            .iter()
            .any(|(d, k)| d == v && *k == DefKind::Strong);
        if !strong {
            return None;
        }
        match &stmt.kind {
            StmtKind::Let { value, .. }
            | StmtKind::Assign {
                target: LValue::Var(_),
                value,
            } => self.shape_of_expr(def_node, value, visiting),
            _ => None,
        }
    }
}

fn flow_fields(shape: &[ShapeElem]) -> Vec<Field> {
    shape
        .iter()
        .filter_map(|e| match e {
            ShapeElem::Flow(f) => Some(*f),
            ShapeElem::Const => None,
        })
        .collect()
}

/// Is a mirrored shape pair *closed* under direction reversal — does
/// the shape carry the same multiset of flow fields as its mirror?
///
/// Only then is a symmetric dispatch hash sound: for a closed pair
/// (`{src, dst}`, `{src, sport, dst, dport}`) the hash input is exactly
/// the entry key's own values (in either orientation), so the write and
/// every probe of one entry agree on a shard. For an *open* pair —
/// `m[pkt.ip.src]` written, `m[pkt.ip.dst]` probed — the canonical hash
/// mixes in the packet's *other* endpoint, which is not part of the
/// entry key, and the write for endpoint X and the probe for endpoint X
/// can land on different shards.
fn mirror_closed(shape: &[ShapeElem]) -> bool {
    let mut fwd = flow_fields(shape);
    let mut rev: Vec<Field> = fwd.iter().map(|f| mirror_field(*f)).collect();
    fwd.sort();
    rev.sort();
    fwd == rev
}

/// The distinct resolved shapes across `sites`, or `None` if any site's
/// key has no exact shape.
fn distinct_shapes<'s>(sites: &[&'s KeySite]) -> Option<Vec<&'s Vec<ShapeElem>>> {
    let mut shapes: Vec<&Vec<ShapeElem>> = Vec::new();
    for site in sites {
        let shape = site.shape.as_ref()?;
        if !shapes.contains(&shape) {
            shapes.push(shape);
        }
    }
    Some(shapes)
}

/// Detect the unsound mirror-pair case: the sites resolve to exactly a
/// shape and its mirror, but the pair is not mirror-closed. Returns the
/// two field lists for the report.
fn open_mirror_pair(sites: &[&KeySite]) -> Option<(Vec<Field>, Vec<Field>)> {
    let shapes = distinct_shapes(sites)?;
    if shapes.len() != 2 || mirror_shape(shapes[0]) != *shapes[1] || mirror_closed(shapes[0]) {
        return None;
    }
    Some((flow_fields(shapes[0]), flow_fields(shapes[1])))
}

/// Derive the dispatch key for one per-flow map from its key sites:
/// all sites share one shape → plain hash of its flow fields; the
/// sites split into a shape and its mirror-closed direction-mirror →
/// symmetric hash; anything else (unresolved shapes, open mirror
/// pairs, three or more shapes) → `None`.
fn resolve_dispatch(sites: &[&KeySite]) -> Option<DispatchKey> {
    let shapes = distinct_shapes(sites)?;
    match shapes.len() {
        1 => {
            let fields = flow_fields(shapes[0]);
            if fields.is_empty() {
                None
            } else {
                Some(DispatchKey::new(fields, false))
            }
        }
        2 => {
            // Exactly a shape and its mirror (a direction-symmetric
            // map, e.g. firewall pinholes). Orient deterministically on
            // the smaller shape so reports do not depend on site order.
            // Open pairs are unsound to hash symmetrically — `analyze`
            // demotes them to `shared` before ever asking for a key.
            if mirror_shape(shapes[0]) != *shapes[1] || !mirror_closed(shapes[0]) {
                return None;
            }
            let canon = if shapes[0] <= shapes[1] {
                shapes[0]
            } else {
                shapes[1]
            };
            let fields = flow_fields(canon);
            if fields.is_empty() {
                None
            } else {
                Some(DispatchKey::new(fields, true))
            }
        }
        _ => None,
    }
}

/// Collect every keyed access to `states` in the per-packet function.
fn collect_key_sites<'a>(
    ctx: &AnalysisCtx,
    tracer: &Tracer<'a>,
    states: &BTreeSet<String>,
) -> Vec<KeySite> {
    let mut sites = Vec::new();
    let func = ctx
        .program()
        .function(ctx.func())
        .expect("normalised function");

    fn scan_expr(
        t: &Tracer<'_>,
        states: &BTreeSet<String>,
        node: NodeId,
        e: &Expr,
        out: &mut Vec<KeySite>,
    ) {
        match &e.kind {
            ExprKind::Index(base, key) => {
                if let ExprKind::Var(m) = &base.kind {
                    if states.contains(m) {
                        let mut visiting = HashSet::new();
                        out.push(KeySite {
                            var: m.clone(),
                            kind: AccessKind::Read,
                            span: key.span,
                            origin: t.classify_expr(node, key, &mut visiting),
                            shape: t.shape_of_expr(node, key, &mut HashSet::new()),
                        });
                    }
                }
                scan_expr(t, states, node, base, out);
                scan_expr(t, states, node, key, out);
            }
            ExprKind::Binary(op, a, b) => {
                if matches!(op, BinOp::In | BinOp::NotIn) {
                    if let ExprKind::Var(m) = &b.kind {
                        if states.contains(m) {
                            let mut visiting = HashSet::new();
                            out.push(KeySite {
                                var: m.clone(),
                                kind: AccessKind::Membership,
                                span: a.span,
                                origin: t.classify_expr(node, a, &mut visiting),
                                shape: t.shape_of_expr(node, a, &mut HashSet::new()),
                            });
                        }
                    }
                }
                scan_expr(t, states, node, a, out);
                scan_expr(t, states, node, b, out);
            }
            ExprKind::Call(name, args) => {
                if name == "map_remove" {
                    if let (Some(Expr { kind: ExprKind::Var(m), .. }), Some(key)) =
                        (args.first(), args.get(1))
                    {
                        if states.contains(m) {
                            let mut visiting = HashSet::new();
                            out.push(KeySite {
                                var: m.clone(),
                                kind: AccessKind::Remove,
                                span: key.span,
                                origin: t.classify_expr(node, key, &mut visiting),
                                shape: t.shape_of_expr(node, key, &mut HashSet::new()),
                            });
                        }
                    }
                }
                for a in args {
                    scan_expr(t, states, node, a, out);
                }
            }
            ExprKind::Tuple(es) | ExprKind::Array(es) => {
                for x in es {
                    scan_expr(t, states, node, x, out);
                }
            }
            ExprKind::Unary(_, x) => scan_expr(t, states, node, x, out),
            _ => {}
        }
    }

    fn scan_stmts(
        t: &Tracer<'_>,
        ctx: &AnalysisCtx,
        states: &BTreeSet<String>,
        stmts: &[Stmt],
        out: &mut Vec<KeySite>,
    ) {
        for s in stmts {
            let Some(&node) = ctx.pdg.cfg.stmt_node.get(&s.id) else {
                continue;
            };
            match &s.kind {
                StmtKind::Let { value, .. } | StmtKind::Expr(value) => {
                    scan_expr(t, states, node, value, out)
                }
                StmtKind::Assign { target, value } => {
                    if let LValue::Index(m, key) = target {
                        if states.contains(m) {
                            let mut visiting = HashSet::new();
                            out.push(KeySite {
                                var: m.clone(),
                                kind: AccessKind::Write,
                                span: key.span,
                                origin: t.classify_expr(node, key, &mut visiting),
                                shape: t.shape_of_expr(node, key, &mut HashSet::new()),
                            });
                            scan_expr(t, states, node, key, out);
                        }
                    }
                    scan_expr(t, states, node, value, out);
                }
                StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    scan_expr(t, states, node, cond, out);
                    scan_stmts(t, ctx, states, then_branch, out);
                    scan_stmts(t, ctx, states, else_branch, out);
                }
                StmtKind::While { cond, body } => {
                    scan_expr(t, states, node, cond, out);
                    scan_stmts(t, ctx, states, body, out);
                }
                StmtKind::For { iter, body, .. } => {
                    match iter {
                        ForIter::Range(lo, hi) => {
                            scan_expr(t, states, node, lo, out);
                            scan_expr(t, states, node, hi, out);
                        }
                        ForIter::Array(a) => scan_expr(t, states, node, a, out),
                    }
                    scan_stmts(t, ctx, states, body, out);
                }
                StmtKind::Return(Some(e)) => scan_expr(t, states, node, e, out),
                _ => {}
            }
        }
    }

    scan_stmts(tracer, ctx, states, &func.body, &mut sites);
    sites
}

/// Run the analysis: per-state verdicts plus `NFL009` diagnostics for
/// everything that needs a global shard.
pub fn analyze(ctx: &AnalysisCtx) -> (ShardingReport, Vec<Diagnostic>) {
    let stmts = ctx.stmt_map();
    let states = ctx.state_names();
    let tracer = Tracer::new(ctx, stmts);
    let sites = collect_key_sites(ctx, &tracer, &states);

    // Which states are read/written at all in the per-packet function.
    let mut written: BTreeSet<String> = BTreeSet::new();
    let mut read: BTreeSet<String> = BTreeSet::new();
    for node in 0..ctx.pdg.cfg.len() {
        let du = &ctx.pdg.reaching.node_du[node];
        for (d, _) in &du.defs {
            written.insert(d.clone());
        }
        for u in &du.uses {
            // A weak update's self-read does not count as a real read.
            if !du.defs.iter().any(|(d, _)| d == u) {
                read.insert(u.clone());
            }
        }
    }

    let mut verdicts = Vec::new();
    let mut diags = Vec::new();
    for item in &ctx.program().states {
        let name = &item.name;
        let my_sites: Vec<&KeySite> = sites.iter().filter(|s| &s.var == name).collect();
        let is_map = matches!(
            ctx.info.var_ty(ctx.func(), name),
            Some(Ty::Map(_, _))
        ) || !my_sites.is_empty();
        let is_written = written.contains(name);
        let is_log = ctx.classes.log_vars.contains(name);

        let (verdict, reason, bad_site): (StateShard, String, Option<&KeySite>) =
            if !is_written && !read.contains(name) {
                (
                    StateShard::ReadOnly,
                    "never touched by the packet loop".into(),
                    None,
                )
            } else if !is_written {
                (
                    StateShard::ReadOnly,
                    "never written during packet processing; replicate to every shard".into(),
                    None,
                )
            } else if is_map {
                match my_sites
                    .iter()
                    .find(|s| !matches!(s.origin, Origin::Flow))
                {
                    None => {
                        if let Some((fwd, rev)) = open_mirror_pair(&my_sites) {
                            // Every key is flow-pure, but the sites form a
                            // mirror pair that is not closed under direction
                            // reversal (e.g. written under `ip.src`, probed
                            // under `ip.dst`): no packet-field hash keeps the
                            // write and the probe for one endpoint on one
                            // shard, so the map couples flows after all.
                            let render = |fs: &[Field]| {
                                fs.iter().map(|f| f.path()).collect::<Vec<_>>().join(", ")
                            };
                            let reason = format!(
                                "keys form an open mirror pair ({} vs {}): the write and \
                                 the probe for one endpoint mix in the packet's other \
                                 endpoint, so they can land on different shards",
                                render(&fwd),
                                render(&rev)
                            );
                            (StateShard::Shared, reason, my_sites.first().copied())
                        } else {
                            (
                                StateShard::PerFlow,
                                format!(
                                    "all {} keys derive from the packet flow tuple",
                                    my_sites.len()
                                ),
                                None,
                            )
                        }
                    }
                    Some(bad) => {
                        let culprit = match &bad.origin {
                            Origin::Const => "constant key shared by every flow".to_string(),
                            Origin::NonFlow(why) => why.clone(),
                            Origin::Flow => unreachable!(),
                        };
                        let reason = format!(
                            "{} key at line {} is not flow-derived: {}",
                            bad.kind.as_str(),
                            bad.span.line,
                            culprit
                        );
                        if is_log {
                            (
                                StateShard::LogOnly,
                                format!("{reason}; never output-impacting, so per-shard copies can be aggregated"),
                                None,
                            )
                        } else {
                            (StateShard::Shared, reason, Some(bad))
                        }
                    }
                }
            } else if is_log {
                (
                    StateShard::LogOnly,
                    "counter never impacts output; keep per-shard copies and aggregate".into(),
                    None,
                )
            } else {
                (
                    StateShard::Shared,
                    "single cell updated on the packet path couples all flows".into(),
                    None,
                )
            };

        if verdict == StateShard::Shared {
            let span = bad_site.map(|s| s.span).unwrap_or(item.span);
            diags.push(Diagnostic::new(
                Code::SharedState,
                span,
                Some(name.clone()),
                format!("state `{name}` cannot be sharded per-flow: {reason}"),
            ));
        }
        let dispatch = if verdict == StateShard::PerFlow && !my_sites.is_empty() {
            resolve_dispatch(&my_sites)
        } else {
            None
        };
        verdicts.push(
            StateVerdict::new(name.clone(), verdict, reason, item.span, my_sites.len())
                .with_dispatch(dispatch),
        );
    }
    (ShardingReport::from_states(verdicts), diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> ShardingReport {
        let p = nfl_lang::parse_and_check(src).unwrap();
        let ctx = AnalysisCtx::build(&p).unwrap();
        analyze(&ctx).0
    }

    fn verdict_of<'r>(r: &'r ShardingReport, var: &str) -> &'r StateVerdict {
        r.get(var).unwrap()
    }

    #[test]
    fn flow_keyed_map_is_per_flow() {
        let r = run(r#"
            state buckets = map();
            fn cb(pkt: packet) {
                let src = pkt.ip.src;
                if src not in buckets { buckets[src] = 1; }
                if buckets[src] > 0 { send(pkt); }
            }
            fn main() { sniff(cb); }
        "#);
        let v = verdict_of(&r, "buckets");
        assert_eq!(v.verdict, StateShard::PerFlow, "{v:?}");
        assert_eq!(v.key_sites, 3); // membership, write, read
        assert!(r.shardable());
    }

    #[test]
    fn strong_redefinition_kills_flow_origin() {
        // `k` starts flow-derived but is strongly overwritten with a
        // constant before the access: only the constant def reaches, so
        // the key is constant → shared.
        let r = run(r#"
            state m = map();
            fn cb(pkt: packet) {
                let k = pkt.ip.src;
                k = 7;
                if k in m { drop(pkt); } else { m[k] = 1; send(pkt); }
            }
            fn main() { sniff(cb); }
        "#);
        let v = verdict_of(&r, "m");
        assert_eq!(v.verdict, StateShard::Shared, "{v:?}");
        assert!(v.reason.contains("constant"), "{}", v.reason);
    }

    #[test]
    fn weak_defs_do_not_launder_state_reads() {
        // The key is a value read out of another state map: a *weak*
        // def chain that must stay non-flow even though the outer index
        // is flow-derived.
        let r = run(r#"
            state alias = map();
            state m = map();
            fn cb(pkt: packet) {
                let k = alias[pkt.ip.src];
                if k in m { drop(pkt); } else { m[k] = 1; send(pkt); }
            }
            fn main() { sniff(cb); }
        "#);
        let v = verdict_of(&r, "m");
        assert_eq!(v.verdict, StateShard::Shared, "{v:?}");
        assert!(v.reason.contains("state `alias`"), "{}", v.reason);
        assert!(!r.shardable());
    }

    #[test]
    fn branch_join_taints_key() {
        // One branch derives the key from the flow, the other from an
        // allocator state — both defs reach the access, so it is shared.
        let r = run(r#"
            state next = 0;
            state m = map();
            fn cb(pkt: packet) {
                let k = pkt.tcp.dport;
                if pkt.ip.src == 1 {
                    k = next;
                    next = next + 1;
                }
                if k in m { drop(pkt); } else { m[k] = 1; send(pkt); }
            }
            fn main() { sniff(cb); }
        "#);
        let v = verdict_of(&r, "m");
        assert_eq!(v.verdict, StateShard::Shared, "{v:?}");
        assert!(v.reason.contains("state `next`"), "{}", v.reason);
    }

    #[test]
    fn hash_of_flow_fields_stays_flow() {
        let r = run(r#"
            state m = map();
            fn cb(pkt: packet) {
                let k = hash(pkt.ip.src) % 64;
                m[k] = 1;
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#);
        assert_eq!(verdict_of(&r, "m").verdict, StateShard::PerFlow);
    }

    #[test]
    fn tuple_key_mixing_config_and_flow_is_flow() {
        // Configs are constant across flows; they neither make a key
        // per-flow on their own nor taint a flow-derived one.
        let r = run(r#"
            config PORT = 80;
            state m = map();
            fn cb(pkt: packet) {
                m[(pkt.ip.src, PORT)] = 1;
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#);
        assert_eq!(verdict_of(&r, "m").verdict, StateShard::PerFlow);
    }

    #[test]
    fn config_only_key_is_shared() {
        let r = run(r#"
            config PORT = 80;
            state m = map();
            fn cb(pkt: packet) {
                if PORT in m { drop(pkt); } else { m[PORT] = 1; send(pkt); }
            }
            fn main() { sniff(cb); }
        "#);
        let v = verdict_of(&r, "m");
        assert_eq!(v.verdict, StateShard::Shared, "{v:?}");
    }

    #[test]
    fn non_flow_packet_field_key_is_shared() {
        // Two different flows can carry the same TTL; RSS will not keep
        // them on one core.
        let r = run(r#"
            state m = map();
            fn cb(pkt: packet) {
                if pkt.ip.ttl in m { drop(pkt); } else { m[pkt.ip.ttl] = 1; send(pkt); }
            }
            fn main() { sniff(cb); }
        "#);
        let v = verdict_of(&r, "m");
        assert_eq!(v.verdict, StateShard::Shared);
        assert!(v.reason.contains("non-flow packet field"), "{}", v.reason);
    }

    #[test]
    fn scalar_verdicts() {
        let r = run(r#"
            state seen = 0;
            state budget = 10;
            state floor = 3;
            fn cb(pkt: packet) {
                seen = seen + 1;
                if budget > floor {
                    budget = budget - 1;
                    send(pkt);
                }
            }
            fn main() { sniff(cb); }
        "#);
        // `seen` never impacts output → log-only.
        assert_eq!(verdict_of(&r, "seen").verdict, StateShard::LogOnly);
        // `budget` guards the send and is written → shared.
        assert_eq!(verdict_of(&r, "budget").verdict, StateShard::Shared);
        // `floor` is read-only.
        assert_eq!(verdict_of(&r, "floor").verdict, StateShard::ReadOnly);
        assert_eq!(r.nf_verdict(), StateShard::Shared);
    }

    #[test]
    fn loop_counter_key_is_shared() {
        // Iterating every slot each packet is the opposite of per-flow.
        let r = run(r#"
            config N = 4;
            state slots = map();
            fn cb(pkt: packet) {
                for i in 0..N {
                    if i in slots { drop(pkt); return; }
                }
                slots[pkt.ip.src] = 1;
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#);
        assert_eq!(verdict_of(&r, "slots").verdict, StateShard::Shared);
    }

    #[test]
    fn map_remove_key_is_traced() {
        let r = run(r#"
            state m = map();
            fn cb(pkt: packet) {
                let k = (pkt.ip.src, pkt.tcp.sport);
                if k in m {
                    map_remove(m, k);
                } else {
                    m[k] = 1;
                }
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#);
        let v = verdict_of(&r, "m");
        assert_eq!(v.verdict, StateShard::PerFlow, "{v:?}");
        assert_eq!(v.key_sites, 3);
    }

    #[test]
    fn src_keyed_map_dispatches_on_src_alone() {
        // Portknock-shaped: the map is keyed by source IP only. A
        // five-tuple dispatch would scatter one client's knocks (they
        // differ in dport) across shards; the resolved key must be the
        // bare `ip.src`.
        let r = run(r#"
            state progress = map();
            fn cb(pkt: packet) {
                let src = pkt.ip.src;
                if src not in progress { progress[src] = 0; }
                if progress[src] > 1 { send(pkt); } else { progress[src] = progress[src] + 1; drop(pkt); }
            }
            fn main() { sniff(cb); }
        "#);
        let d = verdict_of(&r, "progress").dispatch().expect("dispatch");
        assert_eq!(d.fields(), &[Field::IpSrc]);
        assert!(!d.symmetric());
        assert_eq!(d.render(), "ip.src");
    }

    #[test]
    fn mirrored_shapes_resolve_symmetric_dispatch() {
        // Firewall-shaped: written with the reversed 4-tuple, probed
        // with the forward one. Plain hashing of either shape would put
        // the two directions on different shards; the verdict must ask
        // for a symmetric (direction-canonicalising) hash.
        let r = run(r#"
            state pinholes = map();
            fn cb(pkt: packet) {
                if pkt.ip.src == 1 {
                    pinholes[(pkt.ip.dst, pkt.tcp.dport, pkt.ip.src, pkt.tcp.sport)] = 1;
                    send(pkt);
                } else {
                    if (pkt.ip.src, pkt.tcp.sport, pkt.ip.dst, pkt.tcp.dport) in pinholes {
                        send(pkt);
                    } else {
                        drop(pkt);
                    }
                }
            }
            fn main() { sniff(cb); }
        "#);
        let d = verdict_of(&r, "pinholes").dispatch().expect("dispatch");
        assert!(d.symmetric());
        // Oriented on the lexicographically smaller shape; both
        // orientations hash identically at runtime.
        assert_eq!(
            d.fields(),
            &[Field::IpSrc, Field::TcpSport, Field::IpDst, Field::TcpDport]
        );
        assert_eq!(
            d.mirror_fields(),
            vec![Field::IpDst, Field::TcpDport, Field::IpSrc, Field::TcpSport]
        );
    }

    #[test]
    fn open_mirror_pair_single_field_demotes_to_shared() {
        // Written under the source endpoint, probed under the
        // destination endpoint: a mirror pair, but not mirror-closed —
        // a symmetric hash would mix in the packet's other endpoint,
        // scattering one entry's write and probe across shards.
        let r = run(r#"
            state m = map();
            fn cb(pkt: packet) {
                if pkt.ip.dst in m { send(pkt); } else { drop(pkt); }
                m[pkt.ip.src] = 1;
            }
            fn main() { sniff(cb); }
        "#);
        let v = verdict_of(&r, "m");
        assert_eq!(v.verdict, StateShard::Shared, "{v:?}");
        assert!(v.reason.contains("open mirror pair"), "{}", v.reason);
        assert!(v.reason.contains("ip.src") && v.reason.contains("ip.dst"), "{}", v.reason);
        assert!(v.dispatch().is_none());
        assert!(!r.shardable());
    }

    #[test]
    fn open_mirror_pair_two_field_demotes_to_shared() {
        // Same defect with a (addr, port) pair per direction: still a
        // mirror pair, still open ({src, sport} ≠ {dst, dport}).
        let r = run(r#"
            state m = map();
            fn cb(pkt: packet) {
                if (pkt.ip.dst, pkt.tcp.dport) in m { send(pkt); } else { drop(pkt); }
                m[(pkt.ip.src, pkt.tcp.sport)] = 1;
            }
            fn main() { sniff(cb); }
        "#);
        let v = verdict_of(&r, "m");
        assert_eq!(v.verdict, StateShard::Shared, "{v:?}");
        assert!(v.reason.contains("open mirror pair"), "{}", v.reason);
    }

    #[test]
    fn open_mirror_pair_emits_nfl009() {
        let p = nfl_lang::parse_and_check(r#"
            state m = map();
            fn cb(pkt: packet) {
                if pkt.ip.dst in m { send(pkt); } else { drop(pkt); }
                m[pkt.ip.src] = 1;
            }
            fn main() { sniff(cb); }
        "#).unwrap();
        let ctx = AnalysisCtx::build(&p).unwrap();
        let (_, diags) = analyze(&ctx);
        assert!(
            diags.iter().any(|d| d.code == Code::SharedState
                && d.var.as_deref() == Some("m")
                && d.message.contains("open mirror pair")),
            "{diags:?}"
        );
    }

    #[test]
    fn closed_mirror_pair_keeps_symmetric_dispatch() {
        // The two-endpoint pair {src, dst} mirrors onto itself — the
        // symmetric hash input is exactly the entry key, so the
        // firewall-style demotion must NOT fire here.
        let r = run(r#"
            state peers = map();
            fn cb(pkt: packet) {
                if (pkt.ip.dst, pkt.ip.src) in peers { send(pkt); } else { drop(pkt); }
                peers[(pkt.ip.src, pkt.ip.dst)] = 1;
            }
            fn main() { sniff(cb); }
        "#);
        let v = verdict_of(&r, "peers");
        assert_eq!(v.verdict, StateShard::PerFlow, "{v:?}");
        let d = v.dispatch().expect("dispatch");
        assert!(d.symmetric());
    }

    #[test]
    fn derived_key_has_no_dispatch() {
        // Flow-derived but not a bare field tuple: per-flow verdict,
        // yet no dispatch hash can be synthesised from raw fields.
        let r = run(r#"
            state m = map();
            fn cb(pkt: packet) {
                let k = hash(pkt.ip.src) % 64;
                m[k] = 1;
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#);
        let v = verdict_of(&r, "m");
        assert_eq!(v.verdict, StateShard::PerFlow);
        assert!(v.dispatch().is_none());
    }

    #[test]
    fn unrelated_shapes_have_no_dispatch() {
        // Two shapes that are not mirrors of each other: both keys are
        // flow-pure, but no single hash colocates both access paths.
        let r = run(r#"
            state m = map();
            fn cb(pkt: packet) {
                if pkt.ip.src == 1 {
                    m[pkt.ip.src] = 1;
                } else {
                    m[pkt.tcp.sport] = 1;
                }
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#);
        let v = verdict_of(&r, "m");
        assert_eq!(v.verdict, StateShard::PerFlow);
        assert!(v.dispatch().is_none());
    }

    #[test]
    fn constants_align_but_do_not_dispatch() {
        // A config component is positionally part of the shape but
        // contributes no hash input.
        let r = run(r#"
            config PORT = 80;
            state m = map();
            fn cb(pkt: packet) {
                m[(pkt.ip.src, PORT)] = 1;
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#);
        let d = verdict_of(&r, "m").dispatch().expect("dispatch");
        assert_eq!(d.fields(), &[Field::IpSrc]);
        assert!(!d.symmetric());
    }

    #[test]
    fn dispatch_survives_json_roundtrip() {
        let r = run(r#"
            state m = map();
            fn cb(pkt: packet) {
                let k = (pkt.ip.src, pkt.tcp.sport);
                if k in m { drop(pkt); } else { m[k] = 1; send(pkt); }
            }
            fn main() { sniff(cb); }
        "#);
        assert!(verdict_of(&r, "m").dispatch().is_some());
        let v = nf_support::json::Value::parse(&r.to_json().render()).unwrap();
        assert_eq!(ShardingReport::from_json(&v).unwrap(), r);
    }

    #[test]
    fn report_json_roundtrips() {
        let r = run(r#"
            state next = 0;
            state m = map();
            fn cb(pkt: packet) {
                if next in m { drop(pkt); } else { m[next] = 1; send(pkt); }
                next = next + 1;
            }
            fn main() { sniff(cb); }
        "#);
        let v = nf_support::json::Value::parse(&r.to_json().render()).unwrap();
        assert_eq!(ShardingReport::from_json(&v).unwrap(), r);
        assert_eq!(r.nf_verdict(), StateShard::Shared);
    }
}
