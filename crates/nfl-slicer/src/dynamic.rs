//! Dynamic slicing (Agrawal & Horgan), over interpreter traces.
//!
//! §2.1: *"A 'dynamic' program slice is all statements that* really *lead
//! to the final behavior, which requires execution analysis based on
//! actual variable values."* Figure 1's highlighted lines are a dynamic
//! slice — the statements that relayed *the first packet of a flow*, with
//! the hash-mode branch and the reverse-direction branch absent because
//! they did not execute.
//!
//! Algorithm: walk the trace backwards from the criterion event keeping a
//! *needed-variables* set. An event that defines a needed variable joins
//! the slice; its uses become needed; a **strong** definition retires the
//! variable, a weak one (map insert, packet-field store) leaves it needed
//! (earlier writes may still matter). Control dependences follow the
//! recorded dynamic `ctrl` links.

use nfl_interp::trace::Trace;
use nfl_lang::{Program, Stmt, StmtId};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Compute the dynamic slice of `trace` for the criterion event at index
/// `criterion` (e.g. the `send` event). Returns the statement ids whose
/// executed instances really contributed.
pub fn dynamic_slice(program: &Program, trace: &Trace, criterion: usize) -> HashSet<StmtId> {
    let mut stmt_map: HashMap<StmtId, &Stmt> = HashMap::new();
    program.for_each_stmt(|s| {
        stmt_map.insert(s.id, s);
    });

    let mut in_slice_events: HashSet<usize> = HashSet::new();
    let mut needed: BTreeSet<String> = BTreeSet::new();
    let mut pending_ctrl: Vec<usize> = Vec::new();

    let Some(crit_ev) = trace.events.get(criterion) else {
        return HashSet::new();
    };
    in_slice_events.insert(criterion);
    needed.extend(crit_ev.uses.iter().cloned());
    if let Some(c) = crit_ev.ctrl {
        pending_ctrl.push(c);
    }

    for idx in (0..criterion).rev() {
        let ev = &trace.events[idx];
        let mut include = false;
        // Control dependence: a branch instance some included event hangs
        // off.
        if pending_ctrl.contains(&idx) {
            include = true;
        }
        // Data dependence: defines a needed variable.
        if ev.defs.iter().any(|d| needed.contains(d)) {
            include = true;
        }
        if !include {
            continue;
        }
        in_slice_events.insert(idx);
        // Retire strongly-defined variables; weak defs stay needed.
        if let Some(stmt) = stmt_map.get(&ev.stmt) {
            let du = nfl_analysis::defuse::def_use(stmt);
            for (v, kind) in &du.defs {
                if *kind == nfl_analysis::defuse::DefKind::Strong {
                    needed.remove(v);
                }
            }
        }
        needed.extend(ev.uses.iter().cloned());
        if let Some(c) = ev.ctrl {
            if !in_slice_events.contains(&c) {
                pending_ctrl.push(c);
            }
        }
    }

    in_slice_events
        .into_iter()
        .filter_map(|i| trace.events.get(i).map(|e| e.stmt))
        .collect()
}

/// Dynamic slice for the *last emit* of a trace — the common "why was
/// this packet sent like this" question.
pub fn dynamic_slice_of_output(program: &Program, trace: &Trace) -> HashSet<StmtId> {
    match trace.emit_indices().last() {
        Some(&i) => dynamic_slice(program, trace, i),
        None => HashSet::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_packet::wire::{parse_ipv4, TcpFlags};
    use nf_packet::Packet;
    use nfl_analysis::normalize::normalize;
    use nfl_interp::Interp;
    use nfl_lang::{parse_and_check, pretty};

    fn run(src: &str, pkts: &[Packet]) -> (nfl_lang::Program, Vec<Trace>) {
        let p = parse_and_check(src).unwrap();
        let pl = normalize(&p).unwrap();
        let mut interp = Interp::new(&pl).unwrap();
        let traces = pkts
            .iter()
            .map(|pkt| interp.process(pkt).unwrap().trace)
            .collect();
        (pl.program, traces)
    }

    fn tcp(sport: u16, dport: u16) -> Packet {
        Packet::tcp(
            parse_ipv4("10.0.0.1").unwrap(),
            sport,
            parse_ipv4("3.3.3.3").unwrap(),
            dport,
            TcpFlags::syn(),
        )
    }

    #[test]
    fn untaken_branch_excluded() {
        let src = r#"
            config MODE = 1;
            state a = 0;
            state b = 0;
            fn cb(pkt: packet) {
                if MODE == 1 {
                    a = a + 1;
                    pkt.ip.ttl = a;
                } else {
                    b = b + 1;
                    pkt.ip.ttl = b;
                }
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#;
        let (prog, traces) = run(src, &[tcp(1, 80)]);
        let slice = dynamic_slice_of_output(&prog, &traces[0]);
        let text = pretty::program_to_string_opts(
            &prog,
            &pretty::RenderOpts {
                keep_only: Some(slice),
                ..Default::default()
            },
        );
        assert!(text.contains("a = (a + 1)"), "taken branch kept:\n{text}");
        assert!(
            !text.contains("b = (b + 1)"),
            "untaken branch pruned:\n{text}"
        );
    }

    #[test]
    fn criterion_with_no_emit_gives_empty_slice() {
        let src = r#"
            fn cb(pkt: packet) {
                if pkt.tcp.dport == 9999 { send(pkt); }
            }
            fn main() { sniff(cb); }
        "#;
        let (prog, traces) = run(src, &[tcp(1, 80)]);
        assert!(dynamic_slice_of_output(&prog, &traces[0]).is_empty());
    }

    #[test]
    fn unrelated_computation_excluded() {
        let src = r#"
            state stat = 0;
            fn cb(pkt: packet) {
                stat = stat + 1;
                let x = pkt.ip.ttl - 1;
                pkt.ip.ttl = x;
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#;
        let (prog, traces) = run(src, &[tcp(1, 80)]);
        let slice = dynamic_slice_of_output(&prog, &traces[0]);
        let text = pretty::program_to_string_opts(
            &prog,
            &pretty::RenderOpts {
                keep_only: Some(slice),
                ..Default::default()
            },
        );
        assert!(!text.contains("stat = (stat + 1)"), "stat pruned:\n{text}");
        assert!(text.contains("let x"), "ttl computation kept:\n{text}");
    }

    #[test]
    fn dynamic_slice_subset_of_static() {
        use crate::static_slice::packet_slice;
        use nfl_analysis::pdg::{default_boundary, Pdg};
        let src = r#"
            config PORT = 80;
            state nat = map();
            state next = 5000;
            fn cb(pkt: packet) {
                let k = (pkt.ip.src, pkt.tcp.sport);
                if pkt.tcp.dport == PORT {
                    if k not in nat {
                        nat[k] = next;
                        next = next + 1;
                    }
                    pkt.tcp.sport = nat[k];
                    send(pkt);
                }
            }
            fn main() { sniff(cb); }
        "#;
        let (prog, traces) = run(src, &[tcp(1, 80), tcp(1, 80)]);
        let b = default_boundary(&prog, "cb");
        let pdg = Pdg::build(&prog, "cb", &b);
        let stat = packet_slice(&pdg, &prog, "cb");
        for t in &traces {
            let dynamic = dynamic_slice_of_output(&prog, t);
            for sid in &dynamic {
                assert!(
                    stat.stmts.contains(sid),
                    "dynamic stmt {sid} not in static slice"
                );
            }
        }
        // Second packet's dynamic slice skips the insert branch body
        // (existing connection), so it is strictly smaller than the first.
        let d1 = dynamic_slice_of_output(&prog, &traces[0]);
        let d2 = dynamic_slice_of_output(&prog, &traces[1]);
        assert!(d2.len() < d1.len(), "{} < {}", d2.len(), d1.len());
    }

    #[test]
    fn first_packet_slice_matches_figure1_story() {
        // The Figure 1 story: for the first packet of a flow, the slice
        // includes the mapping installation; for later packets it reads
        // the mapping instead.
        let src = r#"
            state nat = map();
            fn cb(pkt: packet) {
                let k = (pkt.ip.src, pkt.tcp.sport);
                if k not in nat {
                    nat[k] = 10000;
                }
                pkt.tcp.sport = nat[k];
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#;
        let (prog, traces) = run(src, &[tcp(7, 80), tcp(7, 80)]);
        let d1 = dynamic_slice_of_output(&prog, &traces[0]);
        let t1 = pretty::program_to_string_opts(
            &prog,
            &pretty::RenderOpts {
                keep_only: Some(d1),
                ..Default::default()
            },
        );
        assert!(t1.contains("nat[k] = 10000"), "install kept:\n{t1}");
    }
}
