//! Backward program slicing and variable classification — the heart of
//! NFactor's Algorithm 1 (lines 1–9) and its giri/StateAlyzer substitute.
//!
//! * [`static_slice`] — PDG-reachability backward slices: the **packet
//!   processing slice** (from every `send`, lines 1–4) and the **state
//!   transition slice** (from every assignment to an output-impacting
//!   state variable, lines 6–9).
//! * [`statealyzer`](statealyzer()) — the variable classification of Table 1
//!   (`pktVar` / `cfgVar` / `oisVar` / `logVar`) from the StateAlyzer
//!   features *persistent*, *top-level*, *updateable*,
//!   *output-impacting* (§2.1).
//! * [`dynamic`] — Agrawal–Horgan dynamic slicing over interpreter
//!   traces; this is what highlights the Figure 1 lines for "the load
//!   balancer relays the first packet of a flow".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod statealyzer;
pub mod static_slice;

pub use dynamic::dynamic_slice;
pub use statealyzer::{statealyzer, VarClasses};
pub use static_slice::{
    packet_slice, packet_slice_budgeted, slice_union, state_slice, state_slice_budgeted,
    SliceResult,
};
