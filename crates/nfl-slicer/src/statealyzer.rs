//! StateAlyzer-style variable classification — Table 1 of the paper.
//!
//! Features (§2.1, from StateAlyzer \[16\]):
//!
//! * **persistent** — lifetime longer than the packet-processing loop:
//!   NFL `const` / `config` / `state` globals.
//! * **top-level** — actually used during packet processing: appears in
//!   some statement's def/use sets inside the per-packet function.
//! * **updateable** — its value is updated during packet processing:
//!   appears on an LHS.
//! * **output-impacting** — impacts variables in the packet output
//!   function: defined or read inside the *packet processing slice*.
//!
//! Categories (Table 1):
//!
//! | category | features | Fig. 1 examples |
//! |---|---|---|
//! | `pktVar` | packet I/O parameter/return value | `pkt` |
//! | `cfgVar` | persistent, top-level, not updateable | `mode`, `LB_IP` |
//! | `oisVar` | persistent, top-level, updateable, output-impacting | `f2b_nat`, `rr_idx` |
//! | `logVar` | persistent, top-level, updateable, not output-impacting | `pass_stat`, `drop_stat` |
//!
//! Like NFactor (and unlike plain StateAlyzer), classification can run on
//! the packet slice instead of the whole program — "it reduces the amount
//! of code to process" (§3.1). [`statealyzer`] takes the slice for the
//! output-impact test; [`StateAlyzerInput`] selects which statements feed
//! the feature extraction (the ablation knob).

use nfl_analysis::normalize::PacketLoop;
use nfl_lang::types::{Ty, TypeInfo};
use nfl_lang::{Stmt, StmtId, StmtKind};
use std::collections::{BTreeSet, HashSet};

/// Which statements feed feature extraction (ablation knob; NFactor uses
/// the packet slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateAlyzerInput {
    /// The whole per-packet function (plain StateAlyzer).
    WholeProgram,
    /// Only the packet slice (NFactor's refinement, §3.1).
    PacketSlice,
}

/// The classification result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarClasses {
    /// Packet variables.
    pub pkt_vars: BTreeSet<String>,
    /// Configuration variables.
    pub cfg_vars: BTreeSet<String>,
    /// Output-impacting state variables.
    pub ois_vars: BTreeSet<String>,
    /// Log (non-output-impacting) state variables.
    pub log_vars: BTreeSet<String>,
    /// Number of statements actually examined (the §3.1 "amount of code
    /// to process" metric for the ablation bench).
    pub stmts_examined: usize,
}

impl VarClasses {
    /// Which class a variable landed in, as a short tag.
    pub fn class_of(&self, var: &str) -> Option<&'static str> {
        if self.pkt_vars.contains(var) {
            Some("pktVar")
        } else if self.cfg_vars.contains(var) {
            Some("cfgVar")
        } else if self.ois_vars.contains(var) {
            Some("oisVar")
        } else if self.log_vars.contains(var) {
            Some("logVar")
        } else {
            None
        }
    }
}

fn visit<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in stmts {
        f(s);
        match &s.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                visit(then_branch, f);
                visit(else_branch, f);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => visit(body, f),
            _ => {}
        }
    }
}

/// Run the classification. `pkt_slice` is the packet processing slice
/// (used for the output-impacting feature and, under
/// [`StateAlyzerInput::PacketSlice`], to restrict the statements
/// examined); `info` provides variable types for `pktVar` detection.
pub fn statealyzer(
    pl: &PacketLoop,
    pkt_slice: &HashSet<StmtId>,
    info: &TypeInfo,
    input: StateAlyzerInput,
) -> VarClasses {
    let program = &pl.program;
    let func = program.function(&pl.func).expect("normalised function");

    // Persistent = global.
    let persistent: BTreeSet<String> = program
        .consts
        .iter()
        .chain(&program.configs)
        .chain(&program.states)
        .map(|i| i.name.clone())
        .collect();
    let config_decls: BTreeSet<String> = program
        .configs
        .iter()
        .chain(&program.consts)
        .map(|i| i.name.clone())
        .collect();

    // Feature extraction over the selected statement set.
    let mut top_level: BTreeSet<String> = BTreeSet::new();
    let mut updateable: BTreeSet<String> = BTreeSet::new();
    let mut output_impacting: BTreeSet<String> = BTreeSet::new();
    let mut stmts_examined = 0usize;
    visit(&func.body, &mut |s| {
        let in_scope = match input {
            StateAlyzerInput::WholeProgram => true,
            StateAlyzerInput::PacketSlice => pkt_slice.contains(&s.id),
        };
        if in_scope {
            stmts_examined += 1;
            let du = nfl_analysis::defuse::def_use(s);
            for u in &du.uses {
                top_level.insert(u.clone());
            }
            for (d, _) in &du.defs {
                top_level.insert(d.clone());
                updateable.insert(d.clone());
            }
        }
        if pkt_slice.contains(&s.id) {
            let du = nfl_analysis::defuse::def_use(s);
            for u in &du.uses {
                output_impacting.insert(u.clone());
            }
            for (d, _) in &du.defs {
                output_impacting.insert(d.clone());
            }
        }
    });

    // pktVar: the per-packet parameter plus every packet-typed local that
    // is top-level.
    let mut pkt_vars: BTreeSet<String> = BTreeSet::new();
    pkt_vars.insert(pl.pkt_param.clone());
    for name in &top_level {
        if info.var_ty(&pl.func, name) == Some(Ty::Packet) {
            pkt_vars.insert(name.clone());
        }
    }

    let mut classes = VarClasses {
        pkt_vars,
        stmts_examined,
        ..VarClasses::default()
    };
    for var in &persistent {
        if !top_level.contains(var) {
            continue; // dead config/state — not part of the model
        }
        if classes.pkt_vars.contains(var) {
            continue;
        }
        if config_decls.contains(var) && !updateable.contains(var) {
            classes.cfg_vars.insert(var.clone());
        } else if updateable.contains(var) {
            if output_impacting.contains(var) {
                classes.ois_vars.insert(var.clone());
            } else {
                classes.log_vars.insert(var.clone());
            }
        } else {
            // Persistent, read-only, but declared `state` — treat as
            // config-like for the model (it can never transition).
            classes.cfg_vars.insert(var.clone());
        }
    }
    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::static_slice::packet_slice;
    use nfl_analysis::normalize::normalize;
    use nfl_analysis::pdg::{default_boundary, Pdg};
    use nfl_lang::{parse, types};

    fn classify(src: &str, input: StateAlyzerInput) -> VarClasses {
        let p = parse(src).unwrap();
        let info = types::check(&p).unwrap();
        let pl = normalize(&p).unwrap();
        // Re-check the transformed program for local types.
        let info2 = types::check(&pl.program).unwrap_or(info);
        let b = default_boundary(&pl.program, &pl.func);
        let pdg = Pdg::build(&pl.program, &pl.func, &b);
        let ps = packet_slice(&pdg, &pl.program, &pl.func);
        statealyzer(&pl, &ps.stmts, &info2, input)
    }

    /// The paper's Figure 1 load balancer, in NFL.
    const FIG1_LB: &str = r#"
        const ROUND_ROBIN = 1;
        const MTU = 1500;
        config mode = 1;
        config LB_IP = 3.3.3.3;
        config LB_PORT = 80;
        config servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
        state f2b_nat = map();
        state b2f_nat = map();
        state rr_idx = 0;
        state cur_port = 10000;
        state pass_stat = 0;
        state drop_stat = 0;

        fn pkt_callback(pkt: packet) {
            let si = pkt.ip.src;
            let di = pkt.ip.dst;
            let sp = pkt.tcp.sport;
            let dp = pkt.tcp.dport;
            let nat_tpl = (0, 0, 0, 0);
            if dp == LB_PORT {
                let cs_ftpl = (si, sp, di, dp);
                let sc_ftpl = (di, dp, si, sp);
                if cs_ftpl not in f2b_nat {
                    let server = (0, 0);
                    if mode == ROUND_ROBIN {
                        server = servers[rr_idx];
                        rr_idx = (rr_idx + 1) % len(servers);
                    } else {
                        server = servers[hash(si) % len(servers)];
                    }
                    let n_port = cur_port;
                    cur_port = cur_port + 1;
                    let cs_btpl = (LB_IP, n_port, server[0], server[1]);
                    let sc_btpl = (server[0], server[1], LB_IP, n_port);
                    f2b_nat[cs_ftpl] = cs_btpl;
                    b2f_nat[sc_btpl] = sc_ftpl;
                    nat_tpl = cs_btpl;
                } else {
                    nat_tpl = f2b_nat[cs_ftpl];
                }
            } else {
                let sc_btpl = (si, sp, di, dp);
                if sc_btpl in b2f_nat {
                    nat_tpl = b2f_nat[sc_btpl];
                } else {
                    drop_stat = drop_stat + 1;
                    return;
                }
            }
            pass_stat = pass_stat + 1;
            pkt.ip.src = nat_tpl[0];
            pkt.tcp.sport = nat_tpl[1];
            pkt.ip.dst = nat_tpl[2];
            pkt.tcp.dport = nat_tpl[3];
            send(pkt);
        }

        fn main() { sniff(pkt_callback); }
    "#;

    #[test]
    fn table1_classification_matches_paper() {
        let c = classify(FIG1_LB, StateAlyzerInput::PacketSlice);
        // pktVar: pkt
        assert!(c.pkt_vars.contains("pkt"), "{c:?}");
        // cfgVar: mode, LB_IP (Table 1's examples)
        assert_eq!(c.class_of("mode"), Some("cfgVar"), "{c:?}");
        assert_eq!(c.class_of("LB_IP"), Some("cfgVar"), "{c:?}");
        assert_eq!(c.class_of("LB_PORT"), Some("cfgVar"));
        assert_eq!(c.class_of("servers"), Some("cfgVar"));
        // oisVar: f2b_nat, rr_idx (Table 1's examples) + friends
        assert_eq!(c.class_of("f2b_nat"), Some("oisVar"), "{c:?}");
        assert_eq!(c.class_of("rr_idx"), Some("oisVar"), "{c:?}");
        assert_eq!(c.class_of("b2f_nat"), Some("oisVar"));
        assert_eq!(c.class_of("cur_port"), Some("oisVar"));
        // Under Algorithm 1's slice-restricted StateAlyzer the log
        // counters fall outside the packet slice entirely (line 5 returns
        // only pktVar/oisVars/cfgVars) — they are not misclassified.
        assert_eq!(c.class_of("pass_stat"), None, "{c:?}");
        assert_eq!(c.class_of("drop_stat"), None, "{c:?}");
        // Whole-program StateAlyzer recovers Table 1's logVar column.
        let w = classify(FIG1_LB, StateAlyzerInput::WholeProgram);
        assert_eq!(w.class_of("pass_stat"), Some("logVar"), "{w:?}");
        assert_eq!(w.class_of("drop_stat"), Some("logVar"), "{w:?}");
        // And agrees on everything else.
        assert_eq!(w.ois_vars, c.ois_vars);
    }

    #[test]
    fn slice_input_examines_fewer_statements() {
        let whole = classify(FIG1_LB, StateAlyzerInput::WholeProgram);
        let sliced = classify(FIG1_LB, StateAlyzerInput::PacketSlice);
        assert!(
            sliced.stmts_examined < whole.stmts_examined,
            "slice {} < whole {}",
            sliced.stmts_examined,
            whole.stmts_examined
        );
        // Classification of the key variables is unchanged.
        assert_eq!(sliced.ois_vars, whole.ois_vars);
        assert_eq!(sliced.cfg_vars, whole.cfg_vars);
    }

    #[test]
    fn dead_state_not_classified() {
        let c = classify(
            r#"
            state never_used = 0;
            state used = 0;
            fn cb(pkt: packet) {
                used = used + 1;
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
            StateAlyzerInput::WholeProgram,
        );
        assert_eq!(c.class_of("never_used"), None);
        // `used` is updated but never influences any output — a logVar,
        // exactly like the paper's pass_stat.
        assert_eq!(c.class_of("used"), Some("logVar"));
    }

    #[test]
    fn counter_not_feeding_send_is_logvar() {
        let c = classify(
            r#"
            state counter = 0;
            fn cb(pkt: packet) {
                counter = counter + 1;
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
            StateAlyzerInput::WholeProgram,
        );
        // `counter` never influences the packet nor guards the send.
        assert_eq!(c.class_of("counter"), Some("logVar"), "{c:?}");
    }

    #[test]
    fn state_guarding_send_is_oisvar() {
        let c = classify(
            r#"
            state budget = 10;
            fn cb(pkt: packet) {
                if budget > 0 {
                    budget = budget - 1;
                    send(pkt);
                }
            }
            fn main() { sniff(cb); }
        "#,
            StateAlyzerInput::WholeProgram,
        );
        assert_eq!(c.class_of("budget"), Some("oisVar"), "{c:?}");
    }
}
