//! Static backward slicing over the PDG.
//!
//! Algorithm 1, lines 1–4 (packet slice) and 6–9 (state slice):
//!
//! ```text
//! for stmt in prog:
//!     if stmt calls PKT_OUTPUT_FUNC:
//!         pktSlice ∪= BackwardSlice(stmt, Vars(stmt.RHS))
//! …
//! for stmt in prog:
//!     if Vars(stmt.LHS) in oisVars:
//!         stateSlice ∪= BackwardSlice(stmt, Vars(stmt.LHS))
//! ```

use nf_support::budget::Budget;
use nf_trace::Tracer;
use nfl_analysis::pdg::Pdg;
use nfl_lang::{builtins, pretty, Program, Stmt, StmtId, StmtKind};
use std::collections::{BTreeSet, HashSet};

/// A computed slice: the statement ids it keeps plus bookkeeping for the
/// Table 2 metrics.
#[derive(Debug, Clone, Default)]
pub struct SliceResult {
    /// Statements in the slice.
    pub stmts: HashSet<StmtId>,
    /// The criterion statements the slice was grown from.
    pub criteria: Vec<StmtId>,
}

impl SliceResult {
    /// Lines of code the slice keeps when rendered — Table 2's
    /// "LoC (slice)".
    pub fn loc(&self, program: &Program) -> usize {
        pretty::slice_loc(program, &self.stmts)
    }

    /// Render the program with the slice highlighted, Figure 1 style.
    pub fn render_highlighted(&self, program: &Program) -> String {
        pretty::program_to_string_opts(
            program,
            &pretty::RenderOpts {
                highlight: Some(self.stmts.clone()),
                ..Default::default()
            },
        )
    }

    /// Render only the sliced program.
    pub fn render_slice(&self, program: &Program) -> String {
        pretty::program_to_string_opts(
            program,
            &pretty::RenderOpts {
                keep_only: Some(self.stmts.clone()),
                ..Default::default()
            },
        )
    }
}

/// Union of two slices (`pktSlice ∪ stateSlice`, Algorithm 1 line 10).
pub fn slice_union(a: &SliceResult, b: &SliceResult) -> SliceResult {
    SliceResult {
        stmts: a.stmts.union(&b.stmts).copied().collect(),
        criteria: a
            .criteria
            .iter()
            .chain(&b.criteria)
            .copied()
            .collect(),
    }
}

/// Does the statement call the packet output function anywhere?
fn calls_pkt_output(s: &Stmt) -> bool {
    let exprs: Vec<&nfl_lang::Expr> = match &s.kind {
        StmtKind::Let { value, .. } => vec![value],
        StmtKind::Assign { value, .. } => vec![value],
        StmtKind::Expr(e) => vec![e],
        StmtKind::Return(Some(e)) => vec![e],
        _ => vec![],
    };
    exprs
        .iter()
        .any(|e| e.calls().iter().any(|c| builtins::is_packet_output(c)))
}

/// Backward slice from a single statement (criterion = the statement and
/// all variables it reads).
pub fn backward_slice(pdg: &Pdg, program: &Program, criterion: StmtId) -> SliceResult {
    let Some(node) = pdg.node_of(criterion) else {
        return SliceResult::default();
    };
    let nodes = pdg.backward_reachable([node]);
    let mut stmts = pdg.stmts_of(&nodes);
    close_over_jumps(program, func_of_stmt(program, criterion), &mut stmts);
    SliceResult {
        stmts,
        criteria: vec![criterion],
    }
}

/// The function containing a statement (for jump closure).
fn func_of_stmt(program: &Program, id: StmtId) -> &str {
    for f in &program.functions {
        let mut found = false;
        visit(&f.body, &mut |s| {
            if s.id == id {
                found = true;
            }
        });
        if found {
            return &f.name;
        }
    }
    ""
}

/// Algorithm 1 lines 1–4: the packet processing slice, grown backwards
/// from every statement that calls `send`.
pub fn packet_slice(pdg: &Pdg, program: &Program, func: &str) -> SliceResult {
    let mut criteria = Vec::new();
    if let Some(f) = program.function(func) {
        visit(&f.body, &mut |s| {
            if calls_pkt_output(s) {
                criteria.push(s.id);
            }
        });
    }
    let seeds: Vec<_> = criteria.iter().filter_map(|c| pdg.node_of(*c)).collect();
    let nodes = pdg.backward_reachable(seeds);
    let mut stmts = pdg.stmts_of(&nodes);
    if !stmts.is_empty() {
        close_over_jumps(program, func, &mut stmts);
    }
    SliceResult { stmts, criteria }
}

/// [`packet_slice`] under a [`Budget`]: the slice is grown one criterion
/// at a time with a deadline check between criteria, so an expired
/// budget yields a *partial* (under-approximate) slice instead of a
/// stall. Returns the slice plus `Some(reason)` when it stopped early —
/// the pipeline stamps the resulting model `Completeness::Truncated`.
///
/// With no deadline set this is exactly `packet_slice` (reachability
/// distributes over seed union).
pub fn packet_slice_budgeted(
    pdg: &Pdg,
    program: &Program,
    func: &str,
    budget: &Budget,
    tracer: &Tracer,
) -> (SliceResult, Option<String>) {
    let span = tracer.span("slice.packet");
    let (result, stopped) = if budget.deadline.is_none() {
        (packet_slice(pdg, program, func), None)
    } else {
        let mut criteria = Vec::new();
        if let Some(f) = program.function(func) {
            visit(&f.body, &mut |s| {
                if calls_pkt_output(s) {
                    criteria.push(s.id);
                }
            });
        }
        grow_budgeted(pdg, program, func, criteria, budget, "packet slicing")
    };
    span.end();
    if tracer.is_enabled() {
        tracer.count("slice.packet.stmts", result.stmts.len() as u64);
        tracer.count("slice.packet.criteria", result.criteria.len() as u64);
    }
    (result, stopped)
}

/// [`state_slice`] under a [`Budget`] — see [`packet_slice_budgeted`].
pub fn state_slice_budgeted(
    pdg: &Pdg,
    program: &Program,
    func: &str,
    ois_vars: &BTreeSet<String>,
    budget: &Budget,
    tracer: &Tracer,
) -> (SliceResult, Option<String>) {
    let span = tracer.span("slice.state");
    let (result, stopped) = if budget.deadline.is_none() {
        (state_slice(pdg, program, func, ois_vars), None)
    } else {
        let mut criteria = Vec::new();
        if let Some(f) = program.function(func) {
            visit(&f.body, &mut |s| {
                let du = nfl_analysis::defuse::def_use(s);
                if du.defs.iter().any(|(v, _)| ois_vars.contains(v)) {
                    criteria.push(s.id);
                }
            });
        }
        grow_budgeted(pdg, program, func, criteria, budget, "state slicing")
    };
    span.end();
    if tracer.is_enabled() {
        tracer.count("slice.state.stmts", result.stmts.len() as u64);
        tracer.count("slice.state.criteria", result.criteria.len() as u64);
    }
    (result, stopped)
}

/// Shared budgeted growth loop: one backward-reachability pass per
/// criterion, stopping (and reporting why) once the deadline passes.
fn grow_budgeted(
    pdg: &Pdg,
    program: &Program,
    func: &str,
    criteria: Vec<StmtId>,
    budget: &Budget,
    stage: &str,
) -> (SliceResult, Option<String>) {
    let mut stmts: HashSet<StmtId> = HashSet::new();
    let mut done = Vec::new();
    let mut stopped = None;
    for c in criteria {
        if budget.expired() {
            stopped = Some(format!("wall-clock deadline exceeded during {stage}"));
            break;
        }
        if let Some(node) = pdg.node_of(c) {
            let nodes = pdg.backward_reachable([node]);
            stmts.extend(pdg.stmts_of(&nodes));
        }
        done.push(c);
    }
    if !stmts.is_empty() {
        close_over_jumps(program, func, &mut stmts);
    }
    (
        SliceResult {
            stmts,
            criteria: done,
        },
        stopped,
    )
}

/// Algorithm 1 lines 6–9: the state transition slice, grown backwards
/// from every assignment whose LHS is an output-impacting state variable.
pub fn state_slice(
    pdg: &Pdg,
    program: &Program,
    func: &str,
    ois_vars: &BTreeSet<String>,
) -> SliceResult {
    let mut criteria = Vec::new();
    if let Some(f) = program.function(func) {
        visit(&f.body, &mut |s| {
            let du = nfl_analysis::defuse::def_use(s);
            if du.defs.iter().any(|(v, _)| ois_vars.contains(v)) {
                criteria.push(s.id);
            }
        });
    }
    let seeds: Vec<_> = criteria.iter().filter_map(|c| pdg.node_of(*c)).collect();
    let nodes = pdg.backward_reachable(seeds);
    let mut stmts = pdg.stmts_of(&nodes);
    if !stmts.is_empty() {
        close_over_jumps(program, func, &mut stmts);
    }
    SliceResult { stmts, criteria }
}

fn visit<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in stmts {
        f(s);
        match &s.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                visit(then_branch, f);
                visit(else_branch, f);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => visit(body, f),
            _ => {}
        }
    }
}

/// Close a slice over jump statements (Ball–Horwitz "slicing programs
/// with arbitrary control flow", simplified): `return` / `break` /
/// `continue` carry no data and are no one's dependence *source*, yet
/// omitting them changes which kept statements execute — the Figure 1
/// LB's `return` in the unknown-outbound branch is what makes the packet
/// rewrite unreachable on that path. Any jump lying inside a control
/// structure the slice keeps is therefore added to the slice.
pub fn close_over_jumps(program: &Program, func: &str, stmts: &mut HashSet<StmtId>) {
    fn subtree_hits(s: &Stmt, keep: &HashSet<StmtId>) -> bool {
        if keep.contains(&s.id) {
            return true;
        }
        match &s.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => then_branch
                .iter()
                .chain(else_branch)
                .any(|c| subtree_hits(c, keep)),
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                body.iter().any(|c| subtree_hits(c, keep))
            }
            _ => false,
        }
    }
    fn walk(stmts: &[Stmt], keep: &mut HashSet<StmtId>) {
        for s in stmts {
            let is_jump = matches!(
                s.kind,
                StmtKind::Return(_) | StmtKind::Break | StmtKind::Continue
            );
            if !subtree_hits(s, keep) && !is_jump {
                continue;
            }
            match &s.kind {
                StmtKind::Return(_) | StmtKind::Break | StmtKind::Continue => {
                    keep.insert(s.id);
                }
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, keep);
                    walk(else_branch, keep);
                }
                StmtKind::While { body, .. } | StmtKind::For { body, .. } => walk(body, keep),
                _ => {}
            }
        }
    }
    if let Some(f) = program.function(func) {
        // Iterate to a fixpoint: newly added jumps can make enclosing
        // structures "hit" and reveal deeper jumps.
        loop {
            let before = stmts.len();
            walk(&f.body, stmts);
            if stmts.len() == before {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfl_analysis::normalize::normalize;
    use nfl_analysis::pdg::default_boundary;
    use nfl_lang::parse_and_check;

    fn setup(src: &str) -> (nfl_lang::Program, String, Pdg) {
        let p = parse_and_check(src).unwrap();
        let pl = normalize(&p).unwrap();
        let b = default_boundary(&pl.program, &pl.func);
        let pdg = Pdg::build(&pl.program, &pl.func, &b);
        (pl.program, pl.func, pdg)
    }

    const NF: &str = r#"
        config PORT = 80;
        state hits = 0;
        state log_count = 0;
        fn cb(pkt: packet) {
            log_count = log_count + 1;
            log(log_count);
            if pkt.tcp.dport == PORT {
                hits = hits + 1;
                pkt.ip.ttl = pkt.ip.ttl - 1;
                send(pkt);
            }
        }
        fn main() { sniff(cb); }
    "#;

    #[test]
    fn packet_slice_keeps_forwarding_drops_logging() {
        let (p, func, pdg) = setup(NF);
        let ps = packet_slice(&pdg, &p, &func);
        let text = ps.render_slice(&p);
        assert!(text.contains("send(pkt)"), "{text}");
        assert!(text.contains("ttl"), "header rewrite kept:\n{text}");
        assert!(text.contains("if"), "guard kept:\n{text}");
        assert!(
            !text.contains("log_count = (log_count + 1)"),
            "log update pruned:\n{text}"
        );
        assert!(!text.contains("log("), "log call pruned:\n{text}");
        assert!(!ps.criteria.is_empty());
    }

    #[test]
    fn slice_is_smaller_than_program() {
        let (p, func, pdg) = setup(NF);
        let ps = packet_slice(&pdg, &p, &func);
        let all = p.stmt_count();
        assert!(
            ps.stmts.len() < all,
            "slice {} < total {all}",
            ps.stmts.len()
        );
    }

    #[test]
    fn state_slice_from_ois_assignments() {
        let (p, func, pdg) = setup(NF);
        let ois: BTreeSet<String> = ["hits".to_string()].into();
        let ss = state_slice(&pdg, &p, &func, &ois);
        let text = ss.render_slice(&p);
        assert!(text.contains("hits = (hits + 1)"), "{text}");
        assert!(text.contains("if"), "guard of the update kept:\n{text}");
        assert!(!text.contains("send"), "send not a state criterion:\n{text}");
    }

    #[test]
    fn union_covers_both() {
        let (p, func, pdg) = setup(NF);
        let ps = packet_slice(&pdg, &p, &func);
        let ois: BTreeSet<String> = ["hits".to_string()].into();
        let ss = state_slice(&pdg, &p, &func, &ois);
        let u = slice_union(&ps, &ss);
        assert!(u.stmts.len() >= ps.stmts.len());
        assert!(u.stmts.len() >= ss.stmts.len());
        assert_eq!(u.criteria.len(), ps.criteria.len() + ss.criteria.len());
    }

    #[test]
    fn slice_closure_under_dependence() {
        // Every statement in the slice has all its PDG dependence sources
        // in the slice — the defining property of a backward slice.
        let (p, func, pdg) = setup(NF);
        let ps = packet_slice(&pdg, &p, &func);
        for &sid in &ps.stmts {
            let node = pdg.node_of(sid).unwrap();
            for (from, _) in pdg.deps_of(node) {
                if let Some(from_stmt) = pdg.cfg.nodes[from].stmt {
                    assert!(
                        ps.stmts.contains(&from_stmt),
                        "{sid} depends on {from_stmt} which is outside the slice"
                    );
                }
            }
        }
        let _ = func;
    }

    #[test]
    fn loc_metric_positive_and_less_than_total() {
        let (p, func, pdg) = setup(NF);
        let ps = packet_slice(&pdg, &p, &func);
        let loc = ps.loc(&p);
        assert!(loc > 0);
        assert!(loc < p.loc() + 20, "sanity");
    }

    #[test]
    fn nf_with_no_send_has_empty_packet_slice() {
        let (p, func, pdg) = setup(
            r#"
            state n = 0;
            fn cb(pkt: packet) { n = n + 1; }
            fn main() { sniff(cb); }
        "#,
        );
        let ps = packet_slice(&pdg, &p, &func);
        assert!(ps.stmts.is_empty());
        assert!(ps.criteria.is_empty());
    }

    #[test]
    fn budgeted_slice_matches_unbudgeted_when_time_remains() {
        let (p, func, pdg) = setup(NF);
        let budget = Budget::unlimited().with_timeout_ms(60_000);
        let tracer = Tracer::enabled();
        let (ps, stop) = packet_slice_budgeted(&pdg, &p, &func, &budget, &tracer);
        assert_eq!(stop, None);
        assert_eq!(ps.stmts, packet_slice(&pdg, &p, &func).stmts);
        let ois: BTreeSet<String> = ["hits".to_string()].into();
        let (ss, stop) = state_slice_budgeted(&pdg, &p, &func, &ois, &budget, &tracer);
        assert_eq!(stop, None);
        assert_eq!(ss.stmts, state_slice(&pdg, &p, &func, &ois).stmts);
        // Both slices recorded a span and their size counters.
        let metrics = tracer.metrics();
        assert!(metrics.counters.contains_key("slice.packet.ns"));
        assert!(metrics.counters.contains_key("slice.state.ns"));
        assert_eq!(metrics.counter("slice.packet.stmts"), Some(ps.stmts.len() as u64));
        assert_eq!(metrics.counter("slice.state.stmts"), Some(ss.stmts.len() as u64));
        assert!(tracer.balanced());
    }

    #[test]
    fn expired_budget_yields_partial_slice_with_reason() {
        let (p, func, pdg) = setup(NF);
        let budget = Budget::unlimited().with_timeout_ms(0);
        let (ps, stop) = packet_slice_budgeted(&pdg, &p, &func, &budget, &Tracer::disabled());
        assert!(stop.as_deref().unwrap().contains("packet slicing"));
        assert!(ps.stmts.len() <= packet_slice(&pdg, &p, &func).stmts.len());
        assert!(ps.criteria.is_empty(), "no criterion processed at 0ms");
    }
}
