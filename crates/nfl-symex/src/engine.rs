//! The path-exploration engine.
//!
//! Executes the normalised per-packet function on a fully symbolic packet
//! and (optionally) symbolic configuration and state, forking at every
//! branch whose condition is not concrete and pruning infeasible forks
//! with the [`crate::solver`]. Loops are unrolled up to
//! [`PathLimits::loop_bound`] iterations (§3.2: NF loops are bounded;
//! paths that hit the bound are marked `truncated`). Each completed path
//! records everything Algorithm 1 lines 11–16 need: the branch decisions
//! and constraints (→ match fields), the emitted packets with their
//! field rewrites (→ flow action), and scalar-state updates plus map
//! operations (→ state transition).

use crate::solver::{Solver, Verdict};
use crate::sym::{MapOp, SymPacket, SymVal};
use nf_support::budget::Budget;
use nf_trace::Tracer;
use nfl_analysis::normalize::PacketLoop;
use nfl_lang::{BinOp, Expr, ExprKind, ForIter, LValue, Program, Stmt, StmtId, StmtKind, UnOp};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::time::Instant;

/// Exploration limits (§3.2's loop-bounding and path-budget techniques).
#[derive(Debug, Clone, Copy)]
pub struct PathLimits {
    /// Maximum unrolled iterations per loop.
    pub loop_bound: usize,
    /// Stop exploring after this many completed paths.
    pub max_paths: usize,
    /// Per-path statement budget.
    pub max_steps: usize,
    /// Record the executed-statement set per path (needed for the
    /// per-path LoC metric; cloning it at every fork dominates the cost
    /// of exploring branch-heavy originals, so Table 2's orig runs turn
    /// it off).
    pub track_executed: bool,
}

impl Default for PathLimits {
    fn default() -> Self {
        PathLimits {
            loop_bound: 4,
            max_paths: 4096,
            max_steps: 20_000,
            track_executed: true,
        }
    }
}

/// Engine errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymexError {
    /// A builtin that cannot appear in a normalised per-packet function.
    BadBuiltin(String),
    /// A user function call survived inlining.
    UnresolvedCall(String),
    /// Malformed program (unknown variable etc.).
    Malformed(String),
}

impl fmt::Display for SymexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymexError::BadBuiltin(n) => {
                write!(f, "builtin `{n}` invalid in per-packet function")
            }
            SymexError::UnresolvedCall(n) => write!(f, "un-inlined call to `{n}`"),
            SymexError::Malformed(m) => write!(f, "malformed program: {m}"),
        }
    }
}

impl std::error::Error for SymexError {}

/// One fully-explored execution path.
#[derive(Debug, Clone)]
pub struct Path {
    /// Path condition: boolean terms asserted true, in branch order.
    pub constraints: Vec<SymVal>,
    /// `(branch stmt, taken?)` decisions — `GetConditionStatements(p)`.
    pub decisions: Vec<(StmtId, bool)>,
    /// Packets emitted along the path (symbolic; empty = drop).
    pub outputs: Vec<SymPacket>,
    /// Final symbolic values of scalar state variables that changed.
    pub state_updates: BTreeMap<String, SymVal>,
    /// Map mutations in order.
    pub map_ops: Vec<MapOp>,
    /// Statements the path executed.
    pub executed: BTreeSet<StmtId>,
    /// Did the path hit the loop bound?
    pub truncated: bool,
}

impl Path {
    /// The paper's implicit low-priority drop: no output ⇒ drop (§3.2).
    pub fn is_drop(&self) -> bool {
        self.outputs.is_empty()
    }

    /// A canonical one-line rendering (used for path-set equality in the
    /// §5 accuracy experiment).
    pub fn canonical(&self) -> String {
        let cs: Vec<String> = self.constraints.iter().map(|c| c.to_string()).collect();
        let outs: Vec<String> = self
            .outputs
            .iter()
            .map(|p| {
                let rw: Vec<String> = p
                    .rewrites()
                    .iter()
                    .map(|(f, v)| format!("{}={v}", f.path()))
                    .collect();
                format!("send[{}]", rw.join(","))
            })
            .collect();
        let sts: Vec<String> = self
            .state_updates
            .iter()
            .map(|(k, v)| format!("{k}:={v}"))
            .collect();
        let maps: Vec<String> = self.map_ops.iter().map(|m| m.to_string()).collect();
        format!(
            "IF {} THEN {} STATE {} MAPS {}",
            cs.join(" && "),
            outs.join(";"),
            sts.join(";"),
            maps.join(";")
        )
    }
}

/// Aggregate exploration result.
#[derive(Debug, Clone)]
pub struct ExplorationStats {
    /// All completed paths.
    pub paths: Vec<Path>,
    /// False if `max_paths` cut exploration short (Table 2's ">1000").
    pub exhausted: bool,
    /// Solver invocations (for the efficiency benches).
    pub solver_calls: usize,
    /// Branch forks taken on symbolic conditions (`if`/`while` with an
    /// undecided guard). Each fork spawns up to two feasibility checks.
    pub forks: usize,
    /// Forked states discarded because their path condition was UNSAT.
    pub pruned: usize,
    /// Why exploration stopped early (`None` when it ran to completion):
    /// path cap, wall-clock deadline, or solver-call budget. Set iff
    /// `exhausted` is false; the pipeline turns it into
    /// `Completeness::Truncated`.
    pub stop_reason: Option<String>,
}

/// Mutable exploration bookkeeping threaded through `run_block` /
/// `run_stmt` / `push_and_check`: counters plus the effective limits and
/// the budget's hard stops.
struct ExploreCtx {
    limits: PathLimits,
    solver_calls: usize,
    forks: usize,
    pruned: usize,
    exhausted: bool,
    stop_reason: Option<String>,
    deadline: Option<Instant>,
    max_solver_calls: Option<usize>,
    /// Deadline checks read this tracer's clock, never `Instant::now()`
    /// directly, so budget expiry is mockable alongside the timings.
    tracer: Tracer,
}

impl ExploreCtx {
    fn new(limits: PathLimits, budget: &Budget, tracer: Tracer) -> ExploreCtx {
        let mut limits = limits;
        if let Some(n) = budget.max_paths {
            limits.max_paths = limits.max_paths.min(n);
        }
        if let Some(n) = budget.max_steps {
            limits.max_steps = limits.max_steps.min(n);
        }
        ExploreCtx {
            limits,
            solver_calls: 0,
            forks: 0,
            pruned: 0,
            exhausted: true,
            stop_reason: None,
            deadline: budget.deadline,
            max_solver_calls: budget.max_solver_calls,
            tracer,
        }
    }

    /// Record an early stop; the first reason wins.
    fn stop(&mut self, reason: String) {
        self.exhausted = false;
        if self.stop_reason.is_none() {
            self.stop_reason = Some(reason);
        }
    }

    /// Should exploration halt now? Checked between statements — once
    /// true, every enclosing `run_block` unwinds, marking in-flight
    /// states truncated so their partial paths still become entries.
    fn budget_stop(&mut self) -> bool {
        if self.stop_reason.is_some() {
            return true;
        }
        if self.deadline.is_some_and(|d| self.tracer.now() >= d) {
            self.stop("wall-clock deadline exceeded during symbolic execution".into());
            return true;
        }
        if let Some(cap) = self.max_solver_calls {
            if self.solver_calls >= cap {
                self.stop(format!("solver-call budget exhausted ({cap} calls)"));
                return true;
            }
        }
        false
    }
}

/// Environment values.
#[derive(Debug, Clone, PartialEq)]
enum SV {
    Val(SymVal),
    Packet(SymPacket),
    /// An array of packets (result of `fragment`); `for` binds each.
    PacketArray(Vec<SymPacket>),
    MapRef(String),
    Unit,
}

impl SV {
    fn val(self) -> Result<SymVal, SymexError> {
        match self {
            SV::Val(v) => Ok(v),
            other => Err(SymexError::Malformed(format!(
                "expected scalar, got {other:?}"
            ))),
        }
    }
}

/// Per-path view of one state map: an overlay of writes plus membership
/// facts learned from forks.
#[derive(Debug, Clone, Default, PartialEq)]
struct MapState {
    /// Ordered writes: key → Some(value) for insert, None for remove.
    writes: Vec<(SymVal, Option<SymVal>)>,
    /// Membership facts from forks: key → contained?
    facts: Vec<(SymVal, bool)>,
}

impl MapState {
    /// What do we know about `key`'s membership?
    fn contains(&self, key: &SymVal) -> Option<bool> {
        for (k, w) in self.writes.iter().rev() {
            if k == key {
                return Some(w.is_some());
            }
        }
        for (k, f) in self.facts.iter().rev() {
            if k == key {
                return Some(*f);
            }
        }
        None
    }

    /// What value would a lookup return, if determinable?
    fn get(&self, key: &SymVal) -> Option<SymVal> {
        for (k, w) in self.writes.iter().rev() {
            if k == key {
                return w.clone();
            }
        }
        None
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Normal,
    Returned,
    Broke,
    Continued,
}

#[derive(Debug, Clone)]
struct ExecState {
    env: HashMap<String, SV>,
    maps: HashMap<String, MapState>,
    constraints: Vec<SymVal>,
    /// Free variables mentioned anywhere in `constraints` — used for the
    /// disjointness fast path at forks.
    constraint_vars: BTreeSet<String>,
    decisions: Vec<(StmtId, bool)>,
    outputs: Vec<SymPacket>,
    map_ops: Vec<MapOp>,
    executed: BTreeSet<StmtId>,
    truncated: bool,
    flow: Flow,
    steps: usize,
}

/// The symbolic executor for one normalised NF.
pub struct SymExec {
    program: Program,
    func: String,
    pkt_param: String,
    /// Exploration limits.
    pub limits: PathLimits,
    /// Wall-clock / solver-call budget; tightens `limits` and adds the
    /// hard stops `PathLimits` can't express.
    pub budget: Budget,
    /// Configs pinned to concrete values (empty = fully symbolic configs,
    /// the model-extraction mode).
    pub pinned_configs: BTreeMap<String, SymVal>,
    /// Observability handle; deadline checks and the `symex.explore`
    /// span both run off its clock. Disabled by default.
    pub tracer: Tracer,
    solver: Solver,
}

impl SymExec {
    /// Create an executor for a normalised packet loop.
    pub fn new(pl: &PacketLoop) -> SymExec {
        SymExec {
            program: pl.program.clone(),
            func: pl.func.clone(),
            pkt_param: pl.pkt_param.clone(),
            limits: PathLimits::default(),
            budget: Budget::unlimited(),
            pinned_configs: BTreeMap::new(),
            tracer: Tracer::disabled(),
            solver: Solver,
        }
    }

    /// Pin a config to a concrete value (accuracy-experiment mode).
    pub fn pin_config(mut self, name: &str, v: SymVal) -> SymExec {
        self.pinned_configs.insert(name.to_string(), v);
        self
    }

    /// Override limits.
    pub fn with_limits(mut self, limits: PathLimits) -> SymExec {
        self.limits = limits;
        self
    }

    /// Attach a budget (deadline / solver-call cap, plus optional
    /// tightening of the path and step caps).
    pub fn with_budget(mut self, budget: Budget) -> SymExec {
        self.budget = budget;
        self
    }

    /// Attach a tracer (threaded from the pipeline alongside the
    /// budget). All exploration timing runs off its clock.
    pub fn with_tracer(mut self, tracer: Tracer) -> SymExec {
        self.tracer = tracer;
        self
    }

    /// Evaluate a global initialiser concretely (globals may only use
    /// literals, constructors and earlier globals).
    fn init_value(&self, e: &Expr, env: &HashMap<String, SV>) -> Result<SV, SymexError> {
        match &e.kind {
            ExprKind::Int(v) => Ok(SV::Val(SymVal::Int(*v))),
            ExprKind::Bool(b) => Ok(SV::Val(SymVal::Bool(*b))),
            ExprKind::Str(s) => Ok(SV::Val(SymVal::Str(s.clone()))),
            ExprKind::Var(v) => env
                .get(v)
                .cloned()
                .ok_or_else(|| SymexError::Malformed(format!("init uses unknown `{v}`"))),
            ExprKind::Tuple(es) => {
                let mut items = Vec::new();
                for x in es {
                    items.push(self.init_value(x, env)?.val()?);
                }
                Ok(SV::Val(SymVal::Tuple(items)))
            }
            ExprKind::Array(es) => {
                let mut items = Vec::new();
                for x in es {
                    items.push(self.init_value(x, env)?.val()?);
                }
                Ok(SV::Val(SymVal::Array(items)))
            }
            ExprKind::Call(name, _) if name == "map" => Ok(SV::Unit), // handled by caller
            ExprKind::Call(name, _) if name == "queue" => Ok(SV::Unit),
            ExprKind::Binary(op, a, b) => {
                let va = self.init_value(a, env)?.val()?;
                let vb = self.init_value(b, env)?.val()?;
                Ok(SV::Val(SymVal::bin(*op, va, vb)))
            }
            other => Err(SymexError::Malformed(format!(
                "unsupported global initialiser {other:?}"
            ))),
        }
    }

    fn initial_state(&self) -> Result<ExecState, SymexError> {
        let mut env: HashMap<String, SV> = HashMap::new();
        let mut maps: HashMap<String, MapState> = HashMap::new();
        // Consts: concrete.
        for item in &self.program.consts {
            let v = self.init_value(&item.init, &env)?;
            env.insert(item.name.clone(), v);
        }
        // Configs: symbolic scalars (unless pinned); compound stay
        // concrete — a deployment's backend list is data, not a knob the
        // table enumerates.
        for item in &self.program.configs {
            let concrete = self.init_value(&item.init, &env)?;
            let v = if let Some(pin) = self.pinned_configs.get(&item.name) {
                SV::Val(pin.clone())
            } else {
                match &concrete {
                    SV::Val(SymVal::Int(_)) | SV::Val(SymVal::Bool(_)) => {
                        SV::Val(SymVal::Var(format!("cfg:{}", item.name)))
                    }
                    _ => concrete,
                }
            };
            env.insert(item.name.clone(), v);
        }
        // States: scalars symbolic, maps symbolic-empty overlays.
        for item in &self.program.states {
            match &item.init.kind {
                ExprKind::Call(n, _) if n == "map" => {
                    maps.insert(item.name.clone(), MapState::default());
                    env.insert(item.name.clone(), SV::MapRef(item.name.clone()));
                }
                ExprKind::Call(n, _) if n == "queue" => {
                    env.insert(item.name.clone(), SV::Unit);
                }
                _ => {
                    env.insert(
                        item.name.clone(),
                        SV::Val(SymVal::Var(format!("st:{}", item.name))),
                    );
                }
            }
        }
        env.insert(self.pkt_param.clone(), SV::Packet(SymPacket::fresh()));
        Ok(ExecState {
            env,
            maps,
            constraints: Vec::new(),
            constraint_vars: BTreeSet::new(),
            decisions: Vec::new(),
            outputs: Vec::new(),
            map_ops: Vec::new(),
            executed: BTreeSet::new(),
            truncated: false,
            flow: Flow::Normal,
            steps: 0,
        })
    }

    /// Explore all paths of the per-packet function.
    pub fn explore(&self) -> Result<ExplorationStats, SymexError> {
        let span = self.tracer.span("symex.explore");
        let f = self
            .program
            .function(&self.func)
            .ok_or_else(|| SymexError::Malformed(format!("no function `{}`", self.func)))?
            .clone();
        let init = self.initial_state()?;
        let mut cx = ExploreCtx::new(self.limits, &self.budget, self.tracer.clone());
        let finals = self.run_block(vec![init], &f.body, &mut cx)?;
        let state_names: BTreeSet<String> =
            self.program.states.iter().map(|i| i.name.clone()).collect();
        let paths = finals
            .into_iter()
            .map(|st| {
                let mut state_updates = BTreeMap::new();
                for name in &state_names {
                    if let Some(SV::Val(v)) = st.env.get(name) {
                        if *v != SymVal::Var(format!("st:{name}")) {
                            state_updates.insert(name.clone(), v.clone());
                        }
                    }
                }
                Path {
                    constraints: st.constraints,
                    decisions: st.decisions,
                    outputs: st.outputs,
                    state_updates,
                    map_ops: st.map_ops,
                    executed: st.executed,
                    truncated: st.truncated,
                }
            })
            .collect::<Vec<Path>>();
        span.end();
        if self.tracer.is_enabled() {
            self.tracer.count("symex.paths.explored", paths.len() as u64);
            self.tracer.count("symex.solver.calls", cx.solver_calls as u64);
            self.tracer.count("symex.forks", cx.forks as u64);
            self.tracer.count("symex.paths.pruned", cx.pruned as u64);
            let truncated = paths.iter().filter(|p| p.truncated).count();
            self.tracer.count("symex.paths.truncated", truncated as u64);
            for (i, p) in paths.iter().enumerate() {
                self.tracer.instant_with(
                    "symex.path",
                    &[
                        ("index", i as i64),
                        ("constraints", p.constraints.len() as i64),
                        ("outputs", p.outputs.len() as i64),
                    ],
                );
            }
        }
        Ok(ExplorationStats {
            paths,
            exhausted: cx.exhausted,
            solver_calls: cx.solver_calls,
            forks: cx.forks,
            pruned: cx.pruned,
            stop_reason: cx.stop_reason,
        })
    }

    fn run_block(
        &self,
        states: Vec<ExecState>,
        stmts: &[Stmt],
        cx: &mut ExploreCtx,
    ) -> Result<Vec<ExecState>, SymexError> {
        let mut states = states;
        for s in stmts {
            if cx.budget_stop() {
                // Unwind gracefully: in-flight states become truncated
                // partial paths rather than being discarded.
                for stt in &mut states {
                    if stt.flow == Flow::Normal {
                        stt.truncated = true;
                    }
                }
                return Ok(states);
            }
            let mut next = Vec::new();
            for st in states {
                if st.flow != Flow::Normal {
                    next.push(st);
                    continue;
                }
                next.extend(self.run_stmt(st, s, cx)?);
                if next.len() > cx.limits.max_paths {
                    cx.stop(format!(
                        "path budget exhausted ({} paths)",
                        cx.limits.max_paths
                    ));
                    next.truncate(cx.limits.max_paths);
                }
            }
            states = next;
        }
        Ok(states)
    }

    fn run_stmt(
        &self,
        mut st: ExecState,
        s: &Stmt,
        cx: &mut ExploreCtx,
    ) -> Result<Vec<ExecState>, SymexError> {
        st.steps += 1;
        if st.steps > cx.limits.max_steps {
            st.truncated = true;
            st.flow = Flow::Returned;
            return Ok(vec![st]);
        }
        if cx.limits.track_executed {
            st.executed.insert(s.id);
        }
        match &s.kind {
            StmtKind::Let { name, value } => {
                let v = self.eval(&mut st, value)?;
                st.env.insert(name.clone(), v);
                Ok(vec![st])
            }
            StmtKind::Assign { target, value } => {
                let v = self.eval(&mut st, value)?;
                self.assign(&mut st, target, v)?;
                Ok(vec![st])
            }
            StmtKind::Expr(e) => {
                self.eval(&mut st, e)?;
                Ok(vec![st])
            }
            StmtKind::Return(_) => {
                st.flow = Flow::Returned;
                Ok(vec![st])
            }
            StmtKind::Break => {
                st.flow = Flow::Broke;
                Ok(vec![st])
            }
            StmtKind::Continue => {
                st.flow = Flow::Continued;
                Ok(vec![st])
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.eval(&mut st, cond)?.val()?;
                let mut out = Vec::new();
                match c.as_bool() {
                    Some(true) => {
                        st.decisions.push((s.id, true));
                        out.extend(self.run_block(
                            vec![st],
                            then_branch,
                            cx,
                        )?);
                    }
                    Some(false) => {
                        st.decisions.push((s.id, false));
                        out.extend(self.run_block(
                            vec![st],
                            else_branch,
                            cx,
                        )?);
                    }
                    None => {
                        cx.forks += 1;
                        for (taken, branch) in
                            [(true, then_branch), (false, else_branch)]
                        {
                            let mut forked = st.clone();
                            let lit = if taken {
                                c.clone()
                            } else {
                                SymVal::negate(c.clone())
                            };
                            forked.decisions.push((s.id, taken));
                            if !self.push_and_check(&mut forked, lit, cx) {
                                continue;
                            }
                            out.extend(self.run_block(
                                vec![forked],
                                branch,
                                cx,
                            )?);
                        }
                    }
                }
                Ok(out)
            }
            StmtKind::While { cond, body } => {
                self.run_loop(st, s, cond, body, cx)
            }
            StmtKind::For { var, iter, body } => {
                match iter {
                    ForIter::Range(lo, hi) => {
                        let lov = self.eval(&mut st, lo)?.val()?;
                        let hiv = self.eval(&mut st, hi)?.val()?;
                        match (lov.as_int(), hiv.as_int()) {
                            (Some(a), Some(b)) => {
                                let mut states = vec![st];
                                let count = (b - a).max(0) as usize;
                                let bounded = count.min(cx.limits.loop_bound);
                                for (iter_no, i) in (a..b).take(bounded).enumerate() {
                                    let _ = iter_no;
                                    let mut next = Vec::new();
                                    for mut stt in states {
                                        if stt.flow != Flow::Normal {
                                            next.push(stt);
                                            continue;
                                        }
                                        stt.env.insert(
                                            var.clone(),
                                            SV::Val(SymVal::Int(i)),
                                        );
                                        next.extend(self.run_block(
                                            vec![stt],
                                            body,
                                            cx,
                                        )?);
                                    }
                                    // Convert Broke/Continued flows.
                                    states = next
                                        .into_iter()
                                        .map(|mut stt| {
                                            if stt.flow == Flow::Continued {
                                                stt.flow = Flow::Normal;
                                            }
                                            stt
                                        })
                                        .collect();
                                    if states.iter().all(|x| x.flow != Flow::Normal) {
                                        break;
                                    }
                                }
                                if count > bounded {
                                    for stt in &mut states {
                                        stt.truncated = true;
                                    }
                                }
                                Ok(states
                                    .into_iter()
                                    .map(|mut stt| {
                                        if stt.flow == Flow::Broke {
                                            stt.flow = Flow::Normal;
                                        }
                                        stt
                                    })
                                    .collect())
                            }
                            _ => {
                                // Symbolic bounds: §3.2's input-dependent
                                // loop; truncate.
                                st.truncated = true;
                                Ok(vec![st])
                            }
                        }
                    }
                    ForIter::Array(arr) => {
                        let av = self.eval(&mut st, arr)?;
                        let items: Vec<SV> = match av {
                            SV::Val(SymVal::Array(items)) => {
                                items.into_iter().map(SV::Val).collect()
                            }
                            SV::PacketArray(pkts) => {
                                pkts.into_iter().map(SV::Packet).collect()
                            }
                            SV::Val(other) => vec![SV::Val(other)],
                            _ => {
                                return Err(SymexError::Malformed(
                                    "for-in over non-array".into(),
                                ))
                            }
                        };
                        let mut states = vec![st];
                        for item in items.into_iter().take(cx.limits.loop_bound) {
                            let mut next = Vec::new();
                            for mut stt in states {
                                if stt.flow != Flow::Normal {
                                    next.push(stt);
                                    continue;
                                }
                                stt.env.insert(var.clone(), item.clone());
                                next.extend(self.run_block(
                                    vec![stt],
                                    body,
                                    cx,
                                )?);
                            }
                            states = next
                                .into_iter()
                                .map(|mut stt| {
                                    if stt.flow == Flow::Continued {
                                        stt.flow = Flow::Normal;
                                    }
                                    stt
                                })
                                .collect();
                        }
                        Ok(states
                            .into_iter()
                            .map(|mut stt| {
                                if stt.flow == Flow::Broke {
                                    stt.flow = Flow::Normal;
                                }
                                stt
                            })
                            .collect())
                    }
                }
            }
        }
    }

    /// Packet iteration special case: `for f in fragment(pkt, n)` — the
    /// forwarding model treats fragmentation as identity (one symbolic
    /// fragment). Loops over packet arrays bind the packet itself.
    fn run_loop(
        &self,
        st: ExecState,
        s: &Stmt,
        cond: &Expr,
        body: &[Stmt],
        cx: &mut ExploreCtx,
    ) -> Result<Vec<ExecState>, SymexError> {
        let mut done: Vec<ExecState> = Vec::new();
        let mut active = vec![st];
        for _round in 0..cx.limits.loop_bound {
            let mut continuing = Vec::new();
            for mut stt in active {
                if stt.flow != Flow::Normal {
                    done.push(stt);
                    continue;
                }
                let c = self.eval(&mut stt, cond)?.val()?;
                match c.as_bool() {
                    Some(false) => {
                        stt.decisions.push((s.id, false));
                        done.push(stt);
                    }
                    Some(true) => {
                        stt.decisions.push((s.id, true));
                        let after =
                            self.run_block(vec![stt], body, cx)?;
                        for mut a in after {
                            match a.flow {
                                Flow::Broke => {
                                    a.flow = Flow::Normal;
                                    done.push(a);
                                }
                                Flow::Continued | Flow::Normal => {
                                    a.flow = Flow::Normal;
                                    continuing.push(a);
                                }
                                Flow::Returned => done.push(a),
                            }
                        }
                    }
                    None => {
                        // Fork exit and entry.
                        cx.forks += 1;
                        let mut exit = stt.clone();
                        exit.decisions.push((s.id, false));
                        if self.push_and_check(
                            &mut exit,
                            SymVal::negate(c.clone()),
                            cx,
                        ) {
                            done.push(exit);
                        }
                        let mut enter = stt;
                        enter.decisions.push((s.id, true));
                        if self.push_and_check(&mut enter, c.clone(), cx) {
                            let after = self.run_block(
                                vec![enter],
                                body,
                                cx,
                            )?;
                            for mut a in after {
                                match a.flow {
                                    Flow::Broke => {
                                        a.flow = Flow::Normal;
                                        done.push(a);
                                    }
                                    Flow::Continued | Flow::Normal => {
                                        a.flow = Flow::Normal;
                                        continuing.push(a);
                                    }
                                    Flow::Returned => done.push(a),
                                }
                            }
                        }
                    }
                }
            }
            active = continuing;
            if active.is_empty() {
                break;
            }
        }
        // Anything still active hit the loop bound.
        for mut stt in active {
            stt.truncated = true;
            done.push(stt);
        }
        Ok(done)
    }

    /// Push `lit` onto a state's path condition and decide feasibility.
    ///
    /// Fast path: when the literal shares no free variables with the
    /// existing condition, checking the literal alone is equivalent to
    /// the full conjunction check — on branch-heavy NFs (the snort rule
    /// chain) this removes the quadratic re-checking the paper's ">1 hr"
    /// cell suffers from. Map-membership consistency is enforced by the
    /// engine's overlay facts independently of the solver.
    fn push_and_check(&self, st: &mut ExecState, lit: SymVal, cx: &mut ExploreCtx) -> bool {
        let lit_vars: Vec<String> = lit.free_vars();
        let disjoint = lit_vars.iter().all(|v| !st.constraint_vars.contains(v));
        self.learn_map_fact(st, &lit);
        st.constraints.push(lit.clone());
        for v in lit_vars {
            st.constraint_vars.insert(v);
        }
        cx.solver_calls += 1;
        let feasible = if disjoint {
            self.solver.check(std::slice::from_ref(st.constraints.last().unwrap()))
                != Verdict::Unsat
        } else {
            self.solver.check(&st.constraints) != Verdict::Unsat
        };
        if !feasible {
            cx.pruned += 1;
        }
        feasible
    }

    /// If a freshly asserted literal is a map-membership fact, record it
    /// in the map overlay so later queries resolve concretely.
    fn learn_map_fact(&self, st: &mut ExecState, lit: &SymVal) {
        match lit {
            SymVal::MapContains(m, k) => {
                if let Some(ms) = st.maps.get_mut(m) {
                    ms.facts.push(((**k).clone(), true));
                }
            }
            SymVal::Not(inner) => {
                if let SymVal::MapContains(m, k) = &**inner {
                    if let Some(ms) = st.maps.get_mut(m) {
                        ms.facts.push(((**k).clone(), false));
                    }
                }
            }
            _ => {}
        }
    }

    fn assign(
        &self,
        st: &mut ExecState,
        target: &LValue,
        v: SV,
    ) -> Result<(), SymexError> {
        match target {
            LValue::Var(name) => {
                st.env.insert(name.clone(), v);
                Ok(())
            }
            LValue::Index(base, key) => {
                let k = self.eval(st, key)?.val()?;
                let slot = st.env.get(base).cloned();
                match slot {
                    Some(SV::MapRef(mname)) => {
                        let value = v.val()?;
                        st.map_ops.push(MapOp::Insert {
                            map: mname.clone(),
                            key: k.clone(),
                            value: value.clone(),
                        });
                        st.maps
                            .entry(mname)
                            .or_default()
                            .writes
                            .push((k, Some(value)));
                        Ok(())
                    }
                    Some(SV::Val(SymVal::Array(items))) => {
                        let mut items = items;
                        let idx = k.as_int().ok_or_else(|| {
                            SymexError::Malformed("symbolic array store index".into())
                        })?;
                        let i = usize::try_from(idx).map_err(|_| {
                            SymexError::Malformed("negative array index".into())
                        })?;
                        if i >= items.len() {
                            return Err(SymexError::Malformed("array store OOB".into()));
                        }
                        items[i] = v.val()?;
                        st.env
                            .insert(base.clone(), SV::Val(SymVal::Array(items)));
                        Ok(())
                    }
                    _ => Err(SymexError::Malformed(format!(
                        "index-assign into `{base}`"
                    ))),
                }
            }
            LValue::Field(base, field) => {
                let value = v.val()?;
                match st.env.get_mut(base) {
                    Some(SV::Packet(p)) => {
                        p.set(*field, value);
                        Ok(())
                    }
                    _ => Err(SymexError::Malformed(format!(
                        "field store on non-packet `{base}`"
                    ))),
                }
            }
        }
    }

    fn eval(&self, st: &mut ExecState, e: &Expr) -> Result<SV, SymexError> {
        match &e.kind {
            ExprKind::Int(v) => Ok(SV::Val(SymVal::Int(*v))),
            ExprKind::Bool(b) => Ok(SV::Val(SymVal::Bool(*b))),
            ExprKind::Str(s) => Ok(SV::Val(SymVal::Str(s.clone()))),
            ExprKind::Var(name) => st
                .env
                .get(name)
                .cloned()
                .ok_or_else(|| SymexError::Malformed(format!("unbound `{name}`"))),
            ExprKind::Field(base, field) => match st.env.get(base) {
                Some(SV::Packet(p)) => Ok(SV::Val(p.get(*field))),
                _ => Err(SymexError::Malformed(format!(
                    "field read on non-packet `{base}`"
                ))),
            },
            ExprKind::Tuple(es) => {
                let mut items = Vec::new();
                for x in es {
                    items.push(self.eval(st, x)?.val()?);
                }
                Ok(SV::Val(SymVal::Tuple(items)))
            }
            ExprKind::Array(es) => {
                let mut items = Vec::new();
                for x in es {
                    items.push(self.eval(st, x)?.val()?);
                }
                Ok(SV::Val(SymVal::Array(items)))
            }
            ExprKind::Index(base, idx) => {
                let b = self.eval(st, base)?;
                let i = self.eval(st, idx)?.val()?;
                match b {
                    SV::MapRef(mname) => {
                        let ms = st.maps.entry(mname.clone()).or_default();
                        if let Some(v) = ms.get(&i) {
                            return Ok(SV::Val(v));
                        }
                        Ok(SV::Val(SymVal::MapGet(mname, Box::new(i))))
                    }
                    SV::Val(SymVal::Array(items)) => match i.as_int() {
                        Some(n) => {
                            let ix = usize::try_from(n).map_err(|_| {
                                SymexError::Malformed("negative index".into())
                            })?;
                            items.get(ix).cloned().map(SV::Val).ok_or_else(|| {
                                SymexError::Malformed("array index OOB".into())
                            })
                        }
                        None => Ok(SV::Val(SymVal::ArrayGet(
                            Box::new(SymVal::Array(items)),
                            Box::new(i),
                        ))),
                    },
                    SV::Val(SymVal::Tuple(items)) => match i.as_int() {
                        Some(n) => {
                            let ix = usize::try_from(n).map_err(|_| {
                                SymexError::Malformed("negative index".into())
                            })?;
                            items.get(ix).cloned().map(SV::Val).ok_or_else(|| {
                                SymexError::Malformed("tuple index OOB".into())
                            })
                        }
                        None => Err(SymexError::Malformed(
                            "symbolic tuple index".into(),
                        )),
                    },
                    SV::Val(other) => {
                        // Projection from a symbolic tuple-valued term.
                        match i.as_int() {
                            Some(n) => Ok(SV::Val(SymVal::proj(
                                other,
                                usize::try_from(n).map_err(|_| {
                                    SymexError::Malformed("negative index".into())
                                })?,
                            ))),
                            None => Ok(SV::Val(SymVal::ArrayGet(
                                Box::new(other),
                                Box::new(i),
                            ))),
                        }
                    }
                    _ => Err(SymexError::Malformed("indexing non-container".into())),
                }
            }
            ExprKind::Binary(op, a, b) => {
                // Membership over maps is special-cased; everything else
                // is a term.
                if matches!(op, BinOp::In | BinOp::NotIn) {
                    let key = self.eval(st, a)?.val()?;
                    let container = self.eval(st, b)?;
                    return match container {
                        SV::MapRef(mname) => {
                            let ms = st.maps.entry(mname.clone()).or_default();
                            let known = ms.contains(&key);
                            let v = match known {
                                Some(c) => SymVal::Bool(c),
                                None => SymVal::MapContains(mname, Box::new(key)),
                            };
                            Ok(SV::Val(if *op == BinOp::NotIn {
                                SymVal::negate(v)
                            } else {
                                v
                            }))
                        }
                        SV::Val(SymVal::Array(items)) => {
                            // Membership in a concrete array: disjunction
                            // of equalities.
                            let mut acc = SymVal::Bool(false);
                            for item in items {
                                acc = SymVal::bin(
                                    BinOp::Or,
                                    acc,
                                    SymVal::bin(BinOp::Eq, key.clone(), item),
                                );
                            }
                            Ok(SV::Val(if *op == BinOp::NotIn {
                                SymVal::negate(acc)
                            } else {
                                acc
                            }))
                        }
                        _ => Err(SymexError::Malformed("`in` over non-container".into())),
                    };
                }
                let va = self.eval(st, a)?.val()?;
                let vb = self.eval(st, b)?.val()?;
                Ok(SV::Val(SymVal::bin(*op, va, vb)))
            }
            ExprKind::Unary(op, inner) => {
                let v = self.eval(st, inner)?.val()?;
                Ok(SV::Val(match op {
                    UnOp::Not => SymVal::negate(v),
                    UnOp::Neg => match v {
                        SymVal::Int(i) => SymVal::Int(-i),
                        other => SymVal::Neg(Box::new(other)),
                    },
                }))
            }
            ExprKind::Call(name, args) => self.eval_call(st, name, args),
        }
    }

    fn eval_call(
        &self,
        st: &mut ExecState,
        name: &str,
        args: &[Expr],
    ) -> Result<SV, SymexError> {
        match name {
            "send" => {
                let p = self.eval(st, &args[0])?;
                match p {
                    SV::Packet(pkt) => {
                        st.outputs.push(pkt);
                        Ok(SV::Unit)
                    }
                    _ => Err(SymexError::Malformed("send of non-packet".into())),
                }
            }
            "drop" | "log" => {
                for a in args {
                    self.eval(st, a)?;
                }
                Ok(SV::Unit)
            }
            "hash" => {
                let v = self.eval(st, &args[0])?.val()?;
                Ok(SV::Val(SymVal::Hash(Box::new(v))))
            }
            "len" => {
                let v = self.eval(st, &args[0])?;
                match v {
                    SV::Val(SymVal::Array(items)) => {
                        Ok(SV::Val(SymVal::Int(items.len() as i64)))
                    }
                    SV::Val(SymVal::Tuple(items)) => {
                        Ok(SV::Val(SymVal::Int(items.len() as i64)))
                    }
                    SV::Val(SymVal::Str(s)) => Ok(SV::Val(SymVal::Int(s.len() as i64))),
                    SV::Packet(_) => Ok(SV::Val(SymVal::Var("pkt.len".into()))),
                    SV::MapRef(m) => Ok(SV::Val(SymVal::Var(format!("len:{m}")))),
                    _ => Err(SymexError::Malformed("len of unsupported value".into())),
                }
            }
            "min" | "max" => {
                let a = self.eval(st, &args[0])?.val()?;
                let b = self.eval(st, &args[1])?.val()?;
                if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
                    Ok(SV::Val(SymVal::Int(if name == "min" {
                        x.min(y)
                    } else {
                        x.max(y)
                    })))
                } else if name == "min" {
                    Ok(SV::Val(SymVal::Min(Box::new(a), Box::new(b))))
                } else {
                    Ok(SV::Val(SymVal::Max(Box::new(a), Box::new(b))))
                }
            }
            "checksum" => {
                let _ = self.eval(st, &args[0])?;
                Ok(SV::Val(SymVal::Var("checksum(pkt)".into())))
            }
            "fragment" => {
                // Forwarding model: fragmentation is identity (§2.3 —
                // the model captures forwarding, not MTU mechanics), so
                // symbolically a packet fragments into itself.
                let p = self.eval(st, &args[0])?;
                let _ = self.eval(st, &args[1])?;
                match p {
                    SV::Packet(pkt) => Ok(SV::PacketArray(vec![pkt])),
                    _ => Err(SymexError::Malformed("fragment of non-packet".into())),
                }
            }
            "map_remove" => {
                let ExprKind::Var(base) = &args[0].kind else {
                    return Err(SymexError::Malformed("map_remove target".into()));
                };
                let k = self.eval(st, &args[1])?.val()?;
                let Some(SV::MapRef(mname)) = st.env.get(base).cloned() else {
                    return Err(SymexError::Malformed("map_remove on non-map".into()));
                };
                st.map_ops.push(MapOp::Remove {
                    map: mname.clone(),
                    key: k.clone(),
                });
                st.maps.entry(mname).or_default().writes.push((k, None));
                Ok(SV::Unit)
            }
            "recv" | "sniff" | "spawn" | "q_push" | "q_pop" => {
                Err(SymexError::BadBuiltin(name.to_string()))
            }
            "listen" | "accept" | "connect" | "sock_read" | "sock_write"
            | "sock_close" | "fork" | "select2" => {
                Err(SymexError::BadBuiltin(name.to_string()))
            }
            other => {
                if nfl_lang::builtins::lookup(other).is_some() {
                    Err(SymexError::BadBuiltin(other.to_string()))
                } else {
                    Err(SymexError::UnresolvedCall(other.to_string()))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfl_analysis::normalize::normalize;
    use nfl_lang::parse_and_check;

    fn explore(src: &str) -> ExplorationStats {
        let p = parse_and_check(src).unwrap();
        let pl = normalize(&p).unwrap();
        SymExec::new(&pl).explore().unwrap()
    }

    #[test]
    fn straight_line_one_path() {
        let stats = explore(
            r#"
            fn cb(pkt: packet) { send(pkt); }
            fn main() { sniff(cb); }
        "#,
        );
        assert_eq!(stats.paths.len(), 1);
        assert!(stats.exhausted);
        assert!(!stats.paths[0].is_drop());
        assert!(stats.paths[0].constraints.is_empty());
    }

    #[test]
    fn one_branch_two_paths() {
        let stats = explore(
            r#"
            config PORT = 80;
            fn cb(pkt: packet) {
                if pkt.tcp.dport == PORT { send(pkt); }
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert_eq!(stats.paths.len(), 2);
        let sends: Vec<_> = stats.paths.iter().filter(|p| !p.is_drop()).collect();
        let drops: Vec<_> = stats.paths.iter().filter(|p| p.is_drop()).collect();
        assert_eq!(sends.len(), 1);
        assert_eq!(drops.len(), 1);
        assert_eq!(
            sends[0].constraints[0].to_string(),
            "(pkt.tcp.dport == cfg:PORT)"
        );
    }

    #[test]
    fn infeasible_path_pruned() {
        let stats = explore(
            r#"
            fn cb(pkt: packet) {
                if pkt.ip.ttl > 10 {
                    if pkt.ip.ttl < 5 {
                        send(pkt);
                    }
                }
            }
            fn main() { sniff(cb); }
        "#,
        );
        // ttl>10 && ttl<5 is unsat: only 2 feasible paths (ttl<=10; ttl>10&&ttl>=5).
        assert_eq!(stats.paths.len(), 2);
        assert!(stats.paths.iter().all(|p| p.is_drop()));
    }

    #[test]
    fn map_membership_forks_new_vs_existing() {
        let stats = explore(
            r#"
            state nat = map();
            state next = 10000;
            fn cb(pkt: packet) {
                let k = (pkt.ip.src, pkt.tcp.sport);
                if k not in nat {
                    nat[k] = next;
                    next = next + 1;
                }
                pkt.tcp.sport = nat[k];
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert_eq!(stats.paths.len(), 2, "new-connection and existing-connection");
        // New-connection path: has the insert, rewrites sport to st:next.
        let new_path = stats
            .paths
            .iter()
            .find(|p| !p.map_ops.is_empty())
            .expect("insert path");
        assert!(matches!(new_path.map_ops[0], MapOp::Insert { .. }));
        assert_eq!(
            new_path.state_updates.get("next").map(|v| v.to_string()),
            Some("(st:next + 1)".to_string())
        );
        let rw = new_path.outputs[0].rewrites();
        assert_eq!(rw.len(), 1);
        assert_eq!(rw[0].1.to_string(), "st:next");
        // Existing-connection path: lookup term, no state change.
        let old_path = stats
            .paths
            .iter()
            .find(|p| p.map_ops.is_empty())
            .expect("lookup path");
        let rw = old_path.outputs[0].rewrites();
        assert!(
            rw[0].1.to_string().contains("nat["),
            "symbolic map read: {}",
            rw[0].1
        );
        assert!(old_path.state_updates.is_empty());
    }

    #[test]
    fn overlay_makes_membership_concrete_after_insert() {
        let stats = explore(
            r#"
            state seen = map();
            fn cb(pkt: packet) {
                let k = pkt.ip.src;
                seen[k] = 1;
                if k in seen {
                    send(pkt);
                }
            }
            fn main() { sniff(cb); }
        "#,
        );
        // After the insert, `k in seen` is concretely true: one path.
        assert_eq!(stats.paths.len(), 1);
        assert!(!stats.paths[0].is_drop());
    }

    #[test]
    fn symbolic_config_generates_per_mode_paths() {
        let stats = explore(
            r#"
            const RR = 1;
            config mode = 1;
            config servers = [(1.1.1.1, 80), (2.2.2.2, 80)];
            state idx = 0;
            fn cb(pkt: packet) {
                let server = (0, 0);
                if mode == RR {
                    server = servers[idx];
                    idx = (idx + 1) % len(servers);
                } else {
                    server = servers[hash(pkt.ip.src) % len(servers)];
                }
                pkt.ip.dst = server[0];
                pkt.tcp.dport = server[1];
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert_eq!(stats.paths.len(), 2, "one per mode");
        let rr = stats
            .paths
            .iter()
            .find(|p| p.constraints.iter().any(|c| c.to_string() == "(cfg:mode == 1)"))
            .expect("RR path");
        // Figure 6: state update (idx+1)%N with N=2.
        assert_eq!(
            rr.state_updates.get("idx").map(|v| v.to_string()),
            Some("((st:idx + 1) % 2)".to_string())
        );
        // Destination rewritten to server[idx] — symbolic array get.
        let rw = rr.outputs[0].rewrites();
        assert!(
            rw.iter().any(|(_, v)| v.to_string().contains("st:idx")),
            "{rw:?}"
        );
        let hash_path = stats
            .paths
            .iter()
            .find(|p| p.constraints.iter().any(|c| c.to_string() == "(cfg:mode != 1)"))
            .expect("hash path");
        assert!(hash_path.state_updates.is_empty(), "hash mode is stateless");
        let rw = hash_path.outputs[0].rewrites();
        assert!(rw.iter().any(|(_, v)| v.to_string().contains("hash(")));
    }

    #[test]
    fn pinned_config_collapses_table() {
        let src = r#"
            const RR = 1;
            config mode = 1;
            state idx = 0;
            config servers = [(1.1.1.1, 80)];
            fn cb(pkt: packet) {
                if mode == RR {
                    idx = (idx + 1) % len(servers);
                }
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#;
        let p = parse_and_check(src).unwrap();
        let pl = normalize(&p).unwrap();
        let stats = SymExec::new(&pl)
            .pin_config("mode", SymVal::Int(2))
            .explore()
            .unwrap();
        assert_eq!(stats.paths.len(), 1, "mode pinned away the branch");
        assert!(stats.paths[0].state_updates.is_empty());
    }

    #[test]
    fn bounded_loop_unrolls() {
        let stats = explore(
            r#"
            state n = 0;
            fn cb(pkt: packet) {
                for i in 0..3 {
                    n = n + 1;
                }
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert_eq!(stats.paths.len(), 1);
        assert_eq!(
            stats.paths[0].state_updates.get("n").map(|v| v.to_string()),
            Some("(((st:n + 1) + 1) + 1)".to_string())
        );
        assert!(!stats.paths[0].truncated);
    }

    #[test]
    fn unbounded_symbolic_loop_truncates() {
        let stats = explore(
            r#"
            state n = 0;
            fn cb(pkt: packet) {
                while n < pkt.ip.len {
                    n = n + 1;
                }
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert!(stats.paths.iter().any(|p| p.truncated));
        // Paths that exited before the bound also exist.
        assert!(stats.paths.iter().any(|p| !p.truncated));
    }

    #[test]
    fn fragment_loop_sends_symbolic_packet() {
        let stats = explore(
            r#"
            const MTU = 1500;
            fn cb(pkt: packet) {
                for f in fragment(pkt, MTU) {
                    send(f);
                }
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert_eq!(stats.paths.len(), 1);
        assert_eq!(stats.paths[0].outputs.len(), 1);
    }

    #[test]
    fn early_return_is_drop_path() {
        let stats = explore(
            r#"
            state drops = 0;
            fn cb(pkt: packet) {
                if pkt.ip.ttl == 0 {
                    drops = drops + 1;
                    return;
                }
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert_eq!(stats.paths.len(), 2);
        let dropped = stats.paths.iter().find(|p| p.is_drop()).unwrap();
        assert_eq!(
            dropped.constraints[0].to_string(),
            "(pkt.ip.ttl == 0)"
        );
        assert!(dropped.state_updates.contains_key("drops"));
    }

    #[test]
    fn canonical_is_deterministic() {
        let a = explore(
            r#"
            fn cb(pkt: packet) { if pkt.ip.ttl > 1 { send(pkt); } }
            fn main() { sniff(cb); }
        "#,
        );
        let b = explore(
            r#"
            fn cb(pkt: packet) { if pkt.ip.ttl > 1 { send(pkt); } }
            fn main() { sniff(cb); }
        "#,
        );
        let ca: Vec<_> = a.paths.iter().map(|p| p.canonical()).collect();
        let cb: Vec<_> = b.paths.iter().map(|p| p.canonical()).collect();
        assert_eq!(ca, cb);
    }

    #[test]
    fn executed_stmts_recorded() {
        let stats = explore(
            r#"
            fn cb(pkt: packet) {
                let x = pkt.ip.ttl;
                if x > 1 { send(pkt); }
            }
            fn main() { sniff(cb); }
        "#,
        );
        for p in &stats.paths {
            assert!(p.executed.len() >= 2);
        }
        // The two paths share the prefix but differ in total size.
        let sizes: std::collections::BTreeSet<usize> =
            stats.paths.iter().map(|p| p.executed.len()).collect();
        assert_eq!(sizes.len(), 2);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use nfl_analysis::normalize::normalize;
    use nfl_lang::parse_and_check;

    fn explore(src: &str) -> ExplorationStats {
        let p = parse_and_check(src).unwrap();
        let pl = normalize(&p).unwrap();
        SymExec::new(&pl).explore().unwrap()
    }

    #[test]
    fn map_remove_makes_membership_false() {
        let stats = explore(
            r#"
            state seen = map();
            fn cb(pkt: packet) {
                let k = pkt.ip.src;
                seen[k] = 1;
                map_remove(seen, k);
                if k in seen {
                    send(pkt);
                }
            }
            fn main() { sniff(cb); }
        "#,
        );
        // After insert+remove the membership is concretely false: the
        // send is unreachable, one drop path, with both map ops recorded.
        assert_eq!(stats.paths.len(), 1);
        assert!(stats.paths[0].is_drop());
        assert_eq!(stats.paths[0].map_ops.len(), 2);
        assert!(matches!(stats.paths[0].map_ops[1], MapOp::Remove { .. }));
    }

    #[test]
    fn multiple_sends_on_one_path() {
        let stats = explore(
            r#"
            fn cb(pkt: packet) {
                send(pkt);
                pkt.ip.ttl = 1;
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert_eq!(stats.paths.len(), 1);
        assert_eq!(stats.paths[0].outputs.len(), 2);
        // First output unmodified, second carries the rewrite.
        assert!(stats.paths[0].outputs[0].rewrites().is_empty());
        assert_eq!(stats.paths[0].outputs[1].rewrites().len(), 1);
    }

    #[test]
    fn concrete_while_executes_without_forking() {
        let stats = explore(
            r#"
            state n = 0;
            fn cb(pkt: packet) {
                let i = 0;
                while i < 3 {
                    i = i + 1;
                    n = n + 1;
                }
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert_eq!(stats.paths.len(), 1);
        assert_eq!(
            stats.paths[0].state_updates["n"].to_string(),
            "(((st:n + 1) + 1) + 1)"
        );
    }

    #[test]
    fn break_and_continue_in_concrete_loop() {
        let stats = explore(
            r#"
            state acc = 0;
            fn cb(pkt: packet) {
                for i in 0..10 {
                    if i == 1 { continue; }
                    if i == 3 { break; }
                    acc = acc + i;
                }
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert_eq!(stats.paths.len(), 1);
        // i = 0 and 2 accumulate (the +0 folds away): acc = st:acc + 2.
        assert_eq!(
            stats.paths[0].state_updates["acc"].to_string(),
            "(st:acc + 2)"
        );
    }

    #[test]
    fn array_element_store() {
        let stats = explore(
            r#"
            fn cb(pkt: packet) {
                let arr = [1, 2, 3];
                arr[1] = pkt.ip.ttl;
                pkt.ip.id = arr[1];
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert_eq!(stats.paths.len(), 1);
        let rw = stats.paths[0].outputs[0].rewrites();
        assert_eq!(rw[0].1.to_string(), "pkt.ip.ttl");
    }

    #[test]
    fn socket_builtin_rejected() {
        let p = parse_and_check(
            r#"
            fn cb(pkt: packet) {
                let fd = listen(80);
                send(pkt);
            }
            fn main() { sniff(cb); }
        "#,
        )
        .unwrap();
        let pl = normalize(&p).unwrap();
        assert!(matches!(
            SymExec::new(&pl).explore(),
            Err(SymexError::BadBuiltin(_))
        ));
    }

    #[test]
    fn max_paths_cap_reported_as_not_exhausted() {
        // 12 independent bit-test branches = 4096 satisfiable paths,
        // far past a cap of 64. (Equality tests on the same field would
        // be mutually exclusive and collapse to 13 paths.)
        let mut body = String::new();
        for i in 0..12 {
            body.push_str(&format!(
                "if pkt.tcp.dport & {} != 0 {{ n = n + 1; }}\n",
                1 << i
            ));
        }
        let src = format!(
            "state n = 0;\nfn cb(pkt: packet) {{\n{body}send(pkt);\n}}\nfn main() {{ sniff(cb); }}"
        );
        let p = parse_and_check(&src).unwrap();
        let pl = normalize(&p).unwrap();
        let stats = SymExec::new(&pl)
            .with_limits(PathLimits {
                max_paths: 64,
                ..PathLimits::default()
            })
            .explore()
            .unwrap();
        assert!(!stats.exhausted);
        assert!(stats.paths.len() <= 64);
    }

    #[test]
    fn nested_membership_forks_compose() {
        let stats = explore(
            r#"
            state a = map();
            state b = map();
            fn cb(pkt: packet) {
                if pkt.ip.src in a {
                    if pkt.ip.dst in b {
                        send(pkt);
                    }
                }
            }
            fn main() { sniff(cb); }
        "#,
        );
        // in-a×in-b, in-a×not-in-b, not-in-a = 3 paths.
        assert_eq!(stats.paths.len(), 3);
        let fwd: Vec<_> = stats.paths.iter().filter(|p| !p.is_drop()).collect();
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].constraints.len(), 2);
    }

    #[test]
    fn disjointness_fast_path_preserves_unsat_detection() {
        // Same variable in both constraints — the slow path must engage
        // and prune the contradiction.
        let stats = explore(
            r#"
            fn cb(pkt: packet) {
                if pkt.ip.ttl > 100 {
                    if pkt.ip.ttl < 50 {
                        send(pkt);
                    }
                }
            }
            fn main() { sniff(cb); }
        "#,
        );
        assert!(
            stats.paths.iter().all(|p| p.is_drop()),
            "contradictory nested branch must be pruned"
        );
        assert_eq!(stats.paths.len(), 2);
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use nfl_analysis::normalize::normalize;
    use nfl_lang::parse_and_check;

    fn branchy_nf() -> PacketLoop {
        // 6 independent bit-tests: 64 satisfiable paths.
        let mut body = String::new();
        for i in 0..6 {
            body.push_str(&format!(
                "if pkt.tcp.dport & {} != 0 {{ n = n + 1; }}\n",
                1 << i
            ));
        }
        let src = format!(
            "state n = 0;\nfn cb(pkt: packet) {{\n{body}send(pkt);\n}}\nfn main() {{ sniff(cb); }}"
        );
        let p = parse_and_check(&src).unwrap();
        normalize(&p).unwrap()
    }

    #[test]
    fn unlimited_budget_changes_nothing() {
        let pl = branchy_nf();
        let a = SymExec::new(&pl).explore().unwrap();
        let b = SymExec::new(&pl)
            .with_budget(Budget::unlimited())
            .explore()
            .unwrap();
        assert_eq!(a.paths.len(), b.paths.len());
        assert!(a.exhausted && b.exhausted);
        assert_eq!(a.stop_reason, None);
        assert_eq!(b.stop_reason, None);
    }

    #[test]
    fn expired_deadline_degrades_to_truncated_partial_paths() {
        let pl = branchy_nf();
        let stats = SymExec::new(&pl)
            .with_budget(Budget::unlimited().with_timeout_ms(0))
            .explore()
            .unwrap();
        assert!(!stats.exhausted);
        assert!(
            stats.stop_reason.as_deref().unwrap().contains("deadline"),
            "{:?}",
            stats.stop_reason
        );
        assert!(!stats.paths.is_empty(), "partial paths, not an abort");
        assert!(stats.paths.iter().all(|p| p.truncated));
    }

    #[test]
    fn solver_call_budget_stops_exploration() {
        let pl = branchy_nf();
        let full = SymExec::new(&pl).explore().unwrap();
        let capped = SymExec::new(&pl)
            .with_budget(Budget::unlimited().with_max_solver_calls(4))
            .explore()
            .unwrap();
        assert!(!capped.exhausted);
        assert!(
            capped.stop_reason.as_deref().unwrap().contains("solver-call"),
            "{:?}",
            capped.stop_reason
        );
        assert!(capped.paths.len() < full.paths.len());
    }

    #[test]
    fn budget_max_paths_tightens_limits() {
        let pl = branchy_nf();
        let stats = SymExec::new(&pl)
            .with_budget(Budget::unlimited().with_max_paths(8))
            .explore()
            .unwrap();
        assert!(!stats.exhausted);
        assert!(stats.paths.len() <= 8);
        assert!(
            stats.stop_reason.as_deref().unwrap().contains("path budget"),
            "{:?}",
            stats.stop_reason
        );
    }

    #[test]
    fn path_budget_monotone_and_lossless() {
        // A larger path budget never loses paths: every path set is a
        // superset (by canonical form) of the smaller budget's set.
        let pl = branchy_nf();
        let mut prev: Option<Vec<String>> = None;
        for cap in [1usize, 2, 8, 32, 128] {
            let stats = SymExec::new(&pl)
                .with_budget(Budget::unlimited().with_max_paths(cap))
                .explore()
                .unwrap();
            let mut canon: Vec<String> =
                stats.paths.iter().map(|p| p.canonical()).collect();
            canon.sort();
            if let Some(p) = &prev {
                assert!(
                    canon.len() >= p.len(),
                    "budget {cap} lost paths: {} < {}",
                    canon.len(),
                    p.len()
                );
            }
            prev = Some(canon);
        }
    }
}
