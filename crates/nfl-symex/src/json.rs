//! Hand-written JSON serialization for symbolic terms.
//!
//! Replaces the former `serde` derives: each [`SymVal`] node becomes a
//! tagged object (`{"t": "bin", "op": "==", ...}`), so the encoding is
//! explicit, stable across compiler versions, and reviewable in diffs.
//! `from_json(to_json(v)) == v` for every constructible term; the
//! round-trip property is pinned by tests here and in the workspace
//! property suite.

use crate::sym::{MapOp, SymPacket, SymVal};
use nf_support::json::{FromJson, JsonError, ToJson, Value};
use nfl_lang::BinOp;
use std::collections::BTreeMap;

fn op_from_symbol(s: &str) -> Option<BinOp> {
    Some(match s {
        "+" => BinOp::Add,
        "-" => BinOp::Sub,
        "*" => BinOp::Mul,
        "/" => BinOp::Div,
        "%" => BinOp::Mod,
        "==" => BinOp::Eq,
        "!=" => BinOp::Ne,
        "<" => BinOp::Lt,
        "<=" => BinOp::Le,
        ">" => BinOp::Gt,
        ">=" => BinOp::Ge,
        "&&" => BinOp::And,
        "||" => BinOp::Or,
        "&" => BinOp::BitAnd,
        "|" => BinOp::BitOr,
        "in" => BinOp::In,
        "not in" => BinOp::NotIn,
        _ => return None,
    })
}

fn tagged(tag: &str, rest: Vec<(String, Value)>) -> Value {
    let mut fields = vec![("t".to_string(), Value::Str(tag.to_string()))];
    fields.extend(rest);
    Value::Object(fields)
}

fn sub(v: &Value, key: &str) -> Result<SymVal, JsonError> {
    SymVal::from_json(v.field(key)?)
}

fn str_field(v: &Value, key: &str) -> Result<String, JsonError> {
    v.field(key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| JsonError::msg(format!("field '{key}' must be a string")))
}

impl ToJson for SymVal {
    fn to_json(&self) -> Value {
        match self {
            SymVal::Int(v) => tagged("int", vec![("v".into(), Value::Int(*v))]),
            SymVal::Bool(b) => tagged("bool", vec![("v".into(), Value::Bool(*b))]),
            SymVal::Str(s) => tagged("str", vec![("v".into(), Value::Str(s.clone()))]),
            SymVal::Var(n) => tagged("var", vec![("name".into(), Value::Str(n.clone()))]),
            SymVal::Tuple(es) => tagged(
                "tuple",
                vec![(
                    "items".into(),
                    Value::Array(es.iter().map(|e| e.to_json()).collect()),
                )],
            ),
            SymVal::Array(es) => tagged(
                "array",
                vec![(
                    "items".into(),
                    Value::Array(es.iter().map(|e| e.to_json()).collect()),
                )],
            ),
            SymVal::Bin(op, a, b) => tagged(
                "bin",
                vec![
                    ("op".into(), Value::Str(op.symbol().to_string())),
                    ("a".into(), a.to_json()),
                    ("b".into(), b.to_json()),
                ],
            ),
            SymVal::Not(a) => tagged("not", vec![("a".into(), a.to_json())]),
            SymVal::Neg(a) => tagged("neg", vec![("a".into(), a.to_json())]),
            SymVal::Hash(a) => tagged("hash", vec![("a".into(), a.to_json())]),
            SymVal::Min(a, b) => tagged(
                "min",
                vec![("a".into(), a.to_json()), ("b".into(), b.to_json())],
            ),
            SymVal::Max(a, b) => tagged(
                "max",
                vec![("a".into(), a.to_json()), ("b".into(), b.to_json())],
            ),
            SymVal::MapGet(m, k) => tagged(
                "map_get",
                vec![
                    ("map".into(), Value::Str(m.clone())),
                    ("key".into(), k.to_json()),
                ],
            ),
            SymVal::MapContains(m, k) => tagged(
                "map_contains",
                vec![
                    ("map".into(), Value::Str(m.clone())),
                    ("key".into(), k.to_json()),
                ],
            ),
            SymVal::ArrayGet(a, i) => tagged(
                "array_get",
                vec![("base".into(), a.to_json()), ("index".into(), i.to_json())],
            ),
            SymVal::Proj(a, i) => tagged(
                "proj",
                vec![
                    ("base".into(), a.to_json()),
                    ("field".into(), Value::Int(*i as i64)),
                ],
            ),
        }
    }
}

impl FromJson for SymVal {
    fn from_json(v: &Value) -> Result<SymVal, JsonError> {
        let tag = str_field(v, "t")?;
        let items = |v: &Value| -> Result<Vec<SymVal>, JsonError> {
            v.field("items")?
                .as_array()
                .ok_or_else(|| JsonError::msg("'items' must be an array"))?
                .iter()
                .map(SymVal::from_json)
                .collect()
        };
        Ok(match tag.as_str() {
            "int" => SymVal::Int(
                v.field("v")?
                    .as_int()
                    .ok_or_else(|| JsonError::msg("int term needs an integer 'v'"))?,
            ),
            "bool" => SymVal::Bool(
                v.field("v")?
                    .as_bool()
                    .ok_or_else(|| JsonError::msg("bool term needs a boolean 'v'"))?,
            ),
            "str" => SymVal::Str(str_field(v, "v")?),
            "var" => SymVal::Var(str_field(v, "name")?),
            "tuple" => SymVal::Tuple(items(v)?),
            "array" => SymVal::Array(items(v)?),
            "bin" => {
                let sym = str_field(v, "op")?;
                let op = op_from_symbol(&sym)
                    .ok_or_else(|| JsonError::msg(format!("unknown operator '{sym}'")))?;
                SymVal::Bin(op, Box::new(sub(v, "a")?), Box::new(sub(v, "b")?))
            }
            "not" => SymVal::Not(Box::new(sub(v, "a")?)),
            "neg" => SymVal::Neg(Box::new(sub(v, "a")?)),
            "hash" => SymVal::Hash(Box::new(sub(v, "a")?)),
            "min" => SymVal::Min(Box::new(sub(v, "a")?), Box::new(sub(v, "b")?)),
            "max" => SymVal::Max(Box::new(sub(v, "a")?), Box::new(sub(v, "b")?)),
            "map_get" => SymVal::MapGet(str_field(v, "map")?, Box::new(sub(v, "key")?)),
            "map_contains" => SymVal::MapContains(str_field(v, "map")?, Box::new(sub(v, "key")?)),
            "array_get" => {
                SymVal::ArrayGet(Box::new(sub(v, "base")?), Box::new(sub(v, "index")?))
            }
            "proj" => {
                let i = v
                    .field("field")?
                    .as_int()
                    .ok_or_else(|| JsonError::msg("proj needs an integer 'field'"))?;
                if i < 0 {
                    return Err(JsonError::msg("proj field must be non-negative"));
                }
                SymVal::Proj(Box::new(sub(v, "base")?), i as usize)
            }
            other => return Err(JsonError::msg(format!("unknown term tag '{other}'"))),
        })
    }
}

impl ToJson for MapOp {
    fn to_json(&self) -> Value {
        match self {
            MapOp::Insert { map, key, value } => tagged(
                "insert",
                vec![
                    ("map".into(), Value::Str(map.clone())),
                    ("key".into(), key.to_json()),
                    ("value".into(), value.to_json()),
                ],
            ),
            MapOp::Remove { map, key } => tagged(
                "remove",
                vec![
                    ("map".into(), Value::Str(map.clone())),
                    ("key".into(), key.to_json()),
                ],
            ),
        }
    }
}

impl FromJson for MapOp {
    fn from_json(v: &Value) -> Result<MapOp, JsonError> {
        match str_field(v, "t")?.as_str() {
            "insert" => Ok(MapOp::Insert {
                map: str_field(v, "map")?,
                key: sub(v, "key")?,
                value: sub(v, "value")?,
            }),
            "remove" => Ok(MapOp::Remove {
                map: str_field(v, "map")?,
                key: sub(v, "key")?,
            }),
            other => Err(JsonError::msg(format!("unknown map op tag '{other}'"))),
        }
    }
}

impl ToJson for SymPacket {
    fn to_json(&self) -> Value {
        Value::Object(
            self.fields
                .iter()
                .map(|(f, v)| (f.path().to_string(), v.to_json()))
                .collect(),
        )
    }
}

impl FromJson for SymPacket {
    fn from_json(v: &Value) -> Result<SymPacket, JsonError> {
        let Value::Object(entries) = v else {
            return Err(JsonError::msg("symbolic packet must be an object"));
        };
        let mut fields = BTreeMap::new();
        for (path, term) in entries {
            let field = nf_packet::Field::from_path(path)
                .ok_or_else(|| JsonError::msg(format!("unknown packet field '{path}'")))?;
            fields.insert(field, SymVal::from_json(term)?);
        }
        Ok(SymPacket { fields })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &SymVal) {
        let json = v.to_json().render();
        let parsed = SymVal::from_json(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(&parsed, v, "{json}");
    }

    #[test]
    fn every_node_kind_roundtrips() {
        let x = SymVal::Var("pkt.ip.src".into());
        for v in [
            SymVal::Int(-5),
            SymVal::Bool(true),
            SymVal::Str("GET /".into()),
            x.clone(),
            SymVal::Tuple(vec![SymVal::Int(1), x.clone()]),
            SymVal::Array(vec![]),
            SymVal::Bin(BinOp::NotIn, Box::new(x.clone()), Box::new(SymVal::Int(1))),
            SymVal::Not(Box::new(SymVal::Bool(false))),
            SymVal::Neg(Box::new(x.clone())),
            SymVal::Hash(Box::new(x.clone())),
            SymVal::Min(Box::new(x.clone()), Box::new(SymVal::Int(2))),
            SymVal::Max(Box::new(x.clone()), Box::new(SymVal::Int(2))),
            SymVal::MapGet("nat".into(), Box::new(x.clone())),
            SymVal::MapContains("nat".into(), Box::new(x.clone())),
            SymVal::ArrayGet(Box::new(SymVal::Array(vec![x.clone()])), Box::new(x.clone())),
            SymVal::Proj(Box::new(x.clone()), 3),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn every_operator_roundtrips() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Mod,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::And,
            BinOp::Or,
            BinOp::BitAnd,
            BinOp::BitOr,
            BinOp::In,
            BinOp::NotIn,
        ] {
            roundtrip(&SymVal::Bin(
                op,
                Box::new(SymVal::Var("x".into())),
                Box::new(SymVal::Int(1)),
            ));
        }
    }

    #[test]
    fn map_ops_roundtrip() {
        for op in [
            MapOp::Insert {
                map: "nat".into(),
                key: SymVal::Var("k".into()),
                value: SymVal::Int(1),
            },
            MapOp::Remove {
                map: "conns".into(),
                key: SymVal::Tuple(vec![SymVal::Int(1), SymVal::Int(2)]),
            },
        ] {
            let json = op.to_json().render();
            let parsed = MapOp::from_json(&Value::parse(&json).unwrap()).unwrap();
            assert_eq!(parsed, op, "{json}");
        }
    }

    #[test]
    fn sym_packet_roundtrips() {
        let mut p = SymPacket::fresh();
        p.set(
            nf_packet::Field::IpDst,
            SymVal::MapGet("nat".into(), Box::new(SymVal::Var("pkt.ip.src".into()))),
        );
        let json = p.to_json().render();
        let parsed = SymPacket::from_json(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            r#"{"t": "wat"}"#,
            r#"{"t": "bin", "op": "**", "a": {"t":"int","v":1}, "b": {"t":"int","v":2}}"#,
            r#"{"t": "int"}"#,
            r#"{"t": "proj", "base": {"t":"int","v":1}, "field": -1}"#,
            r#"[1,2]"#,
        ] {
            let v = Value::parse(bad).unwrap();
            assert!(SymVal::from_json(&v).is_err(), "{bad}");
        }
    }
}
