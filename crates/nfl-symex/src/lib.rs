//! Symbolic execution over NFL — the reproduction's KLEE.
//!
//! NFactor (Algorithm 1, line 10) finds "all possible execution paths in
//! the union of both slices" by symbolic execution, then refactors each
//! path into a model entry (lines 11–16). This crate supplies that
//! engine:
//!
//! * [`sym`] — the symbolic value language: packet fields and
//!   configuration/state scalars are free variables; map reads are
//!   uninterpreted `MapGet` terms; `hash` is uninterpreted; array reads
//!   with symbolic indices stay symbolic (`server[idx]` in Figure 6 is
//!   exactly such a term).
//! * [`solver`] — an SMT-lite decision procedure for the constraint
//!   fragment NF slices produce: interval narrowing per variable,
//!   disequality holes, bitmask facts (`tcp.flags & SYN`), equalities via
//!   union-find, and modular-range reasoning for `hash(x) % N` — with
//!   model generation for BUZZ-style test-packet synthesis.
//! * [`engine`] — fork-on-branch path exploration with bounded loops
//!   (§3.2: *"NF programs typically will not contain input-dependent
//!   loops"*), symbolic map membership forking (`k in nat` is the
//!   new-vs-existing-connection fork of Figure 1), and per-path
//!   collection of outputs, state updates and branch decisions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod json;
pub mod solver;
pub mod sym;

pub use engine::{ExplorationStats, Path, PathLimits, SymExec};
pub use solver::{Solver, Verdict};
pub use sym::{MapOp, SymPacket, SymVal};
