//! The SMT-lite constraint solver.
//!
//! The paper constrains the constraint language on purpose (§3.2: bounded
//! loops, few symbolic variables, techniques from Dobrescu/SymNet/BUZZ to
//! keep the branching space small). The path conditions NF slices produce
//! fall into a narrow fragment:
//!
//! * comparisons of a header/state variable (possibly plus a constant)
//!   against constants — `dp == 80`, `ttl < 1`,
//! * variable–variable equalities — `sp == dp`,
//! * bitmask tests — `flags & SYN != 0`,
//! * modular residues of uninterpreted terms — `hash(si) % N == i`,
//! * map-membership literals (kept consistent by the engine, re-checked
//!   here).
//!
//! The solver decides that fragment exactly (interval narrowing + holes +
//! union-find equalities + residue and bitmask facts) and answers
//! [`Verdict::Unknown`] on anything outside it — the engine treats
//! Unknown as satisfiable, which can only add spurious paths, never lose
//! real ones. [`Solver::model`] produces witness assignments used for
//! BUZZ-style test-packet generation (§4 Testing).

use crate::sym::SymVal;
use nfl_lang::BinOp;
use std::collections::{BTreeMap, HashMap};

/// Solver answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Definitely satisfiable within the understood fragment.
    Sat,
    /// Definitely unsatisfiable.
    Unsat,
    /// Outside the understood fragment; treated as possibly-sat.
    Unknown,
}

/// Per-variable knowledge accumulated from constraints.
#[derive(Debug, Clone)]
struct VarFacts {
    lo: i64,
    hi: i64,
    holes: Vec<i64>,
    /// `(modulus, residue)` equalities on this var.
    residues_eq: Vec<(i64, i64)>,
    /// `(modulus, residue)` disequalities.
    residues_ne: Vec<(i64, i64)>,
    /// Bits that must be zero.
    must_zero: i64,
    /// Masks that must contain at least one set bit.
    need_one: Vec<i64>,
    /// Exact masked-value requirements: `(mask, value)` with
    /// `v & mask == value`.
    bits_eq: Vec<(i64, i64)>,
    /// Masked-value exclusions: `v & mask != value`.
    bits_ne: Vec<(i64, i64)>,
    /// Values worth trying first during model generation.
    candidates: Vec<i64>,
}

impl Default for VarFacts {
    fn default() -> Self {
        VarFacts {
            lo: i64::MIN / 4,
            hi: i64::MAX / 4,
            holes: Vec::new(),
            residues_eq: Vec::new(),
            residues_ne: Vec::new(),
            must_zero: 0,
            need_one: Vec::new(),
            bits_eq: Vec::new(),
            bits_ne: Vec::new(),
            candidates: Vec::new(),
        }
    }
}

/// A normalised comparison side.
#[derive(Debug, Clone, PartialEq)]
enum Term {
    Const(i64),
    /// `var + offset`
    Affine(String, i64),
    /// `base % modulus` where base is a variable (possibly opaque).
    Mod(String, i64),
    /// `base & mask`.
    Bits(String, i64),
    Opaque,
}

/// The solver. Stateless; each call analyses one conjunction.
#[derive(Debug, Default, Clone, Copy)]
pub struct Solver;

impl Solver {
    /// Decide satisfiability of the conjunction of `constraints` (each a
    /// boolean [`SymVal`] asserted true).
    pub fn check(&self, constraints: &[SymVal]) -> Verdict {
        let mut st = State::default();
        let mut all_understood = true;
        for c in constraints {
            match st.assert_true(c) {
                Ok(understood) => all_understood &= understood,
                Err(()) => return Verdict::Unsat,
            }
        }
        if st.consistent() {
            if all_understood {
                Verdict::Sat
            } else {
                Verdict::Unknown
            }
        } else {
            Verdict::Unsat
        }
    }

    /// Produce a witness assignment for the free variables, using
    /// `domain` to bound each variable (e.g. packet-field widths).
    /// Returns `None` when the constraints are unsatisfiable. Variables
    /// in unrecognised constraints get best-effort values.
    pub fn model(
        &self,
        constraints: &[SymVal],
        domain: impl Fn(&str) -> (i64, i64),
    ) -> Option<HashMap<String, i64>> {
        let mut st = State::default();
        for c in constraints {
            if st.assert_true(c).is_err() {
                return None;
            }
        }
        if !st.consistent() {
            return None;
        }
        let mut model = HashMap::new();
        // Union-find roots get values first, members copy.
        let vars: Vec<String> = st.facts.keys().cloned().collect();
        for v in &vars {
            let root = st.find(v);
            if let std::collections::hash_map::Entry::Vacant(e) = model.entry(root.clone()) {
                let merged = st.merged_facts(&root);
                let (dlo, dhi) = domain(v);
                let val = pick_value(&merged, dlo, dhi)?;
                e.insert(val);
            }
        }
        for v in vars {
            let root = st.find(&v);
            let val = *model.get(&root).expect("root assigned");
            model.insert(v, val);
        }
        // Check pairwise disequalities.
        let diseq = st.diseq.clone();
        for (a, b) in &diseq {
            let va = model.get(&st.find(a)).copied();
            let vb = model.get(&st.find(b)).copied();
            if let (Some(x), Some(y)) = (va, vb) {
                if x == y {
                    // Nudge one side if its interval allows.
                    let root = st.find(b);
                    let mut f2 = st.merged_facts(&root);
                    f2.holes.push(x);
                    let (dlo, dhi) = domain(b);
                    let newv = pick_value(&f2, dlo, dhi)?;
                    model.insert(root.clone(), newv);
                    let members: Vec<String> = st.facts.keys().cloned().collect();
                    for v in members {
                        if st.find_ref(&v) == root {
                            model.insert(v, newv);
                        }
                    }
                }
            }
        }
        Some(model)
    }
}

#[derive(Debug, Default)]
struct State {
    facts: BTreeMap<String, VarFacts>,
    parent: HashMap<String, String>,
    diseq: Vec<(String, String)>,
    /// Map-membership literals: (map, key rendering) → polarity.
    map_facts: HashMap<(String, String), bool>,
    conflict: bool,
}

impl State {
    fn find(&mut self, v: &str) -> String {
        let p = match self.parent.get(v) {
            Some(p) if p != v => p.clone(),
            _ => return v.to_string(),
        };
        let root = self.find(&p);
        self.parent.insert(v.to_string(), root.clone());
        root
    }

    fn find_ref(&self, v: &str) -> String {
        let mut cur = v.to_string();
        while let Some(p) = self.parent.get(&cur) {
            if *p == cur {
                break;
            }
            cur = p.clone();
        }
        cur
    }

    fn union(&mut self, a: &str, b: &str) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    fn fact(&mut self, v: &str) -> &mut VarFacts {
        self.facts.entry(v.to_string()).or_default()
    }

    fn merged_facts(&self, root: &str) -> VarFacts {
        let mut out = VarFacts::default();
        for (v, f) in &self.facts {
            if self.find_ref(v) == root {
                out.lo = out.lo.max(f.lo);
                out.hi = out.hi.min(f.hi);
                out.holes.extend(f.holes.iter().copied());
                out.residues_eq.extend(f.residues_eq.iter().copied());
                out.residues_ne.extend(f.residues_ne.iter().copied());
                out.must_zero |= f.must_zero;
                out.need_one.extend(f.need_one.iter().copied());
                out.bits_eq.extend(f.bits_eq.iter().copied());
                out.bits_ne.extend(f.bits_ne.iter().copied());
                out.candidates.extend(f.candidates.iter().copied());
            }
        }
        out
    }

    /// Returns Ok(understood?) or Err(()) on definite conflict.
    fn assert_true(&mut self, c: &SymVal) -> Result<bool, ()> {
        match c {
            SymVal::Bool(true) => Ok(true),
            SymVal::Bool(false) => Err(()),
            SymVal::Bin(BinOp::And, a, b) => {
                let ua = self.assert_true(a)?;
                let ub = self.assert_true(b)?;
                Ok(ua && ub)
            }
            SymVal::Not(inner) => match &**inner {
                SymVal::MapContains(m, k) => {
                    self.map_fact(m, k, false)?;
                    Ok(true)
                }
                // General negation: try the inverted comparison.
                other => {
                    let inv = SymVal::negate(other.clone());
                    if matches!(inv, SymVal::Not(_)) {
                        Ok(false) // cannot invert further; unknown
                    } else {
                        self.assert_true(&inv)
                    }
                }
            },
            SymVal::MapContains(m, k) => {
                self.map_fact(m, k, true)?;
                Ok(true)
            }
            SymVal::Bin(op, a, b) if is_cmp(*op) => self.assert_cmp(*op, a, b),
            SymVal::Var(v) => {
                // A bare boolean variable: constrain to 1.
                let f = self.fact(v);
                f.lo = f.lo.max(1);
                f.hi = f.hi.min(1);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn map_fact(&mut self, map: &str, key: &SymVal, polarity: bool) -> Result<(), ()> {
        let k = (map.to_string(), key.to_string());
        if let Some(prev) = self.map_facts.insert(k, polarity) {
            if prev != polarity {
                return Err(());
            }
        }
        Ok(())
    }

    fn assert_cmp(&mut self, op: BinOp, a: &SymVal, b: &SymVal) -> Result<bool, ()> {
        let ta = normalise(a);
        let tb = normalise(b);
        use BinOp::*;
        match (&ta, &tb) {
            (Term::Const(x), Term::Const(y)) => {
                let holds = match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    _ => return Ok(false),
                };
                if holds {
                    Ok(true)
                } else {
                    Err(())
                }
            }
            (Term::Affine(v, off), Term::Const(c)) => self.affine_cmp(op, v, *off, *c),
            (Term::Const(c), Term::Affine(v, off)) => self.affine_cmp(flip(op), v, *off, *c),
            (Term::Mod(v, m), Term::Const(c)) => self.mod_cmp(op, v, *m, *c),
            (Term::Const(c), Term::Mod(v, m)) => self.mod_cmp(flip(op), v, *m, *c),
            (Term::Bits(v, mask), Term::Const(c)) => self.bits_cmp(op, v, *mask, *c),
            (Term::Const(c), Term::Bits(v, mask)) => self.bits_cmp(flip(op), v, *mask, *c),
            (Term::Affine(va, oa), Term::Affine(vb, ob)) => {
                if oa == ob {
                    match op {
                        Eq => {
                            self.union(va, vb);
                            self.fact(va);
                            self.fact(vb);
                            Ok(true)
                        }
                        Ne => {
                            self.fact(va);
                            self.fact(vb);
                            self.diseq.push((va.clone(), vb.clone()));
                            Ok(true)
                        }
                        _ => Ok(false),
                    }
                } else {
                    Ok(false)
                }
            }
            _ => Ok(false),
        }
    }

    fn affine_cmp(&mut self, op: BinOp, v: &str, off: i64, c: i64) -> Result<bool, ()> {
        // var + off  op  c   ⇔   var  op  c - off
        let c = c - off;
        let f = self.fact(v);
        use BinOp::*;
        match op {
            Eq => {
                f.lo = f.lo.max(c);
                f.hi = f.hi.min(c);
            }
            Ne => f.holes.push(c),
            Lt => f.hi = f.hi.min(c - 1),
            Le => f.hi = f.hi.min(c),
            Gt => f.lo = f.lo.max(c + 1),
            Ge => f.lo = f.lo.max(c),
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn mod_cmp(&mut self, op: BinOp, v: &str, m: i64, c: i64) -> Result<bool, ()> {
        if m <= 0 {
            return Ok(false);
        }
        let f = self.fact(v);
        use BinOp::*;
        match op {
            Eq => {
                if !(0..m).contains(&c) {
                    return Err(());
                }
                f.residues_eq.push((m, c));
                Ok(true)
            }
            Ne => {
                f.residues_ne.push((m, c));
                Ok(true)
            }
            // base % m < c etc.: satisfiable iff some residue in range.
            Lt => {
                if c <= 0 {
                    Err(())
                } else {
                    Ok(true)
                }
            }
            Le => {
                if c < 0 {
                    Err(())
                } else {
                    Ok(true)
                }
            }
            Gt => {
                if c >= m - 1 {
                    Err(())
                } else {
                    Ok(true)
                }
            }
            Ge => {
                if c >= m {
                    Err(())
                } else {
                    Ok(true)
                }
            }
            _ => Ok(false),
        }
    }

    fn bits_cmp(&mut self, op: BinOp, v: &str, mask: i64, c: i64) -> Result<bool, ()> {
        let f = self.fact(v);
        use BinOp::*;
        match (op, c) {
            (Eq, 0) => {
                f.must_zero |= mask;
                Ok(true)
            }
            (Ne, 0) | (Gt, 0) => {
                f.need_one.push(mask);
                Ok(true)
            }
            (Eq, c) if c != 0 => {
                // (v & mask) == c : bits of c must be inside mask.
                if c & !mask != 0 {
                    return Err(());
                }
                f.bits_eq.push((mask, c));
                f.candidates.push(c);
                Ok(true)
            }
            (Ne, c) if c != 0 => {
                f.bits_ne.push((mask, c));
                // Values whose masked bits are zero avoid c (c != 0).
                f.candidates.push(0);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn consistent(&self) -> bool {
        if self.conflict {
            return false;
        }
        // Evaluate merged facts per union-find class.
        let mut roots: Vec<String> = Vec::new();
        for v in self.facts.keys() {
            let r = self.find_ref(v);
            if !roots.contains(&r) {
                roots.push(r);
            }
        }
        for r in roots {
            let f = self.merged_facts(&r);
            if facts_empty(&f) {
                return false;
            }
        }
        true
    }
}

fn facts_empty(f: &VarFacts) -> bool {
    if f.lo > f.hi {
        return true;
    }
    // Residue conflicts: two different required residues mod the same m.
    for (i, (m1, r1)) in f.residues_eq.iter().enumerate() {
        for (m2, r2) in &f.residues_eq[i + 1..] {
            if m1 == m2 && r1 != r2 {
                return true;
            }
        }
        if f.residues_ne.iter().any(|(m, r)| m == m1 && r == r1) {
            return true;
        }
    }
    // Bit conflicts: a needed mask entirely forced to zero.
    for need in &f.need_one {
        if need & !f.must_zero == 0 {
            return true;
        }
    }
    // Exact-mask conflicts: same mask, different required values; or a
    // required value intersecting must_zero; or eq contradicting ne.
    for (i, (m1, v1)) in f.bits_eq.iter().enumerate() {
        if v1 & f.must_zero != 0 {
            return true;
        }
        for (m2, v2) in &f.bits_eq[i + 1..] {
            if m1 == m2 && v1 != v2 {
                return true;
            }
        }
        if f.bits_ne.iter().any(|(m, v)| m == m1 && v == v1) {
            return true;
        }
    }
    // Point interval swallowed by a hole.
    if f.lo == f.hi && f.holes.contains(&f.lo) {
        return true;
    }
    // Small interval fully covered by holes.
    if f.hi.saturating_sub(f.lo) < 1024 {
        let count = (f.lo..=f.hi).filter(|v| !f.holes.contains(v)).count();
        if count == 0 {
            return true;
        }
    }
    false
}

fn pick_value(f: &VarFacts, dlo: i64, dhi: i64) -> Option<i64> {
    let lo = f.lo.max(dlo);
    let hi = f.hi.min(dhi);
    if lo > hi {
        return None;
    }
    let residue_ok = |v: i64| {
        f.residues_eq.iter().all(|(m, r)| v.rem_euclid(*m) == *r)
            && f.residues_ne.iter().all(|(m, r)| v.rem_euclid(*m) != *r)
    };
    let bits_ok = |v: i64| {
        v & f.must_zero == 0
            && f.need_one.iter().all(|mask| v & mask != 0)
            && f.bits_eq.iter().all(|(m, c)| v & m == *c)
            && f.bits_ne.iter().all(|(m, c)| v & m != *c)
    };
    // Constraint-suggested candidates first (exact masked values are
    // unreachable by linear scanning over 32-bit domains).
    for &v in &f.candidates {
        if v >= lo && v <= hi && !f.holes.contains(&v) && residue_ok(v) && bits_ok(v) {
            return Some(v);
        }
    }
    // Scan a window from lo; NF constants are small so this terminates
    // fast in practice.
    let window = 65_536.min(hi.saturating_sub(lo).saturating_add(1));
    for v in lo..lo + window {
        if v > hi {
            break;
        }
        if !f.holes.contains(&v) && residue_ok(v) && bits_ok(v) {
            return Some(v);
        }
    }
    // Try hi downwards briefly (for upper-bounded picks).
    (hi - window.clamp(0, 1024)..=hi)
        .rev()
        .find(|&v| v >= lo && !f.holes.contains(&v) && residue_ok(v) && bits_ok(v))
}

fn is_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    )
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Normalise a symbolic term into the solver fragment. Opaque terms
/// (hash, map reads, projections, symbolic array reads) become synthetic
/// variables named by their canonical rendering, so repeated occurrences
/// of the same term correlate.
fn normalise(v: &SymVal) -> Term {
    match v {
        SymVal::Int(c) => Term::Const(*c),
        SymVal::Bool(b) => Term::Const(i64::from(*b)),
        SymVal::Var(name) => Term::Affine(name.clone(), 0),
        SymVal::Bin(BinOp::Add, a, b) => match (normalise(a), normalise(b)) {
            (Term::Affine(v, o), Term::Const(c)) | (Term::Const(c), Term::Affine(v, o)) => {
                Term::Affine(v, o + c)
            }
            _ => opaque(v),
        },
        SymVal::Bin(BinOp::Sub, a, b) => match (normalise(a), normalise(b)) {
            (Term::Affine(va, o), Term::Const(c)) => Term::Affine(va, o - c),
            _ => opaque(v),
        },
        SymVal::Bin(BinOp::Mod, a, b) => match (&**a, normalise(b)) {
            (_, Term::Const(m)) if m > 0 => {
                let base = base_var_name(a);
                Term::Mod(base, m)
            }
            _ => opaque(v),
        },
        SymVal::Bin(BinOp::BitAnd, a, b) => match (normalise(a), normalise(b)) {
            (Term::Affine(va, 0), Term::Const(mask)) => Term::Bits(va, mask),
            (Term::Const(mask), Term::Affine(va, 0)) => Term::Bits(va, mask),
            _ => opaque(v),
        },
        SymVal::Hash(_) | SymVal::MapGet(..) | SymVal::Proj(..) | SymVal::ArrayGet(..) => {
            Term::Affine(format!("opaque:{v}"), 0)
        }
        _ => Term::Opaque,
    }
}

fn base_var_name(v: &SymVal) -> String {
    match v {
        SymVal::Var(name) => name.clone(),
        other => format!("opaque:{other}"),
    }
}

fn opaque(_v: &SymVal) -> Term {
    Term::Opaque
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: &str) -> SymVal {
        SymVal::Var(n.into())
    }
    fn eq(a: SymVal, b: SymVal) -> SymVal {
        SymVal::Bin(BinOp::Eq, Box::new(a), Box::new(b))
    }
    fn ne(a: SymVal, b: SymVal) -> SymVal {
        SymVal::Bin(BinOp::Ne, Box::new(a), Box::new(b))
    }
    fn lt(a: SymVal, b: SymVal) -> SymVal {
        SymVal::Bin(BinOp::Lt, Box::new(a), Box::new(b))
    }
    fn gt(a: SymVal, b: SymVal) -> SymVal {
        SymVal::Bin(BinOp::Gt, Box::new(a), Box::new(b))
    }

    #[test]
    fn simple_sat_unsat() {
        let s = Solver;
        assert_eq!(
            s.check(&[eq(var("x"), SymVal::Int(5))]),
            Verdict::Sat
        );
        assert_eq!(
            s.check(&[
                eq(var("x"), SymVal::Int(5)),
                eq(var("x"), SymVal::Int(6))
            ]),
            Verdict::Unsat
        );
        assert_eq!(
            s.check(&[
                eq(var("x"), SymVal::Int(5)),
                ne(var("x"), SymVal::Int(5))
            ]),
            Verdict::Unsat
        );
    }

    #[test]
    fn interval_narrowing() {
        let s = Solver;
        assert_eq!(
            s.check(&[
                gt(var("x"), SymVal::Int(10)),
                lt(var("x"), SymVal::Int(12))
            ]),
            Verdict::Sat // x = 11
        );
        assert_eq!(
            s.check(&[
                gt(var("x"), SymVal::Int(10)),
                lt(var("x"), SymVal::Int(11))
            ]),
            Verdict::Unsat
        );
    }

    #[test]
    fn affine_offsets() {
        let s = Solver;
        // x + 1 == 5  ∧  x == 4 : sat
        let x_plus = SymVal::Bin(
            BinOp::Add,
            Box::new(var("x")),
            Box::new(SymVal::Int(1)),
        );
        assert_eq!(
            s.check(&[
                eq(x_plus.clone(), SymVal::Int(5)),
                eq(var("x"), SymVal::Int(4))
            ]),
            Verdict::Sat
        );
        assert_eq!(
            s.check(&[eq(x_plus, SymVal::Int(5)), eq(var("x"), SymVal::Int(9))]),
            Verdict::Unsat
        );
    }

    #[test]
    fn var_var_equality_propagates() {
        let s = Solver;
        assert_eq!(
            s.check(&[
                eq(var("a"), var("b")),
                eq(var("a"), SymVal::Int(1)),
                eq(var("b"), SymVal::Int(2)),
            ]),
            Verdict::Unsat
        );
        assert_eq!(
            s.check(&[
                eq(var("a"), var("b")),
                eq(var("a"), SymVal::Int(1)),
                eq(var("b"), SymVal::Int(1)),
            ]),
            Verdict::Sat
        );
    }

    #[test]
    fn hash_mod_residues() {
        let s = Solver;
        let h = SymVal::Bin(
            BinOp::Mod,
            Box::new(SymVal::Hash(Box::new(var("pkt.ip.src")))),
            Box::new(SymVal::Int(2)),
        );
        // hash % 2 == 0 is satisfiable; == 5 is not (5 ∉ [0,2)).
        assert_eq!(s.check(&[eq(h.clone(), SymVal::Int(0))]), Verdict::Sat);
        assert_eq!(s.check(&[eq(h.clone(), SymVal::Int(5))]), Verdict::Unsat);
        // Conflicting residues for the same opaque base.
        assert_eq!(
            s.check(&[
                eq(h.clone(), SymVal::Int(0)),
                eq(h.clone(), SymVal::Int(1))
            ]),
            Verdict::Unsat
        );
        // Residue eq + matching ne conflicts.
        assert_eq!(
            s.check(&[eq(h.clone(), SymVal::Int(0)), ne(h, SymVal::Int(0))]),
            Verdict::Unsat
        );
    }

    #[test]
    fn bitmask_facts() {
        let s = Solver;
        let syn = SymVal::Bin(
            BinOp::BitAnd,
            Box::new(var("pkt.tcp.flags")),
            Box::new(SymVal::Int(0x02)),
        );
        assert_eq!(s.check(&[ne(syn.clone(), SymVal::Int(0))]), Verdict::Sat);
        assert_eq!(
            s.check(&[
                ne(syn.clone(), SymVal::Int(0)),
                eq(syn, SymVal::Int(0))
            ]),
            Verdict::Unsat
        );
    }

    #[test]
    fn map_fact_consistency() {
        let s = Solver;
        let k = SymVal::Tuple(vec![var("pkt.ip.src"), var("pkt.tcp.sport")]);
        let c = SymVal::MapContains("nat".into(), Box::new(k.clone()));
        assert_eq!(s.check(std::slice::from_ref(&c)), Verdict::Sat);
        assert_eq!(
            s.check(&[c.clone(), SymVal::Not(Box::new(c))]),
            Verdict::Unsat
        );
    }

    #[test]
    fn unknown_on_exotic() {
        let s = Solver;
        // x * y == 42 is outside the fragment.
        let c = eq(
            SymVal::Bin(BinOp::Mul, Box::new(var("x")), Box::new(var("y"))),
            SymVal::Int(42),
        );
        assert_eq!(s.check(&[c]), Verdict::Unknown);
    }

    #[test]
    fn model_generation_satisfies() {
        let s = Solver;
        let cs = vec![
            gt(var("x"), SymVal::Int(100)),
            lt(var("x"), SymVal::Int(110)),
            ne(var("x"), SymVal::Int(101)),
            eq(var("y"), var("x")),
        ];
        let m = s.model(&cs, |_| (0, 65535)).unwrap();
        let x = m["x"];
        assert!(x > 100 && x < 110 && x != 101);
        assert_eq!(m["y"], x);
    }

    #[test]
    fn model_respects_domain() {
        let s = Solver;
        let m = s
            .model(&[gt(var("pkt.tcp.dport"), SymVal::Int(70000))], |_| {
                (0, 65535)
            });
        assert!(m.is_none(), "port cannot exceed its domain");
    }

    #[test]
    fn model_with_bits() {
        let s = Solver;
        let syn = SymVal::Bin(
            BinOp::BitAnd,
            Box::new(var("f")),
            Box::new(SymVal::Int(0x02)),
        );
        let m = s.model(&[ne(syn, SymVal::Int(0))], |_| (0, 63)).unwrap();
        assert!(m["f"] & 0x02 != 0);
    }

    #[test]
    fn model_with_diseq_nudges() {
        let s = Solver;
        let cs = vec![
            eq(var("a"), SymVal::Int(5)),
            ne(var("a"), var("b")),
            gt(var("b"), SymVal::Int(4)),
            lt(var("b"), SymVal::Int(7)),
        ];
        let m = s.model(&cs, |_| (0, 100)).unwrap();
        assert_ne!(m["a"], m["b"]);
        assert_eq!(m["a"], 5);
        assert_eq!(m["b"], 6);
    }

    #[test]
    fn residue_model() {
        let s = Solver;
        let h = SymVal::Bin(
            BinOp::Mod,
            Box::new(SymVal::Hash(Box::new(var("src")))),
            Box::new(SymVal::Int(3)),
        );
        let m = s.model(&[eq(h, SymVal::Int(2))], |_| (0, 1 << 30)).unwrap();
        let opaque_key = m
            .keys()
            .find(|k| k.starts_with("opaque:"))
            .expect("opaque var assigned");
        assert_eq!(m[opaque_key].rem_euclid(3), 2);
    }
}
