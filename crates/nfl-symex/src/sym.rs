//! The symbolic value language.
//!
//! A [`SymVal`] is either concrete or a term over free variables:
//! packet fields (`pkt.tcp.dport`), scalar configs (`cfg:mode`), scalar
//! states (`st:rr_idx`), uninterpreted `hash(…)`, map reads
//! (`nat[⟨k⟩]`), and array reads with symbolic index
//! (`servers[st:rr_idx]` — the `server[idx]` of Figure 6). Constructors
//! constant-fold so concrete programs stay concrete.

use nfl_lang::BinOp;
use std::collections::BTreeMap;
use std::fmt;

/// A symbolic value / term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SymVal {
    /// Concrete integer.
    Int(i64),
    /// Concrete boolean.
    Bool(bool),
    /// Concrete string.
    Str(String),
    /// A free integer variable (packet field, config, or state scalar).
    Var(String),
    /// Tuple of terms.
    Tuple(Vec<SymVal>),
    /// Array of terms (concrete length).
    Array(Vec<SymVal>),
    /// Binary operation.
    Bin(BinOp, Box<SymVal>, Box<SymVal>),
    /// Logical negation.
    Not(Box<SymVal>),
    /// Arithmetic negation.
    Neg(Box<SymVal>),
    /// Uninterpreted hash.
    Hash(Box<SymVal>),
    /// Minimum of two integer terms.
    Min(Box<SymVal>, Box<SymVal>),
    /// Maximum of two integer terms.
    Max(Box<SymVal>, Box<SymVal>),
    /// Read of state map `name` at a (possibly symbolic) key.
    MapGet(String, Box<SymVal>),
    /// Membership test of state map `name` at a key — a boolean term.
    MapContains(String, Box<SymVal>),
    /// Array read with symbolic index (base is a concrete-length array).
    ArrayGet(Box<SymVal>, Box<SymVal>),
    /// Tuple projection from a symbolic tuple-valued term.
    Proj(Box<SymVal>, usize),
}

impl SymVal {
    /// Is this a concrete (fully evaluated) value?
    pub fn is_concrete(&self) -> bool {
        match self {
            SymVal::Int(_) | SymVal::Bool(_) | SymVal::Str(_) => true,
            SymVal::Tuple(es) | SymVal::Array(es) => es.iter().all(|e| e.is_concrete()),
            _ => false,
        }
    }

    /// The concrete boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            SymVal::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The concrete integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            SymVal::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Smart constructor: binary op with constant folding and light
    /// algebraic simplification.
    pub fn bin(op: BinOp, a: SymVal, b: SymVal) -> SymVal {
        use BinOp::*;
        if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
            return match op {
                Add => SymVal::Int(x.wrapping_add(y)),
                Sub => SymVal::Int(x.wrapping_sub(y)),
                Mul => SymVal::Int(x.wrapping_mul(y)),
                Div if y != 0 => SymVal::Int(x.wrapping_div(y)),
                Mod if y != 0 => SymVal::Int(x.rem_euclid(y)),
                BitAnd => SymVal::Int(x & y),
                BitOr => SymVal::Int(x | y),
                Eq => SymVal::Bool(x == y),
                Ne => SymVal::Bool(x != y),
                Lt => SymVal::Bool(x < y),
                Le => SymVal::Bool(x <= y),
                Gt => SymVal::Bool(x > y),
                Ge => SymVal::Bool(x >= y),
                _ => SymVal::Bin(op, Box::new(a), Box::new(b)),
            };
        }
        if let (Some(x), Some(y)) = (a.as_bool(), b.as_bool()) {
            return match op {
                And => SymVal::Bool(x && y),
                Or => SymVal::Bool(x || y),
                Eq => SymVal::Bool(x == y),
                Ne => SymVal::Bool(x != y),
                _ => SymVal::Bin(op, Box::new(a), Box::new(b)),
            };
        }
        // Equality of identical terms.
        if matches!(op, Eq) && a == b {
            return SymVal::Bool(true);
        }
        if matches!(op, Ne) && a == b {
            return SymVal::Bool(false);
        }
        // Tuple equality decomposes structurally when arities match.
        if let (SymVal::Tuple(xs), SymVal::Tuple(ys)) = (&a, &b) {
            if xs.len() == ys.len() && matches!(op, Eq) {
                let mut acc = SymVal::Bool(true);
                for (x, y) in xs.iter().zip(ys) {
                    acc = SymVal::and(acc, SymVal::bin(Eq, x.clone(), y.clone()));
                }
                return acc;
            }
        }
        // Boolean identities.
        match (op, &a, &b) {
            (And, SymVal::Bool(true), _) => return b,
            (And, _, SymVal::Bool(true)) => return a,
            (And, SymVal::Bool(false), _) | (And, _, SymVal::Bool(false)) => {
                return SymVal::Bool(false)
            }
            (Or, SymVal::Bool(false), _) => return b,
            (Or, _, SymVal::Bool(false)) => return a,
            (Or, SymVal::Bool(true), _) | (Or, _, SymVal::Bool(true)) => {
                return SymVal::Bool(true)
            }
            (Add, SymVal::Int(0), _) => return b,
            (Add, _, SymVal::Int(0)) => return a,
            (Mul, SymVal::Int(1), _) => return b,
            (Mul, _, SymVal::Int(1)) => return a,
            _ => {}
        }
        SymVal::Bin(op, Box::new(a), Box::new(b))
    }

    /// Logical conjunction with folding.
    pub fn and(a: SymVal, b: SymVal) -> SymVal {
        SymVal::bin(BinOp::And, a, b)
    }

    /// Logical negation with folding (double negation, concrete bools,
    /// comparison inversion).
    pub fn negate(v: SymVal) -> SymVal {
        use BinOp::*;
        match v {
            SymVal::Bool(b) => SymVal::Bool(!b),
            SymVal::Not(inner) => *inner,
            SymVal::Bin(Eq, a, b) => SymVal::Bin(Ne, a, b),
            SymVal::Bin(Ne, a, b) => SymVal::Bin(Eq, a, b),
            SymVal::Bin(Lt, a, b) => SymVal::Bin(Ge, a, b),
            SymVal::Bin(Ge, a, b) => SymVal::Bin(Lt, a, b),
            SymVal::Bin(Gt, a, b) => SymVal::Bin(Le, a, b),
            SymVal::Bin(Le, a, b) => SymVal::Bin(Gt, a, b),
            SymVal::MapContains(m, k) => SymVal::Not(Box::new(SymVal::MapContains(m, k))),
            other => SymVal::Not(Box::new(other)),
        }
    }

    /// Project element `i` from a tuple-valued term.
    pub fn proj(v: SymVal, i: usize) -> SymVal {
        match v {
            SymVal::Tuple(es) if i < es.len() => es[i].clone(),
            other => SymVal::Proj(Box::new(other), i),
        }
    }

    /// All free variable names in the term.
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            SymVal::Var(v) => out.push(v.clone()),
            SymVal::Tuple(es) | SymVal::Array(es) => {
                for e in es {
                    e.collect_vars(out);
                }
            }
            SymVal::Bin(_, a, b)
            | SymVal::ArrayGet(a, b)
            | SymVal::Min(a, b)
            | SymVal::Max(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            SymVal::Not(a) | SymVal::Neg(a) | SymVal::Hash(a) | SymVal::Proj(a, _) => {
                a.collect_vars(out)
            }
            SymVal::MapGet(_, k) | SymVal::MapContains(_, k) => k.collect_vars(out),
            _ => {}
        }
    }

    /// Does the term mention any variable with the given prefix
    /// (`"pkt."`, `"cfg:"`, `"st:"`) or any map operation?
    pub fn mentions_prefix(&self, prefix: &str) -> bool {
        self.free_vars().iter().any(|v| v.starts_with(prefix))
            || (prefix == "st:" && self.mentions_map())
    }

    /// Does the term contain a map read/membership (state-dependent)?
    pub fn mentions_map(&self) -> bool {
        match self {
            SymVal::MapGet(..) | SymVal::MapContains(..) => true,
            SymVal::Tuple(es) | SymVal::Array(es) => es.iter().any(|e| e.mentions_map()),
            SymVal::Bin(_, a, b)
            | SymVal::ArrayGet(a, b)
            | SymVal::Min(a, b)
            | SymVal::Max(a, b) => a.mentions_map() || b.mentions_map(),
            SymVal::Not(a) | SymVal::Neg(a) | SymVal::Hash(a) | SymVal::Proj(a, _) => {
                a.mentions_map()
            }
            _ => false,
        }
    }
}

impl fmt::Display for SymVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymVal::Int(v) => write!(f, "{v}"),
            SymVal::Bool(b) => write!(f, "{b}"),
            SymVal::Str(s) => write!(f, "{s:?}"),
            SymVal::Var(v) => write!(f, "{v}"),
            SymVal::Tuple(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            SymVal::Array(es) => {
                write!(f, "[")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            SymVal::Bin(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            SymVal::Not(a) => write!(f, "!({a})"),
            SymVal::Neg(a) => write!(f, "-({a})"),
            SymVal::Hash(a) => write!(f, "hash({a})"),
            SymVal::Min(a, b) => write!(f, "min({a}, {b})"),
            SymVal::Max(a, b) => write!(f, "max({a}, {b})"),
            SymVal::MapGet(m, k) => write!(f, "{m}[{k}]"),
            SymVal::MapContains(m, k) => write!(f, "({k} in {m})"),
            SymVal::ArrayGet(a, i) => write!(f, "{a}[{i}]"),
            SymVal::Proj(a, i) => write!(f, "{a}.{i}"),
        }
    }
}

/// A symbolic packet: every header field is a term. A fresh input packet
/// has `field → Var("pkt.<path>")`; rewrites replace entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymPacket {
    /// Field terms.
    pub fields: BTreeMap<nf_packet::Field, SymVal>,
}

impl SymPacket {
    /// A fully symbolic packet whose fields are free variables named
    /// after their paths.
    pub fn fresh() -> SymPacket {
        let mut fields = BTreeMap::new();
        for f in nf_packet::Field::ALL {
            fields.insert(f, SymVal::Var(format!("pkt.{}", f.path())));
        }
        SymPacket { fields }
    }

    /// Read a field term.
    pub fn get(&self, f: nf_packet::Field) -> SymVal {
        self.fields
            .get(&f)
            .cloned()
            .unwrap_or_else(|| SymVal::Var(format!("pkt.{}", f.path())))
    }

    /// Write a field term.
    pub fn set(&mut self, f: nf_packet::Field, v: SymVal) {
        self.fields.insert(f, v);
    }

    /// The fields whose terms differ from the fresh packet — the header
    /// rewrites this path performs (the model's flow action).
    pub fn rewrites(&self) -> Vec<(nf_packet::Field, SymVal)> {
        let fresh = SymPacket::fresh();
        self.fields
            .iter()
            .filter(|(f, v)| fresh.get(**f) != **v)
            .map(|(f, v)| (*f, v.clone()))
            .collect()
    }
}

impl Default for SymPacket {
    fn default() -> Self {
        SymPacket::fresh()
    }
}

/// A state-map mutation recorded along a path (the model's state
/// transition for dictionary state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapOp {
    /// `map[key] = value`.
    Insert {
        /// Map name.
        map: String,
        /// Key term.
        key: SymVal,
        /// Value term.
        value: SymVal,
    },
    /// `map_remove(map, key)`.
    Remove {
        /// Map name.
        map: String,
        /// Key term.
        key: SymVal,
    },
}

impl fmt::Display for MapOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapOp::Insert { map, key, value } => write!(f, "{map}[{key}] := {value}"),
            MapOp::Remove { map, key } => write!(f, "del {map}[{key}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf_packet::Field;

    #[test]
    fn constant_folding() {
        assert_eq!(
            SymVal::bin(BinOp::Add, SymVal::Int(2), SymVal::Int(3)),
            SymVal::Int(5)
        );
        assert_eq!(
            SymVal::bin(BinOp::Eq, SymVal::Int(2), SymVal::Int(3)),
            SymVal::Bool(false)
        );
        assert_eq!(
            SymVal::bin(BinOp::Mod, SymVal::Int(-1), SymVal::Int(5)),
            SymVal::Int(4),
            "euclidean mod like the interpreter"
        );
    }

    #[test]
    fn symbolic_stays_symbolic() {
        let v = SymVal::bin(BinOp::Add, SymVal::Var("x".into()), SymVal::Int(1));
        assert!(!v.is_concrete());
        assert_eq!(v.to_string(), "(x + 1)");
    }

    #[test]
    fn negate_inverts_comparisons() {
        let lt = SymVal::bin(BinOp::Lt, SymVal::Var("x".into()), SymVal::Int(5));
        let ge = SymVal::negate(lt);
        assert_eq!(ge.to_string(), "(x >= 5)");
        let back = SymVal::negate(SymVal::negate(SymVal::Var("b".into())));
        assert_eq!(back, SymVal::Var("b".into()));
    }

    #[test]
    fn identity_equality_folds() {
        let x = SymVal::Var("x".into());
        assert_eq!(
            SymVal::bin(BinOp::Eq, x.clone(), x.clone()),
            SymVal::Bool(true)
        );
        assert_eq!(SymVal::bin(BinOp::Ne, x.clone(), x), SymVal::Bool(false));
    }

    #[test]
    fn tuple_equality_decomposes() {
        let t1 = SymVal::Tuple(vec![SymVal::Var("a".into()), SymVal::Int(1)]);
        let t2 = SymVal::Tuple(vec![SymVal::Int(5), SymVal::Int(1)]);
        let eq = SymVal::bin(BinOp::Eq, t1, t2);
        // (a == 5) && true  →  (a == 5)
        assert_eq!(eq.to_string(), "(a == 5)");
    }

    #[test]
    fn boolean_identities() {
        let x = SymVal::Var("x".into());
        assert_eq!(SymVal::and(SymVal::Bool(true), x.clone()), x);
        assert_eq!(
            SymVal::and(SymVal::Bool(false), x.clone()),
            SymVal::Bool(false)
        );
    }

    #[test]
    fn fresh_packet_and_rewrites() {
        let mut p = SymPacket::fresh();
        assert!(p.rewrites().is_empty());
        p.set(Field::IpSrc, SymVal::Int(0x03030303));
        let rw = p.rewrites();
        assert_eq!(rw.len(), 1);
        assert_eq!(rw[0].0, Field::IpSrc);
    }

    #[test]
    fn free_vars_collects() {
        let v = SymVal::bin(
            BinOp::Add,
            SymVal::Var("st:rr_idx".into()),
            SymVal::MapGet(
                "nat".into(),
                Box::new(SymVal::Var("pkt.ip.src".into())),
            ),
        );
        assert_eq!(v.free_vars(), vec!["pkt.ip.src", "st:rr_idx"]);
        assert!(v.mentions_map());
        assert!(v.mentions_prefix("st:"));
        assert!(v.mentions_prefix("pkt."));
        assert!(!v.mentions_prefix("cfg:"));
    }

    #[test]
    fn proj_folds_on_tuples() {
        let t = SymVal::Tuple(vec![SymVal::Int(1), SymVal::Var("x".into())]);
        assert_eq!(SymVal::proj(t, 1), SymVal::Var("x".into()));
        let opaque = SymVal::MapGet("m".into(), Box::new(SymVal::Int(1)));
        assert_eq!(
            SymVal::proj(opaque.clone(), 0),
            SymVal::Proj(Box::new(opaque), 0)
        );
    }

    #[test]
    fn display_figure6_action_shape() {
        // send(f, server[idx]) — array get with symbolic state index.
        let term = SymVal::ArrayGet(
            Box::new(SymVal::Array(vec![
                SymVal::Tuple(vec![SymVal::Int(1), SymVal::Int(80)]),
                SymVal::Tuple(vec![SymVal::Int(2), SymVal::Int(80)]),
            ])),
            Box::new(SymVal::Var("st:rr_idx".into())),
        );
        assert!(term.to_string().contains("st:rr_idx"));
    }
}
