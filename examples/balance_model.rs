//! The paper's §5 headline: extract the model of *balance*, a socket-API
//! load balancer whose forwarding state hides inside the OS TCP stack.
//!
//! ```text
//! cargo run --example balance_model
//! ```
//!
//! Walks the §3.2 story end to end: detect the Figure 4d nested-loop
//! structure, unfold the socket calls into explicit TCP state (Figure 5),
//! run Algorithm 1, and print the Figure 6 table.

use nfactor::analysis::normalize::{detect_structure, Structure};
use nfactor::core::Pipeline;
use nfactor::corpus::balance;
use nfactor::tcp::unfold_sockets;

fn main() {
    // A small balance (5 bookkeeping blocks) so the intermediate programs
    // stay printable; the table2 bench uses the paper-scale variant.
    let src = balance::source(5);
    let program = nfactor::lang::parse_and_check(&src).expect("parse");

    println!("=== balance: socket-API LB with hidden TCP state ===\n");
    println!(
        "structure detected: {:?} (the paper's Figure 4d)",
        detect_structure(&program)
    );
    assert_eq!(detect_structure(&program), Structure::NestedLoop);

    // §3.2: unfold listen/accept/connect/select into packet-level
    // operations with an explicit TCP state map (Figure 5).
    let unfolded = unfold_sockets(&program).expect("unfold");
    println!(
        "after unfolding: {:?}, with explicit state maps: {:?}",
        detect_structure(&unfolded),
        unfolded
            .states
            .iter()
            .map(|s| s.name.as_str())
            .filter(|n| n.starts_with("__"))
            .collect::<Vec<_>>()
    );

    // The full pipeline does the unfolding automatically.
    let syn = Pipeline::builder()
        .name("balance")
        .build()
        .expect("pipeline")
        .synthesize(&src)
        .expect("synthesis");

    println!("\n--- Figure 6: NFactor output for balance ---");
    println!("{}", syn.render_model());

    println!("--- state machine view (§2.4, used by BUZZ-style testing) ---");
    let fsm = nfactor::model::ModelFsm::from_model(&syn.model);
    println!(
        "{} abstract states, {} transitions ({} state-mutating)",
        fsm.states.len(),
        fsm.transitions.len(),
        fsm.mutating_transitions().count()
    );
    for t in fsm.mutating_transitions() {
        println!("  [{}] --{}--> {}", t.from_state, if t.forwards { "fwd" } else { "drop" }, t.effect);
    }

    println!("\n--- Table 2 row for this balance ---");
    println!(
        "LoC orig = {}, slice = {}, path = {} | slicing {:?} | EP slice = {} | SE {:?}",
        syn.metrics.loc_orig,
        syn.metrics.loc_slice,
        syn.metrics.loc_path,
        syn.metrics.slicing_time,
        syn.metrics.ep_slice,
        syn.metrics.se_time_slice
    );
}
