//! §4 Testing: BUZZ-style model-guided compliance testing.
//!
//! ```text
//! cargo run --example compliance_test
//! ```
//!
//! Generates test packets from every entry of the synthesized NAT model
//! (solving the match conditions, with setup packets to establish
//! required state), replays them against the real NF, and checks the
//! observed behaviour matches the model — then demonstrates the point of
//! compliance testing by catching a deliberately broken firewall.

use nfactor::core::Pipeline;
use nfactor::verify::compliance_test;

fn synth(name: &str, src: &str) -> nfactor::core::Synthesis {
    Pipeline::builder()
        .name(name)
        .build()
        .expect("pipeline")
        .synthesize(src)
        .unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn main() {
    println!("=== Model-guided compliance testing (BUZZ style) ===\n");

    for (name, src) in [
        ("nat", nfactor::corpus::nat::source()),
        ("firewall", nfactor::corpus::firewall::source()),
        ("snort", nfactor::corpus::snort::source(8)),
    ] {
        let syn = synth(name, &src);
        let report = compliance_test(&syn).expect("compliance run");
        println!("{name}: {report}");
        for (i, t) in report.tests.iter().enumerate() {
            println!(
                "  test {i}: entry {:?}, {} setup pkt(s), probe {}, expect {}",
                t.target,
                t.setup.len(),
                t.probe,
                if t.expect_forward { "FORWARD" } else { "DROP" }
            );
        }
        assert!(report.compliant(), "{name} must comply with its own model");
    }

    // The negative control: a firewall whose allow-port was fat-fingered
    // from 80 to 81. Tests generated from the *intended* model catch it.
    println!("\n--- negative control: broken firewall vs. intended model ---");
    let intended = synth("fw", &nfactor::corpus::firewall::source());
    let broken_src = nfactor::corpus::firewall::source()
        .replace("if pkt.tcp.dport == ALLOW_PORT {", "if pkt.tcp.dport == 81 {");
    let broken = synth("fw-broken", &broken_src);

    // Replay the intended model's tests on the broken implementation.
    let report = compliance_test(&intended).expect("baseline");
    let mut caught = 0;
    for t in &report.tests {
        let mut interp = nfactor::interp::Interp::new(&broken.nf_loop).expect("interp");
        for s in &t.setup {
            interp.process(s).expect("setup");
        }
        let r = interp.process(&t.probe).expect("probe");
        if r.dropped == t.expect_forward {
            caught += 1;
            println!(
                "  VIOLATION: probe {} expected {} but observed {}",
                t.probe,
                if t.expect_forward { "FORWARD" } else { "DROP" },
                if !r.dropped { "FORWARD" } else { "DROP" }
            );
        }
    }
    assert!(caught > 0, "the broken allow-port must be detected");
    println!("→ {caught} violation(s) caught: the misconfiguration is detected.");
}
