//! §6 future work, §2.2 motivation: compare the synthesized model with a
//! hand-written one.
//!
//! ```text
//! cargo run --example model_comparison
//! ```
//!
//! The paper's §2.2: *"the variable 'mode' is used to configure how a
//! backend server is selected for a new flow, and it can be either round
//! robin or random hash. Some existing NF models fail to capture this
//! detail."* We build exactly such a mode-blind manual model
//! (Joseph–Stoica style) and let the behavioural diff expose the gap.

use nfactor::core::accuracy::initial_model_state;
use nfactor::core::Pipeline;
use nfactor::interp::{Interp, Value};
use nfactor::verify::{behavioural_diff, manual_lb_model};

fn main() {
    let syn = Pipeline::builder()
        .name("fig1-lb")
        .build()
        .expect("pipeline")
        .synthesize(&nfactor::corpus::fig1_lb::source())
        .expect("synthesis");
    let manual = manual_lb_model();
    let interp = Interp::new(&syn.nf_loop).expect("interp");
    let base_state = initial_model_state(&syn, &interp);

    println!("=== Synthesized vs. hand-written LB model ===\n");
    println!(
        "synthesized: {} tables ({} entries) — one per `mode` value",
        syn.model.tables.len(),
        syn.model.entry_count()
    );
    println!(
        "manual:      {} table  ({} entries) — mode-blind, assumes round robin\n",
        manual.tables.len(),
        manual.tables[0].entries.len()
    );

    // Under the configuration the manual author assumed: equivalent.
    let rr = behavioural_diff(&syn.model, &base_state, &manual, &base_state, 5, 500)
        .expect("diff");
    println!("mode = ROUND_ROBIN: {rr}");
    assert!(rr.equivalent());

    // Flip the knob the manual model doesn't know exists.
    let mut hash_state = base_state.clone();
    hash_state.configs.insert("mode".into(), Value::Int(0));
    let hash = behavioural_diff(&syn.model, &hash_state, &manual, &hash_state, 5, 500)
        .expect("diff");
    println!("mode = HASH:        {hash}");
    assert!(
        !hash.equivalent(),
        "the mode-blind model must diverge under hash mode"
    );
    println!(
        "→ the hand model forwards to the round-robin backend while the real NF \
         hashes — the §2.2 detail, caught automatically."
    );
}
