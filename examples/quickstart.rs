//! Quickstart: the whole NFactor pipeline on the paper's Figure 1 load
//! balancer.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Prints, in order: the Table 1 variable classification, the Figure 1
//! highlighted slice, the Table 2 metrics for this NF, the Figure 2c
//! execution paths, and the synthesized Figure 2d/6 model.

use nfactor::core::Pipeline;
use nfactor::corpus::fig1_lb;

fn main() {
    let src = fig1_lb::source();
    println!("=== NFactor quickstart: the Figure 1 load balancer ===\n");

    let pipeline = Pipeline::builder().name("fig1-lb").build().expect("pipeline");
    let syn = pipeline.synthesize(&src).expect("synthesis");

    // Table 1: variable classification.
    println!("--- StateAlyzer variable classes (Table 1) ---");
    println!("pktVar : {:?}", syn.classes.pkt_vars);
    println!("cfgVar : {:?}", syn.classes.cfg_vars);
    println!("oisVar : {:?}", syn.classes.ois_vars);
    println!("logVar : {:?} (outside the packet slice)", syn.classes.log_vars);

    // Figure 1: the slice, highlighted in the source.
    println!("\n--- Packet ∪ state slice (Figure 1 highlighting) ---");
    println!("{}", syn.render_highlighted_slice());

    // Table 2 metrics for this NF.
    println!("--- Metrics (Table 2 row) ---");
    println!(
        "LoC orig = {}, slice = {}, path = {}",
        syn.metrics.loc_orig, syn.metrics.loc_slice, syn.metrics.loc_path
    );
    println!(
        "slicing time = {:?}, slice paths = {}, SE time = {:?}",
        syn.metrics.slicing_time, syn.metrics.ep_slice, syn.metrics.se_time_slice
    );

    // Figure 2c: the execution paths.
    println!("\n--- Execution paths of the slice ---");
    for (i, p) in syn.exploration.paths.iter().enumerate() {
        println!("path {i}: {}", p.canonical());
    }

    // The model (Figure 2d / Figure 6 format).
    println!("\n--- Synthesized model ---");
    println!("{}", syn.render_model());

    // And the §5 differential check, 1000 random packets.
    let report = nfactor::core::accuracy::differential_test(&syn, 2016, 1000)
        .expect("differential test");
    println!(
        "accuracy: {}/{} random packets agree between model and program",
        report.agreements, report.trials
    );
}
