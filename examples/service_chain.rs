//! §4 Service Policy Composition: the paper's motivating question.
//!
//! ```text
//! cargo run --example service_chain
//! ```
//!
//! *"Consider two service chaining policies: {FW, IDS} and {LB}. What
//! should be the right order after composition, {FW, IDS, LB} or
//! {FW, LB, IDS}?"* — answered mechanically from the synthesized models'
//! input/output space footprints, PGA style.

use nfactor::core::Pipeline;
use nfactor::verify::chain::{footprint, recommend_order};

fn synth(name: &str, src: &str) -> nfactor::core::Synthesis {
    Pipeline::builder()
        .name(name)
        .build()
        .expect("pipeline")
        .synthesize(src)
        .unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn main() {
    println!("=== Service chain composition from synthesized models ===\n");
    let fw = synth("FW", &nfactor::corpus::firewall::source());
    let ids = synth("IDS", &nfactor::corpus::snort::source(10));
    let lb = synth("LB", &nfactor::corpus::fig1_lb::source());

    for (name, syn) in [("FW", &fw), ("IDS", &ids), ("LB", &lb)] {
        let fp = footprint(&syn.model);
        println!(
            "{name}: matches on {:?}",
            fp.matched
                .iter()
                .map(|f| f.path())
                .collect::<Vec<_>>()
        );
        println!(
            "    rewrites    {:?}",
            fp.rewritten
                .iter()
                .map(|f| f.path())
                .collect::<Vec<_>>()
        );
    }

    let report = recommend_order(&[("FW", &fw.model), ("IDS", &ids.model), ("LB", &lb.model)]);
    println!("\n{report}");
    assert_eq!(report.order, vec!["FW", "IDS", "LB"]);
    println!("→ the paper's {{FW, IDS, LB}} ordering, derived from the models alone.");
}
