//! §4 Network Verification: stateful header-space reachability.
//!
//! ```text
//! cargo run --example verify_reachability
//! ```
//!
//! Builds the transfer function `T(h, p, s)` from the synthesized
//! firewall model and answers reachability questions that *depend on
//! state* — the paper's extension of HSA that stateless data-plane
//! verification cannot express.

use nfactor::core::Pipeline;
use nfactor::interp::{Value, ValueKey};
use nfactor::model::ModelState;
use nfactor::packet::Field;
use nfactor::verify::hsa::{chain_reachable, HeaderSpace, IntervalSet, StatefulNf};

fn fw_with_pinholes(pinholes: &[(u32, u16, u32, u16)]) -> StatefulNf {
    let syn = Pipeline::builder()
        .name("fw")
        .build()
        .expect("pipeline")
        .synthesize(&nfactor::corpus::firewall::source())
        .expect("synthesis");
    let mut state = ModelState::default()
        .with_config("PROTECTED_NET", Value::Int(0x0a000000))
        .with_config("PROTECTED_MASK", Value::Int(0xff000000))
        .with_config("ALLOW_PORT", Value::Int(80))
        .with_scalar("out_count", Value::Int(0))
        .with_scalar("in_count", Value::Int(0))
        .with_scalar("blocked_count", Value::Int(0))
        .with_map("pinholes");
    for &(a, b, c, d) in pinholes {
        state.maps.get_mut("pinholes").unwrap().insert(
            ValueKey::Tuple(vec![i64::from(a), i64::from(b), i64::from(c), i64::from(d)]),
            Value::Int(1),
        );
    }
    StatefulNf {
        model: syn.model,
        state,
    }
}

fn main() {
    println!("=== Stateful HSA over the synthesized firewall model ===\n");

    // Question 1: with NO open pinholes, what outside traffic reaches
    // the protected network?
    let fresh = fw_with_pinholes(&[]);
    let outside = HeaderSpace::all().with(
        Field::IpSrc,
        IntervalSet::range(0x0b00_0000, 0xffff_ffff), // anything not 10/8
    );
    let through = fresh.reachable_through(&outside);
    println!("fresh firewall, outside → inside:");
    for space in &through {
        println!("  reaches: {space}");
    }
    assert!(through
        .iter()
        .all(|s| s.get(Field::TcpDport).contains(80) && s.get(Field::TcpDport).size() == 1));
    println!("→ only the allow-listed port 80 is reachable.\n");

    // Question 2: after 10.0.0.5:5000 opened a flow to 8.8.8.8:443, does
    // the reply reach? (This is the stateful part.)
    let opened = fw_with_pinholes(&[(0x0808_0808, 443, 0x0a00_0005, 5000)]);
    let reply = HeaderSpace::all()
        .with_point(Field::IpSrc, 0x0808_0808)
        .with_point(Field::TcpSport, 443)
        .with_point(Field::IpDst, 0x0a00_0005)
        .with_point(Field::TcpDport, 5000);
    let reached = opened.reachable_through(&reply);
    println!("after outbound flow, its reply space:");
    for s in &reached {
        println!("  reaches: {s}");
    }
    assert!(!reached.is_empty(), "pinholed reply must pass");
    assert!(
        fresh.reachable_through(&reply).is_empty(),
        "the same reply is blocked before the outbound flow exists"
    );
    println!("→ reply reachable ONLY in the post-handshake state — T(h, p, s) at work.\n");

    // Question 3: chain the firewall twice (defence in depth): the
    // allow-port space still threads through both.
    let spaces = chain_reachable(&[fresh.clone(), fresh], &outside);
    println!(
        "two chained fresh firewalls: {} space(s) reach the inside",
        spaces.len()
    );
    assert!(!spaces.is_empty());
}
