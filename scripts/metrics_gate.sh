#!/usr/bin/env bash
# Metrics gate: the README's observability table and the metric names
# in the code must not drift apart.
#
# Direction 1 — every name in the README's "stable metric names" table
# must resolve to a string literal in non-test library code. Dynamic
# components (`N`, `<label>`-style placeholders, `{a,b,c}`
# alternations, `*`) match any single dotted component, so
# `shard.N.eval.ns` in the README is satisfied by `"shard.{w}.eval.ns"`
# in the code. A name ending in `.ns` also matches its bare span name
# (`shard.dispatch.ns` <- `tracer.span("shard.dispatch")`), because
# span close records the `.ns` counter. Continuation shorthand in the
# table (`.restarts` following `shard.N.quarantined`) inherits the
# previous name's prefix — replacing its last component or appending.
#
# Direction 2 — every `shard.*` metric literal in library code must be
# documented: verbatim in the README (with `{var}` components
# normalised to `N`), as a backticked `.suffix` continuation, or listed
# with a reason in scripts/metrics_allowlist.txt. This is the tripwire
# that keeps new telemetry names from shipping undocumented.
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST=scripts/metrics_allowlist.txt
fail=0
LITS=$(mktemp)
trap 'rm -f "$LITS"' EXIT

# Every dotted string literal in non-test library code (test modules
# sit at the bottom of each file by repo convention — same convention
# panic_gate.sh relies on).
{ find crates -path '*/src/*' -name '*.rs'; find src -name '*.rs'; } | sort |
    while IFS= read -r f; do
        awk '/#\[cfg\(test\)\]/{exit} {print}' "$f"
    done |
    { grep -oE '"[A-Za-z0-9_.{}<>*-]+"' || true; } |
    tr -d '"' | grep -F . | sort -u > "$LITS"

# First-column backticked names of the README observability table, in
# row order (order matters: continuation tokens bind to the previous
# full name).
readme_names() {
    awk '/^## Observability$/{o=1;next} o&&/^## /{exit} o&&/^\|/&&/`/{
        split($0, c, "|"); print c[2] }' README.md |
        { grep -oE '`[^`]+`' || true; } | tr -d '`'
}

# Turn a README name into an ERE over code literals: dots are literal,
# each dynamic component matches one code-side component (which may
# itself be a `{}` format placeholder).
D='[A-Za-z0-9_{}]+'
to_regex() {
    printf '%s\n' "$1" | sed -E \
        -e 's/\./\\./g' \
        -e 's/\{[^}]*\}/@D@/g' \
        -e 's/<[^>]*>/@D@/g' \
        -e 's/\*/@D@/g' \
        -e 's/(^|\\\.)N(\\\.|$)/\1@D@\2/' \
        -e "s/@D@/$D/g"
}

has_lit() {
    grep -qE "^$1\$" "$LITS"
}

check_name() {
    if has_lit "$(to_regex "$1")"; then return 0; fi
    case "$1" in
        *.ns) if has_lit "$(to_regex "${1%.ns}")"; then return 0; fi ;;
    esac
    return 1
}

prev=""
while IFS= read -r tok; do
    [ -z "$tok" ] && continue
    case "$tok" in
        .*) # continuation shorthand off the previous full name
            if check_name "${prev%.*}$tok" || check_name "$prev$tok"; then
                continue
            fi
            printf '    README metric %s (continuing %s) has no code literal\n' "$tok" "$prev"
            fail=1 ;;
        *)
            prev="$tok"
            if check_name "$tok"; then continue; fi
            printf '    README metric %s has no code literal\n' "$tok"
            fail=1 ;;
    esac
done < <(readme_names)

for lit in $(grep -E '^shard\.' "$LITS" || true); do
    case "$lit" in *.) continue ;; esac # prefix fragments, not names
    name=$(printf '%s\n' "$lit" | sed -E 's/\{[A-Za-z0-9_]*\}/N/g')
    if grep -qF "\`$name\`" README.md; then continue; fi
    suffix=".${name##*.}"
    if grep -qF "\`$suffix\`" README.md; then continue; fi
    if grep -qxF "$name" "$ALLOWLIST"; then continue; fi
    printf '    undocumented shard metric literal "%s" (README needs `%s`)\n' "$lit" "$name"
    fail=1
done

if [ "$fail" -ne 0 ]; then
    echo "    metrics gate: FAIL (sync README.md, the code, or $ALLOWLIST)"
    exit 1
fi
echo "    metrics gate: README table and code literals in sync: ok"
