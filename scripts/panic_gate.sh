#!/usr/bin/env bash
# Panic gate: library (non-test) code must not grow new panicking calls.
#
# For every .rs file under crates/*/src and src/, strip the test module
# (everything from the first `#[cfg(test)]` to EOF — test modules sit at
# the bottom of each file by repo convention), count panicking
# constructs (`.unwrap()`, `.expect(`, `panic!`, `unreachable!`,
# `todo!`, `unimplemented!`) plus raw `catch_unwind(` sites (every
# unwind boundary must be an audited, intentional containment point —
# the property harness, the fuzz crash oracle, the shard supervisor),
# and compare against the audited per-file budget in
# scripts/panic_allowlist.txt. Any file above its budget fails the
# build; lowering a count is always fine. Regenerate the allowlist
# after an audited change with:
#
#     ./scripts/panic_gate.sh --update
set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWLIST=scripts/panic_allowlist.txt

count_file() {
    # `grep || true`: zero matches is the happy path, not a pipe failure.
    # `(^|[^a-z_])catch_unwind\(` matches raw std call sites but not
    # wrappers like `quiet_catch_unwind(` or doc-comment mentions.
    awk '/#\[cfg\(test\)\]/{exit} {print}' "$1" |
        { grep -o -E '\.unwrap\(\)|\.expect\(|panic!|unreachable!|todo!|unimplemented!|(^|[^a-z_])catch_unwind\(' || true; } |
        wc -l
}

list_files() {
    { find crates -path '*/src/*' -name '*.rs'; find src -name '*.rs'; } | sort
}

if [ "${1:-}" = "--update" ]; then
    {
        echo "# Audited per-file budget of panicking calls in non-test library code."
        echo "# Maintained by scripts/panic_gate.sh --update; reviewed on change."
        list_files | while IFS= read -r f; do
            n=$(count_file "$f")
            [ "$n" -gt 0 ] && echo "$f $n" || true
        done
    } > "$ALLOWLIST"
    echo "panic gate: allowlist regenerated ($(grep -c '^[^#]' "$ALLOWLIST") files)"
    exit 0
fi

fail=0
while IFS= read -r f; do
    n=$(count_file "$f")
    allowed=$(awk -v f="$f" '$1 == f {print $2}' "$ALLOWLIST")
    allowed=${allowed:-0}
    if [ "$n" -gt "$allowed" ]; then
        echo "panic gate: $f has $n panicking call(s) in non-test code," \
             "allowlist permits $allowed (see scripts/panic_gate.sh)" >&2
        fail=1
    fi
done < <(list_files)

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "panic gate: ok"
