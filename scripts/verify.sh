#!/usr/bin/env bash
# Tier-1 verification: hermetic (offline) build + full test suite.
#
# The workspace has zero external dependencies by design — everything
# builds from the in-tree `nf-support` substrate — so `--offline` must
# always succeed. Treat any attempt to reach a registry as a failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> nfactor lint over the corpus"
# The lint exits non-zero iff an error-severity (NFL006/NFL008)
# diagnostic fires; the corpus must stay clean of those.
for nf in fig1-lb balance snort nat firewall ratelimiter portknock router; do
    ./target/release/nfactor lint --corpus "$nf" > /dev/null
    echo "    lint $nf: ok"
done

echo "==> fuzz smoke: 500 seeded cases, crash + differential oracles"
# Deterministic (caps-only budgets): same seed, same verdicts. Exits
# non-zero on any pipeline panic or interpreter/model mismatch.
./target/release/nfactor fuzz --seed 0 --cases 500

echo "==> shard smoke: fig1-lb across 4 shards, merged log aggregation"
# fig1-lb shares b2f_nat across flows, so the runtime must fall back to
# the global lock — and the per-shard pass/drop log counters must still
# delta-merge to exactly the packet count.
out=$(./target/release/nfactor run --corpus fig1-lb --shards 4)
case "$out" in
    *"global-lock"*) echo "    shared-state fallback engaged: ok" ;;
    *) echo "    expected the global-lock fallback for fig1-lb, got:"; echo "$out"; exit 1 ;;
esac
pkts=$(printf '%s\n' "$out" | awk '/^packets/ {print $3}')
passed=$(printf '%s\n' "$out" | awk '/^pass_stat/ {print $3}')
dropped=$(printf '%s\n' "$out" | awk '/^drop_stat/ {print $3}')
if [ -z "$pkts" ] || [ "$((passed + dropped))" -ne "$pkts" ]; then
    echo "    pass_stat ($passed) + drop_stat ($dropped) != packets ($pkts)"; exit 1
fi
echo "    pass_stat ($passed) + drop_stat ($dropped) == $pkts packets: ok"

echo "==> compiled-backend smoke: fig1-lb lowered to the decision-tree engine"
# The model compiles to the nf-compile dispatch tree and runs sharded;
# the merged counters must still account for every packet.
out=$(./target/release/nfactor run --corpus fig1-lb --backend compiled --shards 4)
pkts=$(printf '%s\n' "$out" | awk '/^packets/ {print $3}')
if [ -z "$pkts" ] || [ "$pkts" -eq 0 ]; then
    echo "    compiled backend processed no packets:"; echo "$out"; exit 1
fi
echo "    compiled backend processed $pkts packets across 4 shards: ok"

echo "==> shard differential: every corpus NF, 4 shards vs single-threaded"
# The sweeps also run as part of the workspace suite above; the explicit
# invocations keep the oracles from silently falling out of the suite.
cargo test -q --offline --test differential sharded:: > /dev/null
echo "    threaded == sequential == single for all corpus NFs: ok"

echo "==> three-way differential: interp == model == compiled"
# Every corpus NF, shard counts {1,4}, threaded and sequential modes,
# compared on per-packet outputs and the model's state variables.
cargo test -q --offline --test differential three_way:: > /dev/null
echo "    interp == model == compiled for all corpus NFs: ok"

echo "==> chaos smoke: injected panic is quarantined, not fatal"
# One deterministic panic on shard 1's 4th packet: the run must exit 0
# with exactly one quarantined packet and every packet accounted for.
out=$(./target/release/nfactor run --corpus fig1-lb --shards 4 --fault-plan 'panic@1:3')
quarantined=$(printf '%s\n' "$out" | awk '/^quarantined/ {print $3}')
offered=$(printf '%s\n' "$out" | awk '/^offered/ {print $3}')
pkts=$(printf '%s\n' "$out" | awk '/^packets/ {print $3}')
if [ "$quarantined" != "1" ]; then
    echo "    expected exactly 1 quarantined packet, got '$quarantined':"; echo "$out"; exit 1
fi
if [ -z "$pkts" ] || [ "$((pkts + quarantined))" -ne "$offered" ]; then
    echo "    packets ($pkts) + quarantined ($quarantined) != offered ($offered)"; exit 1
fi
echo "    1 packet quarantined, $pkts of $offered processed: ok"

echo "==> chaos differential: faulted runs match fault-free references"
# Every corpus NF x backend x shards {1,4} x fixed fault plans: the
# surviving packets and merged state must be byte-identical to a
# fault-free run over the surviving input.
cargo test -q --offline --test differential chaos:: > /dev/null
echo "    survivors unaffected by contained faults for all corpus NFs: ok"

echo "==> graceful degradation: snort under a 10 ms deadline"
# Must return a *partial* model (exit 0) with the truncation visible,
# not hang, panic, or error out.
out=$(./target/release/nfactor synthesize --corpus snort --timeout-ms 10)
case "$out" in
    *"PARTIAL MODEL"*) echo "    truncated model rendered: ok" ;;
    *) echo "    expected a PARTIAL MODEL banner, got:"; echo "$out"; exit 1 ;;
esac
./target/release/nfactor synthesize --corpus snort --timeout-ms 10 --json \
    | grep -q '"state": "truncated"'
echo "    truncation visible in JSON: ok"

echo "==> trace smoke: Chrome trace + metrics JSON from a snort run"
# The observability flags must produce valid, non-empty JSON even when
# the run degrades under a deadline (that is exactly when the numbers
# matter). `json-check` uses the in-tree parser, so this also guards
# the emitter/parser pair against drift.
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
./target/release/nfactor synthesize --corpus snort \
    --trace-json "$tracedir/trace.json" \
    --metrics-json "$tracedir/metrics.json" > /dev/null
./target/release/nfactor json-check "$tracedir/trace.json" > /dev/null
./target/release/nfactor json-check "$tracedir/metrics.json" > /dev/null
grep -q 'pipeline.stage.symex' "$tracedir/trace.json"
echo "    trace JSON valid with stage spans: ok"
grep -q '"symex.paths.explored"' "$tracedir/metrics.json"
grep -q '"pipeline.stage.slice.ns"' "$tracedir/metrics.json"
echo "    metrics JSON carries the stable names: ok"

echo "==> telemetry smoke: per-shard stats JSON, flight dump, top --once"
# The shard telemetry plane must report per-shard latency percentiles
# and the dispatcher's hot-key profile, and the flight recorder's dump
# must carry a replayable `trace` key — all as valid JSON.
./target/release/nfactor run --corpus firewall --shards 4 \
    --stats-json "$tracedir/stats.json" --flight-out "$tracedir/flight.json" > /dev/null
./target/release/nfactor json-check "$tracedir/stats.json" > /dev/null
grep -q '"p99"' "$tracedir/stats.json"
grep -q '"hotkeys"' "$tracedir/stats.json"
grep -q '"ring_occupancy"' "$tracedir/stats.json"
echo "    stats JSON carries percentiles, occupancy, hot keys: ok"
./target/release/nfactor json-check "$tracedir/flight.json" > /dev/null
grep -q '"trace"' "$tracedir/flight.json"
echo "    flight dump valid with a replayable trace: ok"
out=$(./target/release/nfactor top --corpus firewall --shards 4 --once)
case "$out" in
    *"p99"*"hot["*) echo "    top --once rendered the per-shard snapshot: ok" ;;
    *) echo "    top --once missing percentile columns or hot-key rows:"; echo "$out"; exit 1 ;;
esac

echo "==> streaming smoke: 1M-packet .nfw trace through the batched path"
# The binary trace streams through the engine in 32-packet dispatch
# bins at constant memory; every packet must be accounted for.
./target/release/nfactor workload --seed 7 --packets 1000000 "$tracedir/big.nfw" > /dev/null
out=$(./target/release/nfactor run --corpus ratelimiter --workload "$tracedir/big.nfw" \
    --shards 4 --batch 32)
pkts=$(printf '%s\n' "$out" | awk '/^packets/ {print $3}')
if [ "$pkts" != "1000000" ]; then
    echo "    expected 1000000 packets through the .nfw stream, got '$pkts':"
    echo "$out"; exit 1
fi
echo "    1000000 .nfw packets streamed across 4 shards at batch 32: ok"

echo "==> deprecation gate: the legacy run* API has no non-wrapper callers"
# The six pre-RunConfig entry points survive only as #[deprecated]
# wrappers inside engine.rs; everything else goes through
# run_with(source, &RunConfig).
legacy=$(grep -rn -E '\.(run_faulted|run_sequential|run_sequential_faulted|run_single|run_single_faulted)\(|engine\.run\(' \
    --include='*.rs' src crates tests | grep -v 'crates/nf-shard/src/engine.rs' || true)
if [ -n "$legacy" ]; then
    echo "    deprecated ShardEngine run* callers outside the engine.rs wrappers:"
    echo "$legacy"; exit 1
fi
echo "    every call site uses run_with(source, &RunConfig): ok"

echo "==> incremental lint smoke: --watch re-lints the edit, metrics show cache hits"
# First poll lints cold; the appended trailing comment re-parses but
# early-cuts, so the diagnostic set must not change (no +/- lines), and
# the query metrics must record parse cache activity.
cat > "$tracedir/watch.nfl" <<'EOF'
state m = map();
fn cb(pkt: packet) {
    let src = pkt.ip.src;
    let unused = 7;
    if src not in m { m[src] = 0; }
    m[src] = m[src] + 1;
    send(pkt);
}
fn main() { sniff(cb); }
EOF
( sleep 0.3; echo "// trailing comment" >> "$tracedir/watch.nfl" ) &
out=$(./target/release/nfactor lint "$tracedir/watch.nfl" --watch \
    --poll-ms 100 --watch-max-polls 8 --metrics-json "$tracedir/watch-metrics.json")
wait
case "$out" in
    *"+ warning[NFL001]"*) echo "    watch printed the initial finding: ok" ;;
    *) echo "    watch did not print the NFL001 finding:"; echo "$out"; exit 1 ;;
esac
if [ "$(printf '%s\n' "$out" | grep -c 'NFL001')" -ne 1 ]; then
    echo "    trivia edit re-printed unchanged diagnostics:"; echo "$out"; exit 1
fi
echo "    trivia edit printed no diagnostic churn: ok"
./target/release/nfactor json-check "$tracedir/watch-metrics.json" > /dev/null
grep -q '"query.parse.recompute"' "$tracedir/watch-metrics.json"
grep -q '"query.report.hit"' "$tracedir/watch-metrics.json"
echo "    query.* metrics recorded: ok"

echo "==> lsp smoke: initialize handshake over stdio"
body1='{"jsonrpc":"2.0","id":1,"method":"initialize","params":{}}'
body2='{"jsonrpc":"2.0","method":"exit"}'
out=$({ printf 'Content-Length: %d\r\n\r\n%s' "${#body1}" "$body1"; \
        printf 'Content-Length: %d\r\n\r\n%s' "${#body2}" "$body2"; } \
      | ./target/release/nfactor lsp)
case "$out" in
    *'"textDocumentSync":1'*'"nfactor-lsp"'*) echo "    capabilities + serverInfo: ok" ;;
    *) echo "    unexpected initialize response:"; echo "$out"; exit 1 ;;
esac

echo "==> panic gate"
./scripts/panic_gate.sh

echo "==> metrics gate: README observability table vs code"
./scripts/metrics_gate.sh

echo "==> verify OK"
