#!/usr/bin/env bash
# Tier-1 verification: hermetic (offline) build + full test suite.
#
# The workspace has zero external dependencies by design — everything
# builds from the in-tree `nf-support` substrate — so `--offline` must
# always succeed. Treat any attempt to reach a registry as a failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> verify OK"
