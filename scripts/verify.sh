#!/usr/bin/env bash
# Tier-1 verification: hermetic (offline) build + full test suite.
#
# The workspace has zero external dependencies by design — everything
# builds from the in-tree `nf-support` substrate — so `--offline` must
# always succeed. Treat any attempt to reach a registry as a failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> nfactor lint over the corpus"
# The lint exits non-zero iff an error-severity (NFL006/NFL008)
# diagnostic fires; the corpus must stay clean of those.
for nf in fig1-lb balance snort nat firewall ratelimiter portknock router; do
    ./target/release/nfactor lint --corpus "$nf" > /dev/null
    echo "    lint $nf: ok"
done

echo "==> verify OK"
