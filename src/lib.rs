//! # NFactor — automatic synthesis of NF forwarding models
//!
//! A from-scratch Rust reproduction of *"Automatic Synthesis of NF Models
//! by Program Analysis"* (Wu, Zhang, Banerjee — HotNets-XV, 2016).
//!
//! NFactor takes the **source code of a network function** — a load
//! balancer, NAT, firewall, IDS — and automatically synthesizes its
//! **forwarding model**: per-configuration tables of stateful
//! match/action entries (an OpenFlow-like abstraction with state), via
//! program slicing and symbolic execution.
//!
//! ## Quick start
//!
//! ```
//! use nfactor::core::Pipeline;
//!
//! let src = r#"
//!     config PORT = 80;
//!     state hits = 0;
//!     fn cb(pkt: packet) {
//!         if pkt.tcp.dport == PORT {
//!             hits = hits + 1;
//!             send(pkt);
//!         }
//!     }
//!     fn main() { sniff(cb); }
//! "#;
//! let pipeline = Pipeline::builder().name("port-filter").build().unwrap();
//! let synthesis = pipeline.synthesize(src).unwrap();
//! println!("{}", synthesis.render_model());
//! assert_eq!(synthesis.model.entry_count(), 2); // forward + default drop
//!
//! // The same pipeline drives the sharded execution runtime:
//! use nfactor::packet::PacketGen;
//! use nfactor::shard::{Backend, RunConfig, ShardEngine, SliceSource};
//!
//! let pipeline = Pipeline::builder().name("port-filter").shards(4).build().unwrap();
//! let engine = ShardEngine::from_source(&pipeline, src, Backend::Interp).unwrap();
//! let packets = PacketGen::new(7).batch(100);
//! let run = engine.run_with(SliceSource::new(&packets), &RunConfig::threaded()).unwrap();
//! assert_eq!(run.total_pkts(), 100);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`lang`] | `nfl-lang` | the NFL language: lexer, parser, AST, types |
//! | [`analysis`] | `nfl-analysis` | CFG, dominators, PDG, inlining, Fig. 4 structure normalisation |
//! | [`interp`] | `nfl-interp` | concrete interpreter + dynamic traces |
//! | [`slicer`] | `nfl-slicer` | static & dynamic backward slicing, StateAlyzer classes |
//! | [`lint`] | `nfl-lint` | diagnostics passes (`NFL0xx`) + cross-flow sharding analysis |
//! | [`query`] | `nf-query` | incremental red-green query engine over the lint pipeline, watch diffing, LSP server |
//! | [`symex`] | `nfl-symex` | symbolic execution + SMT-lite solver |
//! | [`packet`] | `nf-packet` | Ethernet/IPv4/TCP/UDP substrate, packet generator |
//! | [`tcp`] | `nf-tcp` | TCP FSM + socket unfolding (Fig. 4d → Fig. 5) |
//! | [`model`] | `nf-model` | the model: tables, evaluator, Figure 6 renderer, FSM |
//! | [`compile`] | `nf-compile` | models lowered to a flattened XFSM dispatch engine (decision trees, state arenas) |
//! | [`core`] | `nfactor-core` | the pipeline (Algorithm 1) + §5 accuracy experiments |
//! | [`corpus`] | `nf-corpus` | the analysed NFs, incl. paper-scale snort/balance generators |
//! | [`verify`] | `nf-verify` | §4 applications: stateful HSA, chain composition, test generation |
//! | [`fuzz`] | `nf-fuzz` | seeded fuzzing harness: grammar/mutation inputs, crash + differential oracles |
//! | [`support`] | `nf-support` | zero-dep substrate: JSON, bench harness, budgets, property testing |
//! | [`trace`] | `nf-trace` | observability: spans, metrics registry, Chrome trace JSON, mockable clock |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nf_compile as compile;
pub use nf_corpus as corpus;
pub use nf_fuzz as fuzz;
pub use nf_model as model;
pub use nf_packet as packet;
pub use nf_query as query;
pub use nf_shard as shard;
pub use nf_tcp as tcp;
pub use nf_verify as verify;
pub use nfactor_core as core;
pub use nfl_analysis as analysis;
pub use nfl_interp as interp;
pub use nf_support as support;
pub use nf_trace as trace;
pub use nfl_lang as lang;
pub use nfl_lint as lint;
pub use nfl_slicer as slicer;
pub use nfl_symex as symex;
