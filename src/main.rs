//! The `nfactor` command-line tool.
//!
//! ```text
//! nfactor synthesize <file.nfl | --corpus name>   # synthesize & print the model
//! nfactor export     <file.nfl | --corpus name>   # machine-readable .nfm model
//! nfactor run        <file.nfl | --corpus name>   # execute across worker shards (--shards N)
//! nfactor slice      <file.nfl | --corpus name>   # Figure-1-style highlighted slice
//! nfactor classes    <file.nfl | --corpus name>   # Table-1 variable classification
//! nfactor paths      <file.nfl | --corpus name>   # execution paths of the slice
//! nfactor fsm        <file.nfl | --corpus name>   # Graphviz dot of the model FSM
//! nfactor metrics    <file.nfl | --corpus name>   # Table-2 row (add --orig for the slow column)
//! nfactor test       <file.nfl | --corpus name>   # model-guided compliance tests
//! nfactor lint       <file.nfl | --corpus name>   # NFL0xx diagnostics + sharding verdict (--json for machine output)
//! nfactor lint       <file.nfl> --watch           # re-lint on change, print only changed findings
//! nfactor lsp                                     # stdio JSON-RPC language server (diagnostics + hover)
//! nfactor fuzz       [--seed N] [--cases N]       # seeded crash/differential fuzzing of the whole pipeline
//! nfactor corpus                                  # list bundled corpus NFs
//! nfactor json-check <file.json>                  # validate a JSON file (used by scripts/verify.sh)
//! nfactor help                                    # the full flag reference
//! ```
//!
//! `run` feeds a packet workload through the [`nf-shard`](nfactor::shard)
//! runtime: the cross-flow lint report decides state placement, flows are
//! hash-dispatched to `--shards N` workers, and the merged state plus
//! per-shard counters are printed afterwards. `--workload FILE` supplies
//! the traffic as JSON (`{"seed": S, "packets": N}` for generated
//! streams, or `{"trace": [{"ip.src": A, "tcp.dport": 80, ...}, ...]}`
//! for explicit packets); without it a default seeded stream is used.
//! `--backend model` runs the synthesized model instead of the NFL
//! interpreter; `--backend compiled` runs the model lowered to the
//! `nf-compile` decision-tree engine.
//!
//! The run is supervised: a packet whose eval panics or errors is
//! quarantined (with journal rollback of partial state writes) instead
//! of aborting the run. `--fault-plan SPEC` injects deterministic
//! faults (`panic@1:3,delay@*:2:500,...`) for chaos testing, and
//! `--quarantine-out FILE` dumps the quarantined packets as JSON whose
//! `trace` key is itself a valid `--workload` file — a ready-made
//! replay/ddmin input.
//!
//! Synthesis-based commands accept `--timeout-ms N` and `--max-paths N`,
//! which bound the run with a [`Budget`](nfactor::support::budget::Budget);
//! on exhaustion the model is returned partial and stamped `Truncated`
//! rather than hanging. `synthesize --json` prints the model as JSON.
//!
//! Every command also takes the observability flags, which attach an
//! [`nf-trace`](nfactor::trace) [`Tracer`](nfactor::trace::Tracer) to
//! the run:
//!
//! * `--trace-json FILE` — write Chrome trace-event JSON (one span per
//!   Algorithm-1 stage, nested symex/slicer/lint spans; open it in
//!   `chrome://tracing` or Perfetto);
//! * `--metrics` — print the sorted name→value metric table to stderr;
//! * `--metrics-json FILE` — write the metrics registry as JSON,
//!   including the `pipeline.truncated` counter and budget-exhaustion
//!   reason label when the model is partial.
//!
//! This is the workflow the paper proposes for NF vendors: run the tool
//! on proprietary NF code, ship only the resulting model to operators.

use nfactor::core::{Pipeline, Synthesis};
use nfactor::packet::{GenSource, JsonTraceSource, NfwReader, NfwWriter, Packet};
use nfactor::shard::{Backend, BatchConfig, RunConfig, ShardEngine, WorkloadSource};
use nfactor::support::json::Value;
use std::io::Write;
use std::process::ExitCode;

/// Write `text` (plus `\n` when `nl`) to stdout, exiting quietly if the
/// reader has gone away (`nfactor ... | head` closes the pipe early —
/// that is not an error worth unwinding over).
fn emit(text: &str, nl: bool) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let r = if nl {
        writeln!(out, "{text}")
    } else {
        write!(out, "{text}")
    };
    if r.is_err() {
        std::process::exit(0);
    }
}

fn outln(text: impl AsRef<str>) {
    emit(text.as_ref(), true);
}

fn out(text: impl AsRef<str>) {
    emit(text.as_ref(), false);
}

/// The unified `--help` layout: one USAGE line, commands grouped by
/// purpose, then the flag groups shared across commands. Mirrored in
/// the README's CLI section.
const HELP: &str = "\
nfactor — synthesize and run NF forwarding models (HotNets'16 reproduction)

USAGE
  nfactor <COMMAND> <file.nfl | --corpus NAME> [OPTIONS]

SYNTHESIS COMMANDS
  synthesize   synthesize and print the model (--json for machine output)
  export       machine-readable .nfm model (ship to operators)
  slice        Figure-1-style highlighted program slice
  classes      Table-1 variable classification
  paths        execution paths of the slice
  fsm          Graphviz dot of the model FSM
  metrics      Table-2 row (--orig adds the slow unsliced columns)

EXECUTION COMMANDS
  run          execute the NF on a packet workload across worker shards
  top          per-shard live telemetry view of a run (--once for a
               single scriptable snapshot)
  test         model-guided compliance tests against the NF itself
  lint         NFL0xx diagnostics + cross-flow sharding report (--json)
  lsp          stdio JSON-RPC language server (diagnostics + hover)
  fuzz         seeded crash/differential fuzzing [--seed N] [--cases N]

UTILITY COMMANDS
  corpus       list the bundled corpus NFs
  workload     generate a binary .nfw packet trace [--seed N] [--packets N]
  json-check   validate a JSON file
  help         this reference

RUN OPTIONS
  --shards N        worker shards (default 1, max 256)
  --backend B       execution backend: interp (default), model, or
                    compiled (model lowered to a decision-tree engine)
  --workload FILE   packet workload, streamed in batches: a binary .nfw
                    trace (see `workload`), or JSON — {\"seed\": S,
                    \"packets\": N} for a generated stream, or
                    {\"trace\": [{\"ip.src\": A, \"tcp.dport\": 80,
                    ...}, ...]} for explicit packets
  --batch N         packets per dispatch batch / ring push (default 32)
  --rebalance       skew-aware rebalancing: pin new flows away from
                    overloaded shards (outputs provably unchanged)
  --fault-plan SPEC comma-separated fault points `kind@shard:nth[:arg]`
                    with kind panic | err | delay | ring-overflow |
                    garbage and shard `*` for any shard, injected at the
                    nth packet steered to that shard (chaos testing)
  --quarantine-out FILE
                    write quarantined packets as JSON; the `trace` key
                    is a valid --workload file for direct replay
  --stats-json FILE write the telemetry plane's run stats as JSON:
                    per-shard eval-latency percentiles, ring occupancy,
                    hot dispatch keys, dispatch/merge timing
  --flight-out FILE write the flight recorder (last N per-packet events)
                    as JSON; its `trace` key is a valid --workload file

TOP OPTIONS
  --once               run the workload to completion, print one final
                       per-shard telemetry table, exit (scriptable)
  --poll-ms N          live-view refresh interval in ms (default 500)
  --watch-max-polls N  stop refreshing after N polls (0 = until the run
                       finishes); the run itself always completes

LINT OPTIONS
  --watch              poll the file and re-lint on change, printing only
                       the diagnostics that appeared (+) or disappeared (-)
  --poll-ms N          watch poll interval in milliseconds (default 500)
  --watch-max-polls N  stop after N polls (0 = run until interrupted)

BUDGET OPTIONS
  --timeout-ms N    wall-clock deadline; on exhaustion the model is
                    returned PARTIAL (stamped Truncated), never an error
  --max-paths N     cap on explored symbolic paths

OBSERVABILITY OPTIONS (any command)
  --trace-json FILE    write Chrome trace-event JSON (one span per stage)
  --metrics            print the name→value metric table to stderr
  --metrics-json FILE  write the metrics registry as JSON
";

fn usage() -> ExitCode {
    eprint!("{HELP}");
    ExitCode::from(2)
}

/// Remove `flag N` from `args`, returning the parsed `N` when present.
fn take_num_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    let raw = args.remove(i + 1);
    args.remove(i);
    raw.parse::<u64>()
        .map(Some)
        .map_err(|_| format!("{flag}: expected a non-negative integer, got `{raw}`"))
}

/// Remove `flag VALUE` from `args`, returning `VALUE` when present.
fn take_str_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Ok(Some(value))
}

fn corpus_source(name: &str) -> Option<String> {
    nfactor::corpus::default_corpus()
        .into_iter()
        .find(|nf| nf.name == name)
        .map(|nf| nf.source)
}

fn load_source(args: &[String]) -> Result<(String, String), String> {
    match args {
        [flag, name, ..] if flag == "--corpus" => corpus_source(name)
            .map(|s| (name.clone(), s))
            .ok_or_else(|| format!("unknown corpus NF `{name}` (try `nfactor corpus`)")),
        [path, ..] => std::fs::read_to_string(path)
            .map(|s| (path.clone(), s))
            .map_err(|e| format!("{path}: {e}")),
        [] => Err("missing input (file path or --corpus NAME)".into()),
    }
}

fn run_synthesis(args: &[String], pipeline: &Pipeline) -> Result<Synthesis, String> {
    let (name, src) = load_source(args)?;
    pipeline
        .synthesize_named(&name, &src)
        .map_err(|e| e.to_string())
}

/// Load the `run` workload as a streaming [`WorkloadSource`]: a seeded
/// generated stream by default; with `--workload`, a binary `.nfw`
/// trace, a JSON `trace` array (streamed object by object, so a
/// malformed record is reported with its byte offset), or a JSON
/// generator config.
fn load_workload(
    path: Option<&str>,
) -> Result<Box<dyn WorkloadSource<Item = Packet> + Send>, String> {
    let Some(path) = path else {
        return Ok(Box::new(GenSource::new(0, 1000)));
    };
    if path.ends_with(".nfw") {
        let reader = NfwReader::open(path).map_err(|e| format!("{path}: {e}"))?;
        return Ok(Box::new(reader));
    }
    if let Some(trace) = JsonTraceSource::open(path).map_err(|e| format!("{path}: {e}"))? {
        return Ok(Box::new(trace));
    }
    // No top-level `trace` key: a (small) generator-config document.
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let v = Value::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let int_key = |key: &str| match v.get(key) {
        Some(Value::Int(n)) if *n >= 0 => Ok(Some(*n as u64)),
        Some(_) => Err(format!("{path}: `{key}` must be a non-negative integer")),
        None => Ok(None),
    };
    let seed = int_key("seed")?.unwrap_or(0);
    let count = int_key("packets")?.unwrap_or(1000);
    Ok(Box::new(GenSource::new(seed, count)))
}

/// The `workload` command: generate a seeded packet stream into a
/// binary `.nfw` trace file that `run --workload file.nfw` replays.
fn run_workload_gen(mut args: Vec<String>) -> Result<(), String> {
    let seed = take_num_flag(&mut args, "--seed")?.unwrap_or(0);
    let count = take_num_flag(&mut args, "--packets")?.unwrap_or(1000);
    let path = match args.as_slice() {
        [p] => p.clone(),
        [] => return Err("workload: missing output path (e.g. trace.nfw)".into()),
        _ => return Err(format!("workload: unexpected arguments: {args:?}")),
    };
    let mut writer = NfwWriter::create(&path, seed).map_err(|e| format!("{path}: {e}"))?;
    let mut source = GenSource::new(seed, count);
    let mut buf = Vec::with_capacity(4096);
    loop {
        buf.clear();
        let got = source
            .next_batch(&mut buf, 4096)
            .map_err(|e| format!("{path}: {e}"))?;
        if got == 0 {
            break;
        }
        for pkt in &buf {
            writer.push(pkt).map_err(|e| format!("{path}: {e}"))?;
        }
    }
    let written = writer.finish().map_err(|e| format!("{path}: {e}"))?;
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    outln(format!("wrote {written} packets ({bytes} bytes) -> {path}"));
    Ok(())
}

/// The `run` command: build a [`ShardEngine`] from the lint report's
/// placement plan, feed it the workload, print plan + merged results.
#[allow(clippy::too_many_arguments)]
fn run_shards(
    args: &[String],
    base: &Pipeline,
    backend: Backend,
    workload: Option<&str>,
    fault_plan: Option<&str>,
    quarantine_out: Option<&str>,
    stats_out: Option<&str>,
    flight_out: Option<&str>,
    batch: Option<u64>,
    rebalance: bool,
) -> Result<(), String> {
    let (name, src) = load_source(args)?;
    let faults = match fault_plan {
        Some(spec) => nfactor::support::fault::FaultPlan::parse(spec)
            .map_err(|e| format!("--fault-plan: {e}"))?,
        None => nfactor::support::fault::FaultPlan::new(),
    };
    let pipeline = Pipeline::builder()
        .name(&name)
        .shards(base.shards())
        .budget(base.budget().clone())
        .tracer(base.tracer().clone())
        .build()
        .map_err(|e| e.to_string())?;
    let engine =
        ShardEngine::from_source(&pipeline, &src, backend).map_err(|e| e.to_string())?;
    let source = load_workload(workload)?;
    let mut cfg = RunConfig::threaded()
        .with_faults(faults.clone())
        .with_batch(BatchConfig {
            size: batch.unwrap_or(32).clamp(1, 4096) as usize,
            rebalance,
            ..BatchConfig::default()
        });
    // The CLI only reports aggregates, so stream at constant memory
    // instead of retaining a SeqOutput per packet.
    cfg.keep_outputs = false;
    let run = engine.run_with(source, &cfg).map_err(|e| e.to_string())?;

    let backend_name = match backend {
        Backend::Interp => "interp",
        Backend::Model => "model",
        Backend::Compiled => "compiled",
    };
    outln(format!(
        "== {name}: {} shard(s), {backend_name} backend ==",
        engine.shards()
    ));
    out(engine.plan().render_table());
    let total = run.total_pkts();
    let summary = run.fault_summary();
    outln("");
    outln(format!("packets        : {total}"));
    outln(format!("forwarded      : {}", run.forwarded));
    outln(format!("dropped        : {}", total - run.forwarded));
    // Supervision accounting: shown whenever faults were injected or
    // something actually went wrong, silent on a clean default run.
    if !faults.is_empty() || run.offered() != total || summary.any() {
        outln(format!("offered        : {}", run.offered()));
        outln(format!("quarantined    : {}", summary.quarantined));
        outln(format!("ring-dropped   : {}", summary.dropped));
        outln(format!("restarts       : {}", summary.restarts));
        outln(format!("retries        : {}", summary.retries));
        outln(format!("fallbacks      : {}", summary.fallbacks));
        if summary.migrations > 0 {
            outln(format!("migrations     : {}", summary.migrations));
        }
    }
    outln(format!("per-shard pkts : {:?}", run.per_shard_pkts));
    let makespan = run.makespan_ns();
    outln(format!(
        "makespan       : {:.3} ms{}",
        makespan as f64 / 1e6,
        if run.partitioned { "" } else { " (global lock: serialised)" }
    ));
    if makespan > 0 {
        outln(format!(
            "throughput     : {:.0} kpkt/s",
            total as f64 / (makespan as f64 / 1e9) / 1e3
        ));
    }
    outln("");
    outln("== merged state ==");
    for (var, value) in &run.merged {
        match value {
            nfactor::interp::Value::Map(m) => {
                outln(format!("{var} = map({} entries)", m.len()));
            }
            other => outln(format!("{var} = {other}")),
        }
    }
    if let Some(path) = quarantine_out {
        let dump = nfactor::shard::quarantine_to_json(
            &run.quarantined,
            run.quarantined_seqs.len() as u64,
        );
        std::fs::write(path, dump.render_pretty() + "\n")
            .map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = stats_out {
        let doc = run.stats_json().ok_or_else(|| {
            "--stats-json: telemetry is disabled for this run".to_string()
        })?;
        std::fs::write(path, doc.render_pretty() + "\n")
            .map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = flight_out {
        let stats = run.stats.as_ref().ok_or_else(|| {
            "--flight-out: telemetry is disabled for this run".to_string()
        })?;
        let dump = stats.flight_json(engine.telemetry().flight_cap);
        std::fs::write(path, dump.render_pretty() + "\n")
            .map_err(|e| format!("{path}: {e}"))?;
    } else if !run.quarantined_seqs.is_empty() {
        // Faults with no dump file requested: surface the flight
        // recorder's tail on stderr so the crash context isn't lost.
        if let Some(stats) = &run.stats {
            let (events, recorded) = stats.flight(8);
            eprintln!(
                "flight recorder: last {} of {recorded} events (rerun with --flight-out FILE for the full ring)",
                events.len()
            );
            for e in &events {
                eprintln!(
                    "  seq {:>6}  shard {}  {:<8} {:<11} {} ns",
                    e.seq,
                    e.shard,
                    e.backend,
                    e.outcome.as_str(),
                    e.latency_ns
                );
            }
        }
    }
    Ok(())
}

/// The `top` command: run the workload and render the telemetry plane's
/// per-shard table — once at the end (`--once`), or live by polling the
/// tracer's metrics at `--poll-ms` while the run progresses and
/// printing interval deltas ([`MetricsSnapshot::delta`]-based, so rates
/// are per-refresh, not cumulative).
fn run_top(
    mut args: Vec<String>,
    base: &Pipeline,
    backend: Backend,
    workload: Option<&str>,
) -> Result<(), String> {
    let once = if let Some(i) = args.iter().position(|a| a == "--once") {
        args.remove(i);
        true
    } else {
        false
    };
    let poll_ms = take_num_flag(&mut args, "--poll-ms")?.unwrap_or(500).max(1);
    let max_polls = take_num_flag(&mut args, "--watch-max-polls")?.unwrap_or(0);
    let (name, src) = load_source(&args)?;
    let pipeline = Pipeline::builder()
        .name(&name)
        .shards(base.shards())
        .budget(base.budget().clone())
        .tracer(base.tracer().clone())
        .build()
        .map_err(|e| e.to_string())?;
    let engine =
        ShardEngine::from_source(&pipeline, &src, backend).map_err(|e| e.to_string())?;
    let source = load_workload(workload)?;
    let mut cfg = RunConfig::threaded();
    cfg.keep_outputs = false;
    let tracer = pipeline.tracer().clone();
    let run = if once {
        engine.run_with(source, &cfg).map_err(|e| e.to_string())?
    } else {
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| engine.run_with(source, &cfg));
            let mut prev = tracer.metrics();
            let mut polls: u64 = 0;
            while !handle.is_finished() && (max_polls == 0 || polls < max_polls) {
                std::thread::sleep(std::time::Duration::from_millis(poll_ms));
                let cur = tracer.metrics();
                out(nfactor::shard::render_top(&cur.delta(&prev), Some(poll_ms)));
                outln("");
                prev = cur;
                polls += 1;
            }
            // The scope joins the run either way; a poll cap only stops
            // the refreshes, never abandons the workload.
            handle.join()
        })
        .map_err(|p| {
            format!(
                "run panicked: {}",
                nfactor::shard::panic_message(p.as_ref())
            )
        })?
        .map_err(|e| e.to_string())?
    };
    outln(format!(
        "== {name}: {} shard(s), totals ==",
        engine.shards()
    ));
    out(nfactor::shard::render_top(&tracer.metrics(), None));
    outln(format!(
        "packets {}  quarantined {}  dropped {}  makespan {:.3} ms",
        run.total_pkts(),
        run.quarantined_seqs.len(),
        run.dropped_seqs.len(),
        run.makespan_ns() as f64 / 1e6
    ));
    Ok(())
}

fn run_fuzz(mut args: Vec<String>, tracer: &nfactor::trace::Tracer) -> Result<bool, String> {
    let seed = take_num_flag(&mut args, "--seed")?.unwrap_or(0);
    let cases = take_num_flag(&mut args, "--cases")?.unwrap_or(500) as usize;
    if let Some(extra) = args.first() {
        return Err(format!("fuzz: unexpected argument `{extra}`"));
    }
    let cfg = nfactor::fuzz::FuzzConfig {
        seed,
        cases,
        ..nfactor::fuzz::FuzzConfig::default()
    };
    let report = nfactor::fuzz::run_traced(&cfg, tracer);
    outln(report.summary());
    for f in &report.findings {
        outln(format!("--- case {} [{}] minimized input ---", f.case, f.kind));
        outln(&f.input);
    }
    Ok(report.clean())
}

/// Write the requested observability outputs once the command has run.
fn emit_observability(
    tracer: &nfactor::trace::Tracer,
    trace_path: Option<&str>,
    metrics_path: Option<&str>,
    show_metrics: bool,
) -> Result<(), String> {
    if let Some(path) = trace_path {
        std::fs::write(path, tracer.trace_json().render_pretty())
            .map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = metrics_path {
        std::fs::write(path, tracer.metrics().to_json().render_pretty())
            .map_err(|e| format!("{path}: {e}"))?;
    }
    if show_metrics {
        eprint!("{}", tracer.metrics().render_table());
    }
    Ok(())
}

/// `nfactor lint --watch`: poll `path`'s mtime, feed edits into a
/// long-lived incremental [`Engine`](nfactor::query::Engine), and print
/// only the diagnostics that changed since the previous iteration.
/// Returns whether the *last* report was error-free (the exit status).
fn run_watch(
    path: &str,
    poll_ms: u64,
    max_polls: u64,
    tracer: &nfactor::trace::Tracer,
) -> Result<bool, String> {
    let mut engine = nfactor::query::Engine::with_tracer(tracer.clone());
    let mut watch = nfactor::query::WatchState::new();
    let mut clean = true;
    let mut polls: u64 = 0;
    let mut stamp: Option<(std::time::SystemTime, u64)> = None;
    loop {
        // mtime+len is only a cheap dirtiness hint: the engine hashes
        // the bytes itself, so a touch without an edit re-lints free.
        let meta = std::fs::metadata(path).map_err(|e| format!("{path}: {e}"))?;
        let now = (
            meta.modified().map_err(|e| format!("{path}: {e}"))?,
            meta.len(),
        );
        if stamp != Some(now) {
            stamp = Some(now);
            let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let first = polls == 0;
            if engine.set_source(path, &src) || first {
                let report = engine.lint_report(path);
                let delta = watch.diff(path, report.as_ref());
                if !delta.is_empty() || first {
                    outln(format!(
                        "[{path}] {} total ({} new, {} fixed)",
                        delta.total,
                        delta.added.len(),
                        delta.removed.len()
                    ));
                    for line in &delta.removed {
                        outln(format!("- {line}"));
                    }
                    for line in &delta.added {
                        outln(format!("+ {line}"));
                    }
                }
                clean = match report.as_ref() {
                    Ok(r) => !r.has_errors(),
                    Err(_) => false,
                };
            }
        }
        polls += 1;
        if max_polls != 0 && polls >= max_polls {
            return Ok(clean);
        }
        std::thread::sleep(std::time::Duration::from_millis(poll_ms));
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") || argv.first().map(String::as_str) == Some("help") {
        out(HELP);
        return ExitCode::SUCCESS;
    }
    let Some(cmd) = argv.first() else {
        return usage();
    };
    let orig = argv.iter().any(|a| a == "--orig");
    let json = argv.iter().any(|a| a == "--json");
    let show_metrics = argv.iter().any(|a| a == "--metrics");
    let mut rest: Vec<String> = argv[1..]
        .iter()
        .filter(|a| *a != "--orig" && *a != "--json" && *a != "--metrics")
        .cloned()
        .collect();
    type Parsed = (
        Pipeline,
        Backend,
        Option<String>,
        Option<String>,
        Option<String>,
        Option<String>,
        Option<String>,
    );
    let (pipeline, backend, workload, trace_path, metrics_path, stats_path, flight_path) =
        match (|| -> Result<Parsed, String> {
        let trace_path = take_str_flag(&mut rest, "--trace-json")?;
        let metrics_path = take_str_flag(&mut rest, "--metrics-json")?;
        let stats_path = take_str_flag(&mut rest, "--stats-json")?;
        let flight_path = take_str_flag(&mut rest, "--flight-out")?;
        let workload = take_str_flag(&mut rest, "--workload")?;
        let shards = take_num_flag(&mut rest, "--shards")?.unwrap_or(1) as usize;
        let backend = match take_str_flag(&mut rest, "--backend")?.as_deref() {
            None | Some("interp") => Backend::Interp,
            Some("model") => Backend::Model,
            Some("compiled") => Backend::Compiled,
            Some(other) => {
                return Err(format!(
                    "--backend: expected `interp`, `model`, or `compiled`, got `{other}`"
                ))
            }
        };
        let mut budget = nfactor::support::budget::Budget::unlimited();
        if let Some(ms) = take_num_flag(&mut rest, "--timeout-ms")? {
            budget = budget.with_timeout_ms(ms);
        }
        if let Some(n) = take_num_flag(&mut rest, "--max-paths")? {
            budget = budget.with_max_paths(n as usize);
        }
        // Only attach a sink when some output was requested; otherwise
        // the pipeline runs with the (near-free) disabled tracer. The
        // telemetry outputs (`--stats-json`, `--flight-out`, `top`)
        // need the sink too — that's where workers flush.
        let tracer = if trace_path.is_some()
            || metrics_path.is_some()
            || show_metrics
            || stats_path.is_some()
            || flight_path.is_some()
            || cmd.as_str() == "top"
        {
            nfactor::trace::Tracer::enabled()
        } else {
            nfactor::trace::Tracer::disabled()
        };
        let pipeline = Pipeline::builder()
            .measure_original(orig)
            .budget(budget)
            .tracer(tracer)
            .shards(shards)
            .build()
            .map_err(|e| e.to_string())?;
        Ok((
            pipeline,
            backend,
            workload,
            trace_path,
            metrics_path,
            stats_path,
            flight_path,
        ))
    })() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("nfactor: {e}");
            return ExitCode::from(2);
        }
    };
    let tracer = pipeline.tracer().clone();
    // Non-zero exit without an error message (lint errors, fuzz
    // findings, compliance violations); observability still emits.
    let mut soft_fail = false;
    let result: Result<(), String> = match cmd.as_str() {
        "corpus" => {
            for nf in nfactor::corpus::default_corpus() {
                let loc = nfactor::lang::parse(&nf.source)
                    .map(|p| p.loc())
                    .unwrap_or(0);
                outln(format!("{:<12} {:>5} LoC", nf.name, loc));
            }
            Ok(())
        }
        "fuzz" => match run_fuzz(rest, &tracer) {
            Ok(clean) => {
                soft_fail = !clean;
                Ok(())
            }
            Err(e) => Err(e),
        },
        "json-check" => (|| -> Result<(), String> {
            let path = rest
                .first()
                .ok_or_else(|| "json-check: missing file argument".to_string())?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            nfactor::support::json::Value::parse(&text)
                .map_err(|e| format!("{path}: {e}"))?;
            Ok(())
        })(),
        "run" => (|| {
            let fault_plan = take_str_flag(&mut rest, "--fault-plan")?;
            let quarantine_out = take_str_flag(&mut rest, "--quarantine-out")?;
            let batch = take_num_flag(&mut rest, "--batch")?;
            let rebalance = if let Some(i) = rest.iter().position(|a| a == "--rebalance") {
                rest.remove(i);
                true
            } else {
                false
            };
            run_shards(
                &rest,
                &pipeline,
                backend,
                workload.as_deref(),
                fault_plan.as_deref(),
                quarantine_out.as_deref(),
                stats_path.as_deref(),
                flight_path.as_deref(),
                batch,
                rebalance,
            )
        })(),
        "workload" => run_workload_gen(rest.clone()),
        "top" => run_top(rest.clone(), &pipeline, backend, workload.as_deref()),
        "synthesize" => run_synthesis(&rest, &pipeline).map(|syn| {
            if json {
                use nfactor::support::json::ToJson;
                outln(syn.model.to_json().render_pretty());
            } else {
                outln(syn.render_model());
            }
        }),
        "export" => run_synthesis(&rest, &pipeline).map(|syn| {
            // The vendor workflow: print the machine-readable .nfm model
            // (redirect to a file and ship it to the operator).
            out(nfactor::model::to_text(&syn.model));
        }),
        "slice" => run_synthesis(&rest, &pipeline).map(|syn| {
            outln(syn.render_highlighted_slice());
        }),
        "classes" => run_synthesis(&rest, &pipeline).map(|syn| {
            outln(format!("pktVar : {:?}", syn.classes.pkt_vars));
            outln(format!("cfgVar : {:?}", syn.classes.cfg_vars));
            outln(format!("oisVar : {:?}", syn.classes.ois_vars));
            outln(format!("logVar : {:?}", syn.classes.log_vars));
        }),
        "paths" => run_synthesis(&rest, &pipeline).map(|syn| {
            for (i, p) in syn.exploration.paths.iter().enumerate() {
                outln(format!("path {i}: {}", p.canonical()));
            }
        }),
        "fsm" => run_synthesis(&rest, &pipeline).map(|syn| {
            let fsm = nfactor::model::ModelFsm::from_model(&syn.model);
            outln(fsm.to_dot());
        }),
        "metrics" => run_synthesis(&rest, &pipeline).map(|syn| {
            let m = &syn.metrics;
            outln(format!("LoC orig       : {}", m.loc_orig));
            outln(format!("LoC slice      : {}", m.loc_slice));
            outln(format!("LoC path (max) : {}", m.loc_path));
            outln(format!("slicing time   : {:?}", m.slicing_time));
            outln(format!("EP slice       : {}", m.ep_slice));
            outln(format!("SE time slice  : {:?}", m.se_time_slice));
            outln(format!("EP orig        : {}", m.ep_orig_str()));
            match m.se_time_orig {
                Some(t) => outln(format!("SE time orig   : {t:?}")),
                None => outln("SE time orig   : - (pass --orig to measure)"),
            }
        }),
        "lint" => {
            let r: Result<bool, String> = (|| {
                let mut largs = rest.clone();
                let poll_ms = take_num_flag(&mut largs, "--poll-ms")?.unwrap_or(500);
                let max_polls = take_num_flag(&mut largs, "--watch-max-polls")?.unwrap_or(0);
                if let Some(i) = largs.iter().position(|a| a == "--watch") {
                    largs.remove(i);
                    let path = match largs.as_slice() {
                        [p] if p != "--corpus" => p.clone(),
                        _ => return Err("--watch requires a file path (not --corpus)".into()),
                    };
                    // Watch reports errors via diagnostics lines; its
                    // exit status reflects the final report.
                    return run_watch(&path, poll_ms, max_polls, &tracer).map(|clean| !clean);
                }
                let (name, src) = load_source(&largs)?;
                let report = nfactor::lint::lint_source_traced(&name, &src, &tracer)?;
                if json {
                    use nfactor::support::json::ToJson;
                    outln(report.to_json().render_pretty());
                } else {
                    out(report.render_text());
                }
                Ok(report.has_errors())
            })();
            match r {
                // Exit non-zero iff an error-severity diagnostic fired.
                Ok(has_errors) => {
                    soft_fail = has_errors;
                    Ok(())
                }
                Err(e) => Err(e),
            }
        }
        "lsp" => {
            let mut engine = nfactor::query::Engine::with_tracer(tracer.clone());
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut reader = stdin.lock();
            let mut writer = stdout.lock();
            nfactor::query::lsp::serve(&mut engine, &mut reader, &mut writer)
                .map_err(|e| format!("lsp: {e}"))
        }
        "test" => run_synthesis(&rest, &pipeline).and_then(|syn| {
            let report =
                nfactor::verify::compliance_test(&syn).map_err(|e| e.to_string())?;
            outln(format!("{report}"));
            for (i, t) in report.tests.iter().enumerate() {
                outln(format!(
                    "  test {i}: entry {:?}, {} setup, probe {}, expect {}",
                    t.target,
                    t.setup.len(),
                    t.probe,
                    if t.expect_forward { "FORWARD" } else { "DROP" }
                ));
            }
            if report.compliant() {
                Ok(())
            } else {
                Err(format!("compliance violations: {:?}", report.violations))
            }
        }),
        _ => return usage(),
    };
    // Trace/metrics files are written even when the command failed —
    // a truncated or failing run is exactly when the numbers matter.
    if let Err(e) = emit_observability(
        &tracer,
        trace_path.as_deref(),
        metrics_path.as_deref(),
        show_metrics,
    ) {
        eprintln!("nfactor: {e}");
        return ExitCode::FAILURE;
    }
    match result {
        Ok(()) if soft_fail => ExitCode::FAILURE,
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("nfactor: {e}");
            ExitCode::FAILURE
        }
    }
}
