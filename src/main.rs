//! The `nfactor` command-line tool.
//!
//! ```text
//! nfactor synthesize <file.nfl | --corpus name>   # synthesize & print the model
//! nfactor export     <file.nfl | --corpus name>   # machine-readable .nfm model
//! nfactor slice      <file.nfl | --corpus name>   # Figure-1-style highlighted slice
//! nfactor classes    <file.nfl | --corpus name>   # Table-1 variable classification
//! nfactor paths      <file.nfl | --corpus name>   # execution paths of the slice
//! nfactor fsm        <file.nfl | --corpus name>   # Graphviz dot of the model FSM
//! nfactor metrics    <file.nfl | --corpus name>   # Table-2 row (add --orig for the slow column)
//! nfactor test       <file.nfl | --corpus name>   # model-guided compliance tests
//! nfactor lint       <file.nfl | --corpus name>   # NFL0xx diagnostics + sharding verdict (--json for machine output)
//! nfactor corpus                                  # list bundled corpus NFs
//! ```
//!
//! This is the workflow the paper proposes for NF vendors: run the tool
//! on proprietary NF code, ship only the resulting model to operators.

use nfactor::core::{synthesize, Options, Synthesis};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: nfactor <synthesize|export|slice|classes|paths|fsm|metrics|test|lint> \
         <file.nfl | --corpus NAME> [--orig] [--json]\n       nfactor corpus"
    );
    ExitCode::from(2)
}

fn corpus_source(name: &str) -> Option<String> {
    nfactor::corpus::default_corpus()
        .into_iter()
        .find(|nf| nf.name == name)
        .map(|nf| nf.source)
}

fn load_source(args: &[String]) -> Result<(String, String), String> {
    match args {
        [flag, name, ..] if flag == "--corpus" => corpus_source(name)
            .map(|s| (name.clone(), s))
            .ok_or_else(|| format!("unknown corpus NF `{name}` (try `nfactor corpus`)")),
        [path, ..] => std::fs::read_to_string(path)
            .map(|s| (path.clone(), s))
            .map_err(|e| format!("{path}: {e}")),
        [] => Err("missing input (file path or --corpus NAME)".into()),
    }
}

fn run_synthesis(args: &[String], orig: bool) -> Result<Synthesis, String> {
    let (name, src) = load_source(args)?;
    let opts = Options {
        measure_original: orig,
        ..Options::default()
    };
    synthesize(&name, &src, &opts).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return usage();
    };
    let orig = argv.iter().any(|a| a == "--orig");
    let json = argv.iter().any(|a| a == "--json");
    let rest: Vec<String> = argv[1..]
        .iter()
        .filter(|a| *a != "--orig" && *a != "--json")
        .cloned()
        .collect();
    let result: Result<(), String> = match cmd.as_str() {
        "corpus" => {
            for nf in nfactor::corpus::default_corpus() {
                let loc = nfactor::lang::parse(&nf.source)
                    .map(|p| p.loc())
                    .unwrap_or(0);
                println!("{:<12} {:>5} LoC", nf.name, loc);
            }
            Ok(())
        }
        "synthesize" => run_synthesis(&rest, orig).map(|syn| {
            println!("{}", syn.render_model());
        }),
        "export" => run_synthesis(&rest, orig).map(|syn| {
            // The vendor workflow: print the machine-readable .nfm model
            // (redirect to a file and ship it to the operator).
            print!("{}", nfactor::model::to_text(&syn.model));
        }),
        "slice" => run_synthesis(&rest, orig).map(|syn| {
            println!("{}", syn.render_highlighted_slice());
        }),
        "classes" => run_synthesis(&rest, orig).map(|syn| {
            println!("pktVar : {:?}", syn.classes.pkt_vars);
            println!("cfgVar : {:?}", syn.classes.cfg_vars);
            println!("oisVar : {:?}", syn.classes.ois_vars);
            println!("logVar : {:?}", syn.classes.log_vars);
        }),
        "paths" => run_synthesis(&rest, orig).map(|syn| {
            for (i, p) in syn.exploration.paths.iter().enumerate() {
                println!("path {i}: {}", p.canonical());
            }
        }),
        "fsm" => run_synthesis(&rest, orig).map(|syn| {
            let fsm = nfactor::model::ModelFsm::from_model(&syn.model);
            println!("{}", fsm.to_dot());
        }),
        "metrics" => run_synthesis(&rest, orig).map(|syn| {
            let m = &syn.metrics;
            println!("LoC orig       : {}", m.loc_orig);
            println!("LoC slice      : {}", m.loc_slice);
            println!("LoC path (max) : {}", m.loc_path);
            println!("slicing time   : {:?}", m.slicing_time);
            println!("EP slice       : {}", m.ep_slice);
            println!("SE time slice  : {:?}", m.se_time_slice);
            println!("EP orig        : {}", m.ep_orig_str());
            match m.se_time_orig {
                Some(t) => println!("SE time orig   : {t:?}"),
                None => println!("SE time orig   : - (pass --orig to measure)"),
            }
        }),
        "lint" => {
            let r: Result<bool, String> = (|| {
                let (name, src) = load_source(&rest)?;
                let report = nfactor::lint::lint_source(&name, &src)?;
                if json {
                    use nfactor::support::json::ToJson;
                    println!("{}", report.to_json().render_pretty());
                } else {
                    print!("{}", report.render_text());
                }
                Ok(report.has_errors())
            })();
            match r {
                // Exit non-zero iff an error-severity diagnostic fired.
                Ok(false) => Ok(()),
                Ok(true) => return ExitCode::FAILURE,
                Err(e) => Err(e),
            }
        }
        "test" => run_synthesis(&rest, orig).and_then(|syn| {
            let report =
                nfactor::verify::compliance_test(&syn).map_err(|e| e.to_string())?;
            println!("{report}");
            for (i, t) in report.tests.iter().enumerate() {
                println!(
                    "  test {i}: entry {:?}, {} setup, probe {}, expect {}",
                    t.target,
                    t.setup.len(),
                    t.probe,
                    if t.expect_forward { "FORWARD" } else { "DROP" }
                );
            }
            if report.compliant() {
                Ok(())
            } else {
                Err(format!("compliance violations: {:?}", report.violations))
            }
        }),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("nfactor: {e}");
            ExitCode::FAILURE
        }
    }
}
