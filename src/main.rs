//! The `nfactor` command-line tool.
//!
//! ```text
//! nfactor synthesize <file.nfl | --corpus name>   # synthesize & print the model
//! nfactor export     <file.nfl | --corpus name>   # machine-readable .nfm model
//! nfactor slice      <file.nfl | --corpus name>   # Figure-1-style highlighted slice
//! nfactor classes    <file.nfl | --corpus name>   # Table-1 variable classification
//! nfactor paths      <file.nfl | --corpus name>   # execution paths of the slice
//! nfactor fsm        <file.nfl | --corpus name>   # Graphviz dot of the model FSM
//! nfactor metrics    <file.nfl | --corpus name>   # Table-2 row (add --orig for the slow column)
//! nfactor test       <file.nfl | --corpus name>   # model-guided compliance tests
//! nfactor lint       <file.nfl | --corpus name>   # NFL0xx diagnostics + sharding verdict (--json for machine output)
//! nfactor fuzz       [--seed N] [--cases N]       # seeded crash/differential fuzzing of the whole pipeline
//! nfactor corpus                                  # list bundled corpus NFs
//! nfactor json-check <file.json>                  # validate a JSON file (used by scripts/verify.sh)
//! ```
//!
//! Synthesis-based commands accept `--timeout-ms N` and `--max-paths N`,
//! which bound the run with a [`Budget`](nfactor::support::budget::Budget);
//! on exhaustion the model is returned partial and stamped `Truncated`
//! rather than hanging. `synthesize --json` prints the model as JSON.
//!
//! Every command also takes the observability flags, which attach an
//! [`nf-trace`](nfactor::trace) [`Tracer`](nfactor::trace::Tracer) to
//! the run:
//!
//! * `--trace-json FILE` — write Chrome trace-event JSON (one span per
//!   Algorithm-1 stage, nested symex/slicer/lint spans; open it in
//!   `chrome://tracing` or Perfetto);
//! * `--metrics` — print the sorted name→value metric table to stderr;
//! * `--metrics-json FILE` — write the metrics registry as JSON,
//!   including the `pipeline.truncated` counter and budget-exhaustion
//!   reason label when the model is partial.
//!
//! This is the workflow the paper proposes for NF vendors: run the tool
//! on proprietary NF code, ship only the resulting model to operators.

use nfactor::core::{synthesize, Options, Synthesis};
use std::io::Write;
use std::process::ExitCode;

/// Write `text` (plus `\n` when `nl`) to stdout, exiting quietly if the
/// reader has gone away (`nfactor ... | head` closes the pipe early —
/// that is not an error worth unwinding over).
fn emit(text: &str, nl: bool) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let r = if nl {
        writeln!(out, "{text}")
    } else {
        write!(out, "{text}")
    };
    if r.is_err() {
        std::process::exit(0);
    }
}

fn outln(text: impl AsRef<str>) {
    emit(text.as_ref(), true);
}

fn out(text: impl AsRef<str>) {
    emit(text.as_ref(), false);
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: nfactor <synthesize|export|slice|classes|paths|fsm|metrics|test|lint> \
         <file.nfl | --corpus NAME> [--orig] [--json] [--timeout-ms N] [--max-paths N]\n       \
         nfactor fuzz [--seed N] [--cases N]\n       nfactor corpus\n       \
         nfactor json-check <file.json>\n\
         observability (any command): [--trace-json FILE] [--metrics] [--metrics-json FILE]"
    );
    ExitCode::from(2)
}

/// Remove `flag N` from `args`, returning the parsed `N` when present.
fn take_num_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    let raw = args.remove(i + 1);
    args.remove(i);
    raw.parse::<u64>()
        .map(Some)
        .map_err(|_| format!("{flag}: expected a non-negative integer, got `{raw}`"))
}

/// Remove `flag VALUE` from `args`, returning `VALUE` when present.
fn take_str_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Ok(Some(value))
}

fn corpus_source(name: &str) -> Option<String> {
    nfactor::corpus::default_corpus()
        .into_iter()
        .find(|nf| nf.name == name)
        .map(|nf| nf.source)
}

fn load_source(args: &[String]) -> Result<(String, String), String> {
    match args {
        [flag, name, ..] if flag == "--corpus" => corpus_source(name)
            .map(|s| (name.clone(), s))
            .ok_or_else(|| format!("unknown corpus NF `{name}` (try `nfactor corpus`)")),
        [path, ..] => std::fs::read_to_string(path)
            .map(|s| (path.clone(), s))
            .map_err(|e| format!("{path}: {e}")),
        [] => Err("missing input (file path or --corpus NAME)".into()),
    }
}

fn run_synthesis(args: &[String], opts: &Options) -> Result<Synthesis, String> {
    let (name, src) = load_source(args)?;
    synthesize(&name, &src, opts).map_err(|e| e.to_string())
}

fn run_fuzz(mut args: Vec<String>, tracer: &nfactor::trace::Tracer) -> Result<bool, String> {
    let seed = take_num_flag(&mut args, "--seed")?.unwrap_or(0);
    let cases = take_num_flag(&mut args, "--cases")?.unwrap_or(500) as usize;
    if let Some(extra) = args.first() {
        return Err(format!("fuzz: unexpected argument `{extra}`"));
    }
    let cfg = nfactor::fuzz::FuzzConfig {
        seed,
        cases,
        ..nfactor::fuzz::FuzzConfig::default()
    };
    let report = nfactor::fuzz::run_traced(&cfg, tracer);
    outln(report.summary());
    for f in &report.findings {
        outln(format!("--- case {} [{}] minimized input ---", f.case, f.kind));
        outln(&f.input);
    }
    Ok(report.clean())
}

/// Write the requested observability outputs once the command has run.
fn emit_observability(
    tracer: &nfactor::trace::Tracer,
    trace_path: Option<&str>,
    metrics_path: Option<&str>,
    show_metrics: bool,
) -> Result<(), String> {
    if let Some(path) = trace_path {
        std::fs::write(path, tracer.trace_json().render_pretty())
            .map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = metrics_path {
        std::fs::write(path, tracer.metrics().to_json().render_pretty())
            .map_err(|e| format!("{path}: {e}"))?;
    }
    if show_metrics {
        eprint!("{}", tracer.metrics().render_table());
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return usage();
    };
    let orig = argv.iter().any(|a| a == "--orig");
    let json = argv.iter().any(|a| a == "--json");
    let show_metrics = argv.iter().any(|a| a == "--metrics");
    let mut rest: Vec<String> = argv[1..]
        .iter()
        .filter(|a| *a != "--orig" && *a != "--json" && *a != "--metrics")
        .cloned()
        .collect();
    let (opts, trace_path, metrics_path) = match (|| -> Result<
        (Options, Option<String>, Option<String>),
        String,
    > {
        let trace_path = take_str_flag(&mut rest, "--trace-json")?;
        let metrics_path = take_str_flag(&mut rest, "--metrics-json")?;
        let mut budget = nfactor::support::budget::Budget::unlimited();
        if let Some(ms) = take_num_flag(&mut rest, "--timeout-ms")? {
            budget = budget.with_timeout_ms(ms);
        }
        if let Some(n) = take_num_flag(&mut rest, "--max-paths")? {
            budget = budget.with_max_paths(n as usize);
        }
        // Only attach a sink when some output was requested; otherwise
        // the pipeline runs with the (near-free) disabled tracer.
        let tracer = if trace_path.is_some() || metrics_path.is_some() || show_metrics {
            nfactor::trace::Tracer::enabled()
        } else {
            nfactor::trace::Tracer::disabled()
        };
        let opts = Options {
            measure_original: orig,
            budget,
            tracer,
            ..Options::default()
        };
        Ok((opts, trace_path, metrics_path))
    })() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("nfactor: {e}");
            return ExitCode::from(2);
        }
    };
    let tracer = opts.tracer.clone();
    // Non-zero exit without an error message (lint errors, fuzz
    // findings, compliance violations); observability still emits.
    let mut soft_fail = false;
    let result: Result<(), String> = match cmd.as_str() {
        "corpus" => {
            for nf in nfactor::corpus::default_corpus() {
                let loc = nfactor::lang::parse(&nf.source)
                    .map(|p| p.loc())
                    .unwrap_or(0);
                outln(format!("{:<12} {:>5} LoC", nf.name, loc));
            }
            Ok(())
        }
        "fuzz" => match run_fuzz(rest, &tracer) {
            Ok(clean) => {
                soft_fail = !clean;
                Ok(())
            }
            Err(e) => Err(e),
        },
        "json-check" => (|| -> Result<(), String> {
            let path = rest
                .first()
                .ok_or_else(|| "json-check: missing file argument".to_string())?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            nfactor::support::json::Value::parse(&text)
                .map_err(|e| format!("{path}: {e}"))?;
            Ok(())
        })(),
        "synthesize" => run_synthesis(&rest, &opts).map(|syn| {
            if json {
                use nfactor::support::json::ToJson;
                outln(syn.model.to_json().render_pretty());
            } else {
                outln(syn.render_model());
            }
        }),
        "export" => run_synthesis(&rest, &opts).map(|syn| {
            // The vendor workflow: print the machine-readable .nfm model
            // (redirect to a file and ship it to the operator).
            out(nfactor::model::to_text(&syn.model));
        }),
        "slice" => run_synthesis(&rest, &opts).map(|syn| {
            outln(syn.render_highlighted_slice());
        }),
        "classes" => run_synthesis(&rest, &opts).map(|syn| {
            outln(format!("pktVar : {:?}", syn.classes.pkt_vars));
            outln(format!("cfgVar : {:?}", syn.classes.cfg_vars));
            outln(format!("oisVar : {:?}", syn.classes.ois_vars));
            outln(format!("logVar : {:?}", syn.classes.log_vars));
        }),
        "paths" => run_synthesis(&rest, &opts).map(|syn| {
            for (i, p) in syn.exploration.paths.iter().enumerate() {
                outln(format!("path {i}: {}", p.canonical()));
            }
        }),
        "fsm" => run_synthesis(&rest, &opts).map(|syn| {
            let fsm = nfactor::model::ModelFsm::from_model(&syn.model);
            outln(fsm.to_dot());
        }),
        "metrics" => run_synthesis(&rest, &opts).map(|syn| {
            let m = &syn.metrics;
            outln(format!("LoC orig       : {}", m.loc_orig));
            outln(format!("LoC slice      : {}", m.loc_slice));
            outln(format!("LoC path (max) : {}", m.loc_path));
            outln(format!("slicing time   : {:?}", m.slicing_time));
            outln(format!("EP slice       : {}", m.ep_slice));
            outln(format!("SE time slice  : {:?}", m.se_time_slice));
            outln(format!("EP orig        : {}", m.ep_orig_str()));
            match m.se_time_orig {
                Some(t) => outln(format!("SE time orig   : {t:?}")),
                None => outln("SE time orig   : - (pass --orig to measure)"),
            }
        }),
        "lint" => {
            let r: Result<bool, String> = (|| {
                let (name, src) = load_source(&rest)?;
                let report = nfactor::lint::lint_source_traced(&name, &src, &tracer)?;
                if json {
                    use nfactor::support::json::ToJson;
                    outln(report.to_json().render_pretty());
                } else {
                    out(report.render_text());
                }
                Ok(report.has_errors())
            })();
            match r {
                // Exit non-zero iff an error-severity diagnostic fired.
                Ok(has_errors) => {
                    soft_fail = has_errors;
                    Ok(())
                }
                Err(e) => Err(e),
            }
        }
        "test" => run_synthesis(&rest, &opts).and_then(|syn| {
            let report =
                nfactor::verify::compliance_test(&syn).map_err(|e| e.to_string())?;
            outln(format!("{report}"));
            for (i, t) in report.tests.iter().enumerate() {
                outln(format!(
                    "  test {i}: entry {:?}, {} setup, probe {}, expect {}",
                    t.target,
                    t.setup.len(),
                    t.probe,
                    if t.expect_forward { "FORWARD" } else { "DROP" }
                ));
            }
            if report.compliant() {
                Ok(())
            } else {
                Err(format!("compliance violations: {:?}", report.violations))
            }
        }),
        _ => return usage(),
    };
    // Trace/metrics files are written even when the command failed —
    // a truncated or failing run is exactly when the numbers matter.
    if let Err(e) = emit_observability(
        &tracer,
        trace_path.as_deref(),
        metrics_path.as_deref(),
        show_metrics,
    ) {
        eprintln!("nfactor: {e}");
        return ExitCode::FAILURE;
    }
    match result {
        Ok(()) if soft_fail => ExitCode::FAILURE,
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("nfactor: {e}");
            ExitCode::FAILURE
        }
    }
}
