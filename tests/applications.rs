//! Integration: the §4 applications end to end.

use nfactor::core::Pipeline;
use nfactor::interp::{Value, ValueKey};
use nfactor::model::ModelState;
use nfactor::packet::Field;
use nfactor::verify::hsa::{HeaderSpace, IntervalSet, StatefulNf};
use nfactor::verify::{compliance_test, recommend_order};

#[test]
fn composition_answers_the_papers_question() {
    let fw = Pipeline::builder()
        .name("FW")
        .build()
        .unwrap()
        .synthesize(&nfactor::corpus::firewall::source())
    .unwrap();
    let ids = Pipeline::builder()
        .name("IDS")
        .build()
        .unwrap()
        .synthesize(&nfactor::corpus::snort::source(6))
    .unwrap();
    let lb = Pipeline::builder()
        .name("LB")
        .build()
        .unwrap()
        .synthesize(&nfactor::corpus::fig1_lb::source())
    .unwrap();
    let report = recommend_order(&[("FW", &fw.model), ("IDS", &ids.model), ("LB", &lb.model)]);
    assert_eq!(report.order, vec!["FW", "IDS", "LB"], "{report}");
    assert!(!report.has_conflict);
}

#[test]
fn stateful_reachability_distinguishes_states() {
    let syn = Pipeline::builder()
        .name("fw")
        .build()
        .unwrap()
        .synthesize(&nfactor::corpus::firewall::source())
    .unwrap();
    let base_state = ModelState::default()
        .with_config("PROTECTED_NET", Value::Int(0x0a000000))
        .with_config("PROTECTED_MASK", Value::Int(0xff000000))
        .with_config("ALLOW_PORT", Value::Int(80))
        .with_scalar("out_count", Value::Int(0))
        .with_scalar("in_count", Value::Int(0))
        .with_scalar("blocked_count", Value::Int(0))
        .with_map("pinholes");
    let fresh = StatefulNf {
        model: syn.model.clone(),
        state: base_state.clone(),
    };
    let mut opened_state = base_state;
    opened_state.maps.get_mut("pinholes").unwrap().insert(
        ValueKey::Tuple(vec![0x08080808, 443, 0x0a000005, 5000]),
        Value::Int(1),
    );
    let opened = StatefulNf {
        model: syn.model,
        state: opened_state,
    };
    let reply = HeaderSpace::all()
        .with_point(Field::IpSrc, 0x08080808)
        .with_point(Field::TcpSport, 443)
        .with_point(Field::IpDst, 0x0a000005)
        .with_point(Field::TcpDport, 5000);
    assert!(fresh.reachable_through(&reply).is_empty());
    assert!(!opened.reachable_through(&reply).is_empty());
    // Stateless fraction: outside → inside only via the allow port.
    let outside = HeaderSpace::all().with(
        Field::IpSrc,
        IntervalSet::range(0x0b00_0000, 0xffff_ffff),
    );
    for space in fresh.reachable_through(&outside) {
        assert!(space.get(Field::TcpDport).contains(80));
        assert_eq!(space.get(Field::TcpDport).size(), 1);
    }
}

#[test]
fn compliance_holds_for_the_corpus() {
    for (name, src) in [
        ("fw", nfactor::corpus::firewall::source()),
        ("nat", nfactor::corpus::nat::source()),
        ("ids", nfactor::corpus::snort::source(6)),
        ("lb", nfactor::corpus::fig1_lb::source()),
    ] {
        let syn = Pipeline::builder()
            .name(name)
            .build()
            .unwrap()
            .synthesize(&src).unwrap();
        let report = compliance_test(&syn).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            report.compliant(),
            "{name}: {report} {:?}",
            report.violations
        );
        assert!(!report.tests.is_empty(), "{name}: no tests generated");
    }
}

#[test]
fn model_fsm_drives_state_setup() {
    // The NAT's FSM has a mutating transition (install) that the test
    // generator uses as the setup donor for the state-guarded entries.
    let syn = Pipeline::builder()
        .name("nat")
        .build()
        .unwrap()
        .synthesize(&nfactor::corpus::nat::source())
        .unwrap();
    let fsm = nfactor::model::ModelFsm::from_model(&syn.model);
    assert!(fsm.mutating_transitions().count() >= 1);
    let report = compliance_test(&syn).unwrap();
    assert!(
        report.tests.iter().any(|t| !t.setup.is_empty()),
        "some test required state setup"
    );
}
