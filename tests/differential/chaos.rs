//! The chaos differential: under a deterministic fault plan, every
//! packet the run does *not* exclude (quarantined at eval or dropped at
//! dispatch) must behave byte-identically to a fault-free run over the
//! surviving input — same outputs, same merged state — for every corpus
//! NF, every backend, shard counts {1, 4}, threaded and sequential
//! modes. Fault containment must be invisible to the packets that
//! survive it.
//!
//! The reference is the *same* engine's single-shard run over the input
//! with the excluded seqs filtered out, so the comparison is positional
//! (reference seqs shift left past each hole) and state equality is
//! full: both sides run the same backend.

use crate::harness::{engines_from_synthesis, mode_config, DiffEngine, Mode};
use nfactor::packet::{Packet, PacketGen};
use nfactor::shard::Backend;
use nfactor::shard::{RunConfig, SliceSource};
use nfactor::support::fault::FaultPlan;

const PACKETS: usize = 250;
const SEED: u64 = 0x7717;

/// Fixed plans covering every fault kind, wildcard shards, points that
/// do and do not fire at low shard counts, bursts absorbed by retry
/// (`:64`) and bursts that exhaust the deadline into a drop.
const PLANS: &[&str] = &[
    "panic@1:3",
    "err@0:0,err@0:1,err@0:2,panic@*:7",
    "delay@*:5:50,garbage@1:2",
    "ring-overflow@0:1,ring-overflow@1:4:64",
    "panic@0:2,err@1:3,garbage@2:1,ring-overflow@0:5",
];

fn run_under_faults(de: &DiffEngine, mode: Mode, packets: &[Packet], faults: &FaultPlan)
    -> Result<nfactor::shard::ShardRun, nfactor::shard::ShardError> {
    let cfg = mode_config(mode).with_faults(faults.clone());
    de.engine.run_with(SliceSource::new(packets), &cfg)
}

fn chaos(name: &str, src: &str) {
    let (_, engines) = engines_from_synthesis(
        name,
        src,
        &[Backend::Interp, Backend::Model, Backend::Compiled],
        &[1, 4],
    );
    let packets = PacketGen::new(SEED).batch(PACKETS);
    for spec in PLANS {
        let faults = FaultPlan::parse(spec)
            .unwrap_or_else(|e| panic!("{name}: plan `{spec}`: {e}"));
        for de in &engines {
            for mode in [Mode::Threaded, Mode::Sequential] {
                let run = run_under_faults(de, mode, &packets, &faults).unwrap_or_else(|e| {
                    panic!("{name}: {}/{mode:?} under `{spec}`: {e}", de.label)
                });
                // Accounting: nothing vanishes without a ledger entry.
                assert_eq!(
                    run.offered(),
                    packets.len() as u64,
                    "{name}: {}/{mode:?} under `{spec}`: \
                     processed + quarantined + dropped != offered",
                    de.label
                );
                // The survivors must match a fault-free run over the
                // same surviving input, positionally.
                let excluded = run.excluded_seqs();
                let kept: Vec<Packet> = packets
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| excluded.binary_search(&(*i as u64)).is_err())
                    .map(|(_, p)| p.clone())
                    .collect();
                let reference = de
                    .engine
                    .run_with(SliceSource::new(&kept), &RunConfig::single())
                    .unwrap_or_else(|e| {
                    panic!("{name}: {} fault-free reference: {e}", de.label)
                });
                assert_eq!(
                    run.outputs.len(),
                    reference.outputs.len(),
                    "{name}: {}/{mode:?} under `{spec}`: surviving output count",
                    de.label
                );
                for (j, (got, want)) in
                    run.outputs.iter().zip(&reference.outputs).enumerate()
                {
                    assert_eq!(
                        (&got.outputs, got.dropped),
                        (&want.outputs, want.dropped),
                        "{name}: {}/{mode:?} under `{spec}`: surviving packet #{j} \
                         (arrival seq {}) diverges from the fault-free reference",
                        de.label,
                        got.seq
                    );
                }
                assert_eq!(
                    run.merged, reference.merged,
                    "{name}: {}/{mode:?} under `{spec}`: merged state diverges \
                     from the fault-free reference",
                    de.label
                );
            }
        }
    }
}

#[test]
fn chaos_firewall() {
    chaos("firewall", &nfactor::corpus::firewall::source());
}

#[test]
fn chaos_portknock() {
    chaos("portknock", &nfactor::corpus::portknock::source());
}

#[test]
fn chaos_ratelimiter() {
    chaos("ratelimiter", &nfactor::corpus::ratelimiter::source());
}

#[test]
fn chaos_router() {
    chaos("router", &nfactor::corpus::router::source());
}

#[test]
fn chaos_snort() {
    chaos("snort", &nfactor::corpus::snort::source(25));
}

#[test]
fn chaos_fig1_lb() {
    chaos("fig1-lb", &nfactor::corpus::fig1_lb::source());
}

#[test]
fn chaos_nat() {
    chaos("nat", &nfactor::corpus::nat::source());
}

#[test]
fn chaos_balance() {
    chaos("balance", &nfactor::corpus::balance::source(6));
}
