//! The reusable differential harness.
//!
//! A differential check is always the same shape: build several
//! engines for the same NF (different backends, different shard
//! counts), run each in one or more modes over the same packet stream,
//! and assert that every run is observationally identical — the same
//! per-packet outputs in arrival order and the same merged final
//! state. [`for_each_backend_pair`] is that shape, once.

use nfactor::core::{Pipeline, Synthesis};
use nfactor::interp::Value;
use nfactor::packet::Packet;
use nfactor::shard::{Backend, RunConfig, ShardEngine, ShardRun, SliceSource};
use std::collections::BTreeMap;

/// How to drive an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `RunMode::Threaded` — real worker threads over SPSC rings.
    Threaded,
    /// `RunMode::Sequential` — same dispatch, one thread.
    Sequential,
    /// `RunMode::Single` — the one-shard reference.
    Single,
}

/// Which part of the merged state to compare.
pub enum StateScope {
    /// Every merged variable must agree.
    Full,
    /// Only the named variables must agree. Cross-backend comparisons
    /// use this with the model's state variables: the interpreter also
    /// advances state the model provably prunes (e.g. log-only
    /// counters that never influence output), which is exactly the
    /// abstraction the model is allowed to make.
    Restrict(Vec<String>),
}

/// A labelled engine under test.
pub struct DiffEngine {
    /// Human-readable `backend/shards` label for failure messages.
    pub label: String,
    /// The engine.
    pub engine: ShardEngine,
}

pub fn backend_label(b: Backend) -> &'static str {
    match b {
        Backend::Interp => "interp",
        Backend::Model => "model",
        Backend::Compiled => "compiled",
    }
}

/// Synthesize `src` once and build an engine per backend × shard
/// count, all from the same [`Synthesis`] (so every engine shares one
/// placement plan and one initial state).
pub fn engines_from_synthesis(
    name: &str,
    src: &str,
    backends: &[Backend],
    shard_counts: &[usize],
) -> (Synthesis, Vec<DiffEngine>) {
    let base = Pipeline::builder()
        .name(name)
        .build()
        .unwrap_or_else(|e| panic!("{name}: builder: {e}"));
    let syn = base
        .synthesize(src)
        .unwrap_or_else(|e| panic!("{name}: synthesize: {e}"));
    let mut engines = Vec::new();
    for &shards in shard_counts {
        let pipeline = Pipeline::builder()
            .name(name)
            .shards(shards)
            .build()
            .unwrap_or_else(|e| panic!("{name}: builder: {e}"));
        for &backend in backends {
            engines.push(DiffEngine {
                label: format!("{}/{shards}", backend_label(backend)),
                engine: ShardEngine::from_synthesis(&pipeline, &syn, backend)
                    .unwrap_or_else(|e| panic!("{name}: build {backend:?}: {e}")),
            });
        }
    }
    (syn, engines)
}

/// The [`RunConfig`] a [`Mode`] maps to. The differential suites run
/// with skew-aware rebalancing enabled: any divert the dispatcher opens
/// must be invisible in outputs and merged state, so the suites prove
/// the rebalancer sound as a side effect.
pub fn mode_config(mode: Mode) -> RunConfig {
    match mode {
        Mode::Threaded => RunConfig::threaded(),
        Mode::Sequential => RunConfig::sequential(),
        Mode::Single => RunConfig::single(),
    }
    .with_rebalance(true)
}

pub fn run_mode(name: &str, de: &DiffEngine, mode: Mode, packets: &[Packet]) -> ShardRun {
    let r = de
        .engine
        .run_with(SliceSource::new(packets), &mode_config(mode));
    r.unwrap_or_else(|e| panic!("{name}: {}/{mode:?}: {e}", de.label))
}

fn scoped_state(
    merged: &BTreeMap<String, Value>,
    scope: &StateScope,
) -> BTreeMap<String, Value> {
    match scope {
        StateScope::Full => merged.clone(),
        StateScope::Restrict(names) => merged
            .iter()
            .filter(|(k, _)| names.contains(k))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect(),
    }
}

/// Run every `(engine, mode)` combination over `packets` and assert
/// each pair observationally identical — outputs against the first
/// run, scoped state against the first run (equality is transitive, so
/// first-vs-each covers all pairs).
pub fn for_each_backend_pair(
    name: &str,
    engines: &[DiffEngine],
    modes: &[Mode],
    packets: &[Packet],
    scope: &StateScope,
) {
    let mut outcomes = Vec::new();
    for de in engines {
        for &mode in modes {
            let run = run_mode(name, de, mode, packets);
            assert_eq!(
                run.total_pkts(),
                packets.len() as u64,
                "{name}: {}/{mode:?} lost packets",
                de.label
            );
            outcomes.push((
                format!("{}/{mode:?}", de.label),
                run.output_signature(),
                scoped_state(&run.merged, scope),
            ));
        }
    }
    let (ref_label, ref_sig, ref_state) = &outcomes[0];
    for (label, sig, state) in &outcomes[1..] {
        assert_signature_eq(name, ref_label, ref_sig, label, sig);
        assert_eq!(
            state, ref_state,
            "{name}: merged state diverges: {label} vs {ref_label}"
        );
    }
}

/// Pinpoint the first diverging packet instead of dumping two full
/// signatures.
fn assert_signature_eq(
    name: &str,
    a_label: &str,
    a: &[(u64, Vec<Packet>, bool)],
    b_label: &str,
    b: &[(u64, Vec<Packet>, bool)],
) {
    if a == b {
        return;
    }
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(
            x, y,
            "{name}: outputs diverge at seq {} ({b_label} vs {a_label})",
            x.0
        );
    }
    panic!(
        "{name}: output count diverges: {b_label} has {} vs {a_label} {}",
        b.len(),
        a.len()
    );
}
