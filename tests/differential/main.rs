//! Differential oracles over the sharded runtime and its backends.
//!
//! * [`harness`] — the reusable machinery: build engines per
//!   backend × shard count, run them in every mode, and assert
//!   pairwise-identical observable behaviour (per-packet outputs in
//!   arrival order + merged final state).
//! * [`sharded`] — sharded ≡ single-threaded for every corpus NF on the
//!   interpreter backend (the PR-5 oracle, now harness-driven), plus
//!   the pinned known divergence for mirror-pair single-field keys.
//! * [`three_way`] — interpreter ≡ model ≡ compiled for every corpus
//!   NF, across shard counts {1, 4} and both run modes.
//! * [`chaos`] — under deterministic fault injection, the packets a run
//!   does not quarantine or drop behave byte-identically to a
//!   fault-free run over the surviving input.
//! * [`stream`] — a 100k-packet binary `.nfw` trace replayed through
//!   the batched streaming path is indistinguishable from the same
//!   packets run from an in-memory slice, with rebalancing off and on.

mod chaos;
mod harness;
mod sharded;
mod stream;
mod three_way;

use nfactor::packet::{Field, PacketGen};
use nfactor::shard::dispatch_values;
use nfactor::support::check::{check, tuple3, uint_range, Config};

/// Property: the dispatch hash is a function of the dispatch fields
/// alone — mutating any non-key byte of the packet (TTL, sequence
/// numbers, payload, ethernet addresses) never re-steers it.
#[test]
fn dispatch_ignores_non_key_bytes() {
    use nfactor::lint::DispatchKey;
    let five_tuple = DispatchKey::new(
        vec![
            Field::IpSrc,
            Field::IpDst,
            Field::IpProto,
            Field::TcpSport,
            Field::TcpDport,
        ],
        false,
    );
    let non_key = [
        Field::EthSrc,
        Field::EthDst,
        Field::IpTtl,
        Field::IpId,
        Field::TcpSeq,
        Field::TcpAck,
        Field::PayloadByte0,
        Field::PayloadByte1,
    ];
    let (cfg, gen) = (
        Config::with_cases(128),
        tuple3(
            uint_range(0, u64::MAX),
            uint_range(0, non_key.len() as u64 - 1),
            uint_range(0, 1 << 16),
        ),
    );
    check("dispatch_ignores_non_key_bytes", &cfg, &gen, |&(seed, which, raw)| {
        let pkt = PacketGen::new(seed).next_packet();
        let before = dispatch_values(&five_tuple, &pkt);
        let field = non_key[which as usize];
        let mut mutated = pkt.clone();
        let value = raw % (field.max_value() + 1).max(1);
        if mutated.set(field, value).is_ok() {
            assert_eq!(
                before,
                dispatch_values(&five_tuple, &mutated),
                "mutating {field:?} re-steered the packet"
            );
        }
    });
}
