//! The sharding differential oracle: for every corpus NF, a sharded
//! run (4 worker threads, state placed per the lint's ShardingReport)
//! must be observationally identical to the single-threaded
//! interpreter — same per-packet outputs in arrival order, same merged
//! final state.
//!
//! The per-flow NFs (firewall, portknock, ratelimiter, router, snort)
//! exercise partitioned dispatch — including portknock/ratelimiter's
//! source-IP-only key and the firewall's direction-symmetric pinhole
//! key; the shared NFs (fig1-lb, nat, balance) exercise the
//! ticket-ordered global-lock fallback.

use crate::harness::{for_each_backend_pair, DiffEngine, Mode, StateScope};
use nfactor::core::Pipeline;
use nfactor::packet::{Field, PacketGen};
use nfactor::shard::{Backend, ShardEngine};

const SHARDS: usize = 4;
const PACKETS: usize = 400;

fn oracle(name: &str, src: &str, expect_partitioned: bool) {
    let pipeline = Pipeline::builder()
        .name(name)
        .shards(SHARDS)
        .build()
        .unwrap_or_else(|e| panic!("{name}: builder: {e}"));
    let engine = ShardEngine::from_source(&pipeline, src, Backend::Interp)
        .unwrap_or_else(|e| panic!("{name}: build: {e}"));
    assert_eq!(
        engine.plan().partitioned(),
        expect_partitioned,
        "{name}: unexpected plan mode: {}",
        engine.plan().render_table()
    );
    let packets = PacketGen::new(0xD1FF).batch(PACKETS);
    for_each_backend_pair(
        name,
        &[DiffEngine {
            label: format!("interp/{SHARDS}"),
            engine,
        }],
        // Single first: it is the reference the other two must match.
        &[Mode::Single, Mode::Threaded, Mode::Sequential],
        &packets,
        &StateScope::Full,
    );
}

#[test]
fn shard_differential_firewall() {
    oracle("firewall", &nfactor::corpus::firewall::source(), true);
}

#[test]
fn shard_differential_portknock() {
    oracle("portknock", &nfactor::corpus::portknock::source(), true);
}

#[test]
fn shard_differential_ratelimiter() {
    oracle("ratelimiter", &nfactor::corpus::ratelimiter::source(), true);
}

#[test]
fn shard_differential_router() {
    oracle("router", &nfactor::corpus::router::source(), true);
}

#[test]
fn shard_differential_snort() {
    oracle("snort", &nfactor::corpus::snort::source(25), true);
}

#[test]
fn shard_differential_fig1_lb() {
    oracle("fig1-lb", &nfactor::corpus::fig1_lb::source(), false);
}

#[test]
fn shard_differential_nat() {
    oracle("nat", &nfactor::corpus::nat::source(), false);
}

#[test]
fn shard_differential_balance() {
    oracle("balance", &nfactor::corpus::balance::source(6), false);
}

/// The model backend shards identically: the synthesized ratelimiter
/// model run on 4 shards matches its own single-threaded evaluation.
#[test]
fn shard_differential_model_backend() {
    let pipeline = Pipeline::builder()
        .name("ratelimiter")
        .shards(SHARDS)
        .build()
        .expect("builder");
    let engine = ShardEngine::from_source(
        &pipeline,
        &nfactor::corpus::ratelimiter::source(),
        Backend::Model,
    )
    .expect("synthesize + build");
    for_each_backend_pair(
        "ratelimiter",
        &[DiffEngine {
            label: format!("model/{SHARDS}"),
            engine,
        }],
        &[Mode::Single, Mode::Threaded],
        &PacketGen::new(99).batch(200),
        &StateScope::Full,
    );
}

/// A map written under `pkt.ip.src` but probed under `pkt.ip.dst` is
/// an *open* mirror pair: the write for endpoint X and the probe for
/// endpoint X see different other-endpoints, so no flow-tuple hash can
/// co-locate them. The lint demotes such maps to `shared` (global
/// lock), and under that plan the sharded run must equal the
/// single-threaded reference — including the adversarial packet pair
/// that used to diverge under the old mirror-canonicalised dispatch.
#[test]
fn mirror_pair_single_field_key_is_shared_and_consistent() {
    let src = r#"
        state m = map();
        fn cb(pkt: packet) {
            if pkt.ip.dst in m { send(pkt); } else { drop(pkt); }
            m[pkt.ip.src] = 1;
        }
        fn main() { sniff(cb); }
    "#;
    let pipeline = Pipeline::builder().name("mirror").shards(SHARDS).build().unwrap();
    let engine = ShardEngine::from_source(&pipeline, src, Backend::Interp).unwrap();
    assert!(
        !engine.plan().partitioned(),
        "open mirror pairs must fall back to the shared plan: {}",
        engine.plan().render_table()
    );
    // The historical divergence witness: packet 1 (5 -> 3) records
    // m[5]; packet 2 (7 -> 5) probes m[5]. Under the old partitioned
    // plan these landed on different shards and the probe missed.
    let mut gen = PacketGen::new(1);
    let mut packets = Vec::new();
    for (s, d) in [(5u64, 3u64), (7, 5)] {
        let mut p = gen.next_packet();
        p.set(Field::IpSrc, s).unwrap();
        p.set(Field::IpDst, d).unwrap();
        packets.push(p);
    }
    packets.extend(PacketGen::new(0xD1FF).batch(PACKETS));
    for_each_backend_pair(
        "mirror",
        &[DiffEngine {
            label: format!("interp/{SHARDS}"),
            engine,
        }],
        &[Mode::Single, Mode::Threaded, Mode::Sequential],
        &packets,
        &StateScope::Full,
    );
}
