//! The streaming differential oracle: replaying a workload from a
//! binary `.nfw` trace file must be observationally identical to
//! running the same packets from an in-memory slice — same per-packet
//! outputs in arrival order, same merged final state — across shard
//! counts and with skew-aware rebalancing both off and on.
//!
//! This is the end-to-end check on the `.nfw` round trip (writer →
//! file → chunked reader) *through the engine*: the unit tests in
//! `nf-packet` prove the bytes survive, this suite proves the engine
//! cannot tell the two sources apart even while the rebalancer is
//! actively re-steering fresh flows.

use crate::harness::Mode;
use nfactor::core::Pipeline;
use nfactor::packet::{NfwReader, NfwWriter, PacketGen};
use nfactor::shard::{Backend, RunConfig, ShardEngine, SliceSource};

const PACKETS: usize = 100_000;
const SEED: u64 = 0x57EA4;

/// A throwaway `.nfw` path in the system temp dir, removed on drop so
/// a failing assertion does not leave 8 MB files behind.
struct TempTrace(std::path::PathBuf);

impl TempTrace {
    fn new(tag: &str) -> TempTrace {
        let mut p = std::env::temp_dir();
        p.push(format!("nfactor-stream-{}-{tag}.nfw", std::process::id()));
        TempTrace(p)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("temp path is utf-8")
    }
}

impl Drop for TempTrace {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn nfw_stream_matches_in_memory_slice() {
    // One trace file, shared by every configuration below.
    let trace = TempTrace::new("ratelimiter");
    let packets = PacketGen::new(SEED).batch(PACKETS);
    let mut writer = NfwWriter::create(trace.path(), SEED).expect("create .nfw");
    for pkt in &packets {
        writer.push(pkt).expect("push packet");
    }
    assert_eq!(writer.finish().expect("finish .nfw"), PACKETS as u64);

    let src = nfactor::corpus::ratelimiter::source();
    for shards in [1usize, 4] {
        let pipeline = Pipeline::builder()
            .name("ratelimiter")
            .shards(shards)
            .build()
            .expect("builder");
        let engine = ShardEngine::from_source(&pipeline, &src, Backend::Interp)
            .expect("build engine");
        for rebalance in [false, true] {
            for mode in [Mode::Threaded, Mode::Sequential] {
                let cfg = crate::harness::mode_config(mode).with_rebalance(rebalance);
                let label = format!("shards={shards} rebalance={rebalance} {mode:?}");

                let reader = NfwReader::open(trace.path()).expect("open .nfw");
                assert_eq!(reader.seed(), SEED);
                assert_eq!(reader.count(), PACKETS as u64);
                let from_file = engine
                    .run_with(reader, &cfg)
                    .unwrap_or_else(|e| panic!("{label}: file run: {e}"));

                let from_slice = engine
                    .run_with(SliceSource::new(&packets), &cfg)
                    .unwrap_or_else(|e| panic!("{label}: slice run: {e}"));

                assert_eq!(from_file.total_pkts(), PACKETS as u64, "{label}");
                assert_eq!(
                    from_file.output_signature(),
                    from_slice.output_signature(),
                    "{label}: outputs diverge between .nfw and slice"
                );
                assert_eq!(
                    from_file.merged, from_slice.merged,
                    "{label}: merged state diverges between .nfw and slice"
                );
            }
        }
    }
}

/// A sequential streaming run must also match `RunConfig::single` fed
/// from the same file — the batched streaming path introduces no
/// batch-boundary effects even against the unbatched reference.
#[test]
fn nfw_stream_matches_single_reference() {
    let trace = TempTrace::new("single-ref");
    let packets = PacketGen::new(SEED ^ 1).batch(20_000);
    let mut writer = NfwWriter::create(trace.path(), SEED ^ 1).expect("create .nfw");
    for pkt in &packets {
        writer.push(pkt).expect("push packet");
    }
    writer.finish().expect("finish .nfw");

    let src = nfactor::corpus::ratelimiter::source();
    let pipeline = Pipeline::builder()
        .name("ratelimiter")
        .shards(4)
        .build()
        .expect("builder");
    let engine =
        ShardEngine::from_source(&pipeline, &src, Backend::Interp).expect("build engine");

    let single = engine
        .run_with(NfwReader::open(trace.path()).expect("open"), &RunConfig::single())
        .expect("single run");
    let sequential = engine
        .run_with(
            NfwReader::open(trace.path()).expect("open"),
            &RunConfig::sequential().with_rebalance(true),
        )
        .expect("sequential run");
    assert_eq!(single.output_signature(), sequential.output_signature());
    assert_eq!(single.merged, sequential.merged);
}
