//! The three-way differential: for every corpus NF, the concrete
//! interpreter, the synthesized model, and the compiled decision-tree
//! engine must be observationally identical — same per-packet outputs
//! in arrival order, same final state — across shard counts {1, 4} and
//! both the threaded and sequential run modes.
//!
//! State comparison is scoped to the model's own state variables
//! (`state_scalars` ∪ `state_maps`): the interpreter also advances
//! variables the model provably prunes (log-only counters that never
//! influence forwarding), which is exactly the abstraction the model
//! is allowed to make.

use crate::harness::{engines_from_synthesis, for_each_backend_pair, Mode, StateScope};
use nfactor::packet::PacketGen;
use nfactor::shard::Backend;

const PACKETS: usize = 250;
const SEED: u64 = 0x7717;

fn three_way(name: &str, src: &str) {
    let (syn, engines) = engines_from_synthesis(
        name,
        src,
        &[Backend::Interp, Backend::Model, Backend::Compiled],
        &[1, 4],
    );
    let mut scope: Vec<String> = syn.model.state_scalars();
    scope.extend(syn.model.state_maps());
    for_each_backend_pair(
        name,
        &engines,
        &[Mode::Threaded, Mode::Sequential],
        &PacketGen::new(SEED).batch(PACKETS),
        &StateScope::Restrict(scope),
    );
}

#[test]
fn three_way_firewall() {
    three_way("firewall", &nfactor::corpus::firewall::source());
}

#[test]
fn three_way_portknock() {
    three_way("portknock", &nfactor::corpus::portknock::source());
}

#[test]
fn three_way_ratelimiter() {
    three_way("ratelimiter", &nfactor::corpus::ratelimiter::source());
}

#[test]
fn three_way_router() {
    three_way("router", &nfactor::corpus::router::source());
}

#[test]
fn three_way_snort() {
    three_way("snort", &nfactor::corpus::snort::source(25));
}

#[test]
fn three_way_fig1_lb() {
    three_way("fig1-lb", &nfactor::corpus::fig1_lb::source());
}

#[test]
fn three_way_nat() {
    three_way("nat", &nfactor::corpus::nat::source());
}

#[test]
fn three_way_balance() {
    three_way("balance", &nfactor::corpus::balance::source(6));
}
