//! Integration: the paper's §5 accuracy experiments, at full 1000-trial
//! strength, across the corpus.

use nfactor::core::accuracy::{differential_test, path_sets_equal};
use nfactor::core::Pipeline;

fn corpus() -> Vec<(&'static str, String)> {
    vec![
        ("fig1-lb", nfactor::corpus::fig1_lb::source()),
        ("balance", nfactor::corpus::balance::source(8)),
        ("snort", nfactor::corpus::snort::source(20)),
        ("nat", nfactor::corpus::nat::source()),
        ("firewall", nfactor::corpus::firewall::source()),
    ]
}

#[test]
fn thousand_random_packets_agree_everywhere() {
    for (name, src) in corpus() {
        let syn = Pipeline::builder()
            .name(name)
            .build()
            .unwrap()
            .synthesize(&src)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = differential_test(&syn, 2016, 1000)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            report.perfect(),
            "{name}: {}/{} agreed; first mismatches: {:?}",
            report.agreements,
            report.trials,
            report.mismatches
        );
    }
}

#[test]
fn path_sets_equal_everywhere() {
    for (name, src) in corpus() {
        let syn = Pipeline::builder()
            .name(name)
            .build()
            .unwrap()
            .synthesize(&src)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            path_sets_equal(&syn).unwrap_or_else(|e| panic!("{name}: {e}")),
            "{name}: slice and original disagree on forwarding paths"
        );
    }
}

#[test]
fn different_seeds_still_agree() {
    // The paper fixes no seed; agreement must be seed-independent.
    let syn = Pipeline::builder()
        .name("nat")
        .build()
        .unwrap()
        .synthesize(&nfactor::corpus::nat::source())
    .unwrap();
    for seed in [1u64, 7, 42, 99, 123456] {
        let report = differential_test(&syn, seed, 200).unwrap();
        assert!(report.perfect(), "seed {seed}: {:?}", report.mismatches);
    }
}

#[test]
fn stateful_agreement_over_long_runs() {
    // 2000 packets through the Figure 1 LB: the NAT tables grow and the
    // model must track every installed mapping.
    let syn = Pipeline::builder()
        .name("fig1-lb")
        .build()
        .unwrap()
        .synthesize(&nfactor::corpus::fig1_lb::source())
    .unwrap();
    let report = differential_test(&syn, 77, 2000).unwrap();
    assert!(report.perfect(), "{:?}", report.mismatches);
}
