//! Golden-file tests: the full synthesis pipeline over every corpus NF,
//! compared against checked-in renderings.
//!
//! Each golden file carries the Figure-6 rendering of the synthesized
//! model followed by its `.nfm` exchange-format text, so a diff in
//! either the synthesis pipeline or the printers shows up as a reviewable
//! text change. To refresh after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use nfactor::core::Pipeline;
use nfactor::model::to_text;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn check_golden(name: &str, src: &str) {
    let syn = Pipeline::builder()
        .name(name)
        .build()
        .unwrap()
        .synthesize(src)
        .unwrap_or_else(|e| panic!("pipeline failed on {name}: {e}"));
    let actual = format!(
        "# golden: {name}\n# regenerate with UPDATE_GOLDEN=1 cargo test --test golden\n\n\
         == figure6 ==\n{}\n== nfm ==\n{}",
        syn.render_model(),
        to_text(&syn.model)
    );
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "golden mismatch for {name}; if intentional, rerun with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_fig1_lb() {
    check_golden("fig1_lb", &nfactor::corpus::fig1_lb::source());
}

#[test]
fn golden_firewall() {
    check_golden("firewall", &nfactor::corpus::firewall::source());
}

#[test]
fn golden_nat() {
    check_golden("nat", &nfactor::corpus::nat::source());
}

#[test]
fn golden_portknock() {
    check_golden("portknock", &nfactor::corpus::portknock::source());
}

#[test]
fn golden_ratelimiter() {
    check_golden("ratelimiter", &nfactor::corpus::ratelimiter::source());
}

#[test]
fn golden_router() {
    check_golden("router", &nfactor::corpus::router::source());
}

#[test]
fn golden_balance() {
    check_golden("balance10", &nfactor::corpus::balance::source(10));
}

#[test]
fn golden_snort() {
    check_golden("snort25", &nfactor::corpus::snort::source(25));
}
