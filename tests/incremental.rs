//! Invalidation soundness for the nf-query incremental engine: under
//! arbitrary edit sequences, a long-lived engine must answer exactly
//! like a from-scratch `lint_source` at every step — same JSON, same
//! error strings — and trivia-only edits must early-cut (re-parse,
//! re-derive nothing).

use nf_support::check::{check, tuple2, uint_range, vec_of, Config};
use nf_support::json::ToJson;
use nfactor::query::Engine;
use nfactor::trace::Tracer;

/// Canonical comparable form of a lint outcome.
fn render(r: &Result<nfactor::lint::LintReport, String>) -> String {
    match r {
        Ok(report) => report.to_json().render(),
        Err(e) => format!("ERR: {e}"),
    }
}

/// One deterministic edit. Ops cover the interesting invalidation
/// classes: trivia (cutoff), span shifts, new functions, parse
/// errors, no-op rewrites, and reverts to the original.
fn apply_edit(base: &str, current: &str, op: u64, step: usize) -> String {
    match op % 6 {
        0 => format!("{current}\n// trivia edit {step}\n"),
        1 => format!("// leading note {step} (shifts every span)\n{current}"),
        2 => format!("{current}\nfn helper_{step}() {{ let v{step} = {step}; }}\n"),
        3 => format!("{current}\nfn broken_{step}( {{\n"),
        4 => base.to_string(),
        _ => current.to_string(), // identical bytes: must not invalidate
    }
}

#[test]
fn random_edit_sequences_preserve_equivalence() {
    let subjects: Vec<(&str, String)> = vec![
        ("firewall", nfactor::corpus::firewall::source()),
        ("ratelimiter", nfactor::corpus::ratelimiter::source()),
    ];
    let gen = tuple2(
        uint_range(0, 1),
        vec_of(uint_range(0, 5), 1, 6),
    );
    check(
        "incremental ≡ from-scratch under edit sequences",
        &Config::with_cases(24),
        &gen,
        |(subject, ops)| {
            let (name, base) = &subjects[*subject as usize];
            let mut engine = Engine::new();
            let mut current = base.clone();
            engine.set_source(name, &current);
            for (step, op) in ops.iter().enumerate() {
                current = apply_edit(base, &current, *op, step);
                engine.set_source(name, &current);
                let incremental = engine.lint_report(name);
                let fresh = nfactor::lint::lint_source(name, &current);
                assert_eq!(
                    render(incremental.as_ref()),
                    render(&fresh),
                    "step {step} (op {op}) diverged for {name}"
                );
            }
        },
    );
}

#[test]
fn comment_only_edit_reparses_but_derives_nothing() {
    let mut engine = Engine::with_tracer(Tracer::enabled());
    let base = nfactor::corpus::firewall::source();
    engine.set_source("firewall", &base);
    engine.lint_report("firewall");

    let counter = |e: &Engine, name: &str| e.tracer().metrics().counter(name).unwrap_or(0);
    let downstream = [
        "query.normalize.recompute",
        "query.types.recompute",
        "query.cfg.recompute",
        "query.pdg.recompute",
        "query.slice.recompute",
        "query.statealyzer.recompute",
        "query.ctx.recompute",
        "query.pass.sharding.recompute",
        "query.report.recompute",
    ];
    let parse_before = counter(&engine, "query.parse.recompute");
    let cutoff_before = counter(&engine, "query.parse.cutoff");
    let down_before: Vec<u64> = downstream.iter().map(|n| counter(&engine, n)).collect();

    engine.set_source("firewall", &format!("{base}\n// just a comment\n"));
    engine.lint_report("firewall");

    assert_eq!(
        counter(&engine, "query.parse.recompute"),
        parse_before + 1,
        "the comment edit must re-run exactly one parse"
    );
    assert_eq!(
        counter(&engine, "query.parse.cutoff"),
        cutoff_before + 1,
        "the re-parse must early-cut on an identical program fingerprint"
    );
    let down_after: Vec<u64> = downstream.iter().map(|n| counter(&engine, n)).collect();
    assert_eq!(
        down_after, down_before,
        "no downstream pass may recompute after a comment-only edit"
    );
}

#[test]
fn cold_and_cached_reports_are_byte_identical() {
    let src = nfactor::corpus::nat::source();
    let mut engine = Engine::new();
    engine.set_source("nat", &src);
    let cold = render(engine.lint_report("nat").as_ref());
    let cached = render(engine.lint_report("nat").as_ref());
    let fresh = render(&nfactor::lint::lint_source("nat", &src));
    assert_eq!(cold, cached, "cached rerun changed bytes");
    assert_eq!(cold, fresh, "engine diverged from lint_source");
}
