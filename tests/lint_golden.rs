//! Golden-file tests for `nfactor lint`: the rendered diagnostics and
//! sharding verdict of every corpus NF, pinned as checked-in text.
//!
//! The golden files double as the review surface for the sharding
//! analysis: `fig1_lb`, `nat` and `balance10` are intentionally
//! shared-state NFs (allocator counters key their reverse maps), while
//! `firewall`, `portknock`, `ratelimiter` and `snort25` must stay
//! per-flow. A diff here means either a lint changed behaviour or an NF
//! changed shardability — both worth a human look. To refresh after an
//! intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test lint_golden
//! ```

use nfactor::lint::lint_source;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/lint")
        .join(format!("{name}.txt"))
}

fn check_golden(name: &str, src: &str) {
    let report = lint_source(name, src).unwrap_or_else(|e| panic!("lint failed on {name}: {e}"));
    let actual = format!(
        "# golden: lint/{name}\n# regenerate with UPDATE_GOLDEN=1 cargo test --test lint_golden\n\n{}",
        report.render_text()
    );
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test --test lint_golden",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "lint golden mismatch for {name}; if intentional, rerun with UPDATE_GOLDEN=1"
    );
}

/// The corpus must lint clean of error-severity diagnostics; warnings
/// and notes are expected (that is what the lint is for).
fn check_no_errors(name: &str, src: &str) {
    let report = lint_source(name, src).unwrap();
    assert!(
        !report.has_errors(),
        "{name} has error-severity diagnostics: {:?}",
        report
            .diagnostics
            .iter()
            .filter(|d| d.severity == nfactor::lint::Severity::Error)
            .collect::<Vec<_>>()
    );
}

#[test]
fn lint_golden_fig1_lb() {
    let src = nfactor::corpus::fig1_lb::source();
    check_golden("fig1_lb", &src);
    check_no_errors("fig1_lb", &src);
}

#[test]
fn lint_golden_firewall() {
    let src = nfactor::corpus::firewall::source();
    check_golden("firewall", &src);
    check_no_errors("firewall", &src);
}

#[test]
fn lint_golden_nat() {
    let src = nfactor::corpus::nat::source();
    check_golden("nat", &src);
    check_no_errors("nat", &src);
}

#[test]
fn lint_golden_portknock() {
    let src = nfactor::corpus::portknock::source();
    check_golden("portknock", &src);
    check_no_errors("portknock", &src);
}

#[test]
fn lint_golden_ratelimiter() {
    let src = nfactor::corpus::ratelimiter::source();
    check_golden("ratelimiter", &src);
    check_no_errors("ratelimiter", &src);
}

#[test]
fn lint_golden_router() {
    let src = nfactor::corpus::router::source();
    check_golden("router", &src);
    check_no_errors("router", &src);
}

#[test]
fn lint_golden_balance() {
    let src = nfactor::corpus::balance::source(10);
    check_golden("balance10", &src);
    check_no_errors("balance10", &src);
}

#[test]
fn lint_golden_snort() {
    let src = nfactor::corpus::snort::source(25);
    check_golden("snort25", &src);
    check_no_errors("snort25", &src);
}

/// Cross-NF shardability expectations, independent of the golden text:
/// the reverse-NAT allocators make fig1-lb and nat shared, balance's
/// round-robin index makes it shared (its unfolded `__tcp` map is still
/// per-flow), and the pure per-flow NFs must stay shardable.
#[test]
fn corpus_shardability_matrix() {
    use nfactor::lint::StateShard;
    let expect = [
        ("fig1-lb", nfactor::corpus::fig1_lb::source(), false),
        ("nat", nfactor::corpus::nat::source(), false),
        ("balance", nfactor::corpus::balance::source(10), false),
        ("firewall", nfactor::corpus::firewall::source(), true),
        ("portknock", nfactor::corpus::portknock::source(), true),
        ("ratelimiter", nfactor::corpus::ratelimiter::source(), true),
        ("router", nfactor::corpus::router::source(), true),
        ("snort", nfactor::corpus::snort::source(25), true),
    ];
    for (name, src, shardable) in expect {
        let report = lint_source(name, &src).unwrap();
        assert_eq!(
            report.sharding.shardable(),
            shardable,
            "{name}: expected shardable={shardable}, got {:?}",
            report.sharding
        );
    }
    // Spot-check the interesting verdicts.
    let lb = lint_source("fig1-lb", &nfactor::corpus::fig1_lb::source()).unwrap();
    let verdict = |r: &nfactor::lint::LintReport, var: &str| {
        r.sharding
            .get(var)
            .unwrap_or_else(|| panic!("no verdict for {var}"))
            .verdict()
    };
    assert_eq!(verdict(&lb, "f2b_nat"), StateShard::PerFlow);
    assert_eq!(verdict(&lb, "b2f_nat"), StateShard::Shared);
    assert_eq!(verdict(&lb, "pass_stat"), StateShard::LogOnly);
    let bal = lint_source("balance", &nfactor::corpus::balance::source(10)).unwrap();
    assert_eq!(verdict(&bal, "__tcp"), StateShard::PerFlow);
    assert_eq!(verdict(&bal, "idx"), StateShard::Shared);
}
