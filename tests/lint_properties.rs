//! Property tests for `nfactor lint`: determinism, span-ordering, and
//! JSON round-tripping over a randomized family of small NFs.
//!
//! The generator assembles NF programs from orthogonal choices (key
//! expression, membership guard, counter updates, unused knobs) so the
//! lint sees per-flow and shared keyings, guarded and unguarded reads,
//! and used and unused configs — then checks the *framework* invariants
//! that must hold for every program, whatever the findings are.

use nf_support::check::{check, tuple3, uint_range, Config};
use nf_support::json::{FromJson, ToJson, Value};
use nfactor::lint::{lint_source, Code, Diagnostic, LintReport, Severity};

/// Key expressions the generator can key the state map with, from
/// flow-pure to definitely-shared.
const KEYS: &[&str] = &[
    "pkt.ip.src",
    "(pkt.ip.src, pkt.tcp.sport)",
    "hash(pkt.ip.dst) % 64",
    "pkt.ip.ttl",
    "knob",
    "cursor",
];

fn render_program(key: usize, guarded: bool, extras: u64) -> String {
    let key_expr = KEYS[key % KEYS.len()];
    let unused_cfg = if extras & 1 != 0 {
        "config SPARE = 9;\n"
    } else {
        ""
    };
    let counter = if extras & 2 != 0 {
        "    seen = seen + 1;\n"
    } else {
        ""
    };
    let cursor_bump = if extras & 4 != 0 {
        "    cursor = cursor + 1;\n"
    } else {
        ""
    };
    let body = if guarded {
        format!(
            "    if {key_expr} not in tbl {{ tbl[{key_expr}] = 0; }}\n    \
             if tbl[{key_expr}] > 2 {{ drop(pkt); }} else {{ tbl[{key_expr}] = tbl[{key_expr}] + 1; send(pkt); }}\n"
        )
    } else {
        format!(
            "    if tbl[{key_expr}] > 2 {{ drop(pkt); }} else {{ tbl[{key_expr}] = tbl[{key_expr}] + 1; send(pkt); }}\n"
        )
    };
    format!(
        "config knob = 7;\n{unused_cfg}state cursor = 0;\nstate seen = 0;\nstate tbl = map();\n\
         fn cb(pkt: packet) {{\n{counter}{cursor_bump}{body}}}\n\
         fn main() {{ sniff(cb); }}\n"
    )
}

fn cases() -> (Config, nf_support::check::Gen<(u64, u64, u64)>) {
    (
        Config::with_cases(64),
        tuple3(
            uint_range(0, KEYS.len() as u64 - 1),
            uint_range(0, 1),
            uint_range(0, 7),
        ),
    )
}

/// Linting the same program twice yields byte-identical reports.
#[test]
fn lint_is_deterministic() {
    let (cfg, gen) = cases();
    check("lint_is_deterministic", &cfg, &gen, |&(key, guarded, extras)| {
        let src = render_program(key as usize, guarded == 1, extras);
        let a = lint_source("prop", &src).expect("lint");
        let b = lint_source("prop", &src).expect("lint");
        assert_eq!(a.diagnostics, b.diagnostics);
        assert_eq!(a.sharding, b.sharding);
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.to_json().render(), b.to_json().render());
    });
}

/// Diagnostics come out span-sorted (then code/var/message), with no
/// duplicates, and each one carries its code's default severity.
#[test]
fn diagnostics_are_span_sorted_and_consistent() {
    let (cfg, gen) = cases();
    check(
        "diagnostics_are_span_sorted_and_consistent",
        &cfg,
        &gen,
        |&(key, guarded, extras)| {
            let src = render_program(key as usize, guarded == 1, extras);
            let report = lint_source("prop", &src).expect("lint");
            let keys: Vec<_> = report.diagnostics.iter().map(|d| d.sort_key()).collect();
            let mut sorted = keys.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(keys, sorted, "unsorted or duplicated diagnostics");
            for d in &report.diagnostics {
                assert_eq!(d.severity, d.code.severity(), "severity drift on {}", d.code);
            }
            assert_eq!(
                report.has_errors(),
                report
                    .diagnostics
                    .iter()
                    .any(|d| d.severity == Severity::Error)
            );
        },
    );
}

/// The machine report round-trips through `nf_support::json` losslessly
/// (modulo the analysed source, which is deliberately not serialised).
#[test]
fn report_json_roundtrips() {
    let (cfg, gen) = cases();
    check("report_json_roundtrips", &cfg, &gen, |&(key, guarded, extras)| {
        let src = render_program(key as usize, guarded == 1, extras);
        let report = lint_source("prop", &src).expect("lint");
        let parsed = Value::parse(&report.to_json().render()).expect("parse");
        let back = LintReport::from_json(&parsed).expect("from_json");
        assert_eq!(back.diagnostics, report.diagnostics);
        assert_eq!(back.sharding, report.sharding);
        assert_eq!(back.name, report.name);
    });
}

/// The sharding verdict tracks the generator's key choice: flow-derived
/// keys shard per-flow, non-flow keys force a global shard. (The map
/// must be read — the unguarded variant — or guarded; both gate output,
/// so `tbl` is never a log sink here.)
#[test]
fn verdict_tracks_key_origin() {
    let (cfg, gen) = cases();
    check("verdict_tracks_key_origin", &cfg, &gen, |&(key, guarded, extras)| {
        use nfactor::lint::StateShard;
        let src = render_program(key as usize, guarded == 1, extras);
        let report = lint_source("prop", &src).expect("lint");
        let tbl = report.sharding.get("tbl").expect("tbl verdict");
        let flow_pure = (key as usize % KEYS.len()) < 3;
        if flow_pure {
            assert_eq!(tbl.verdict(), StateShard::PerFlow, "{tbl:?}");
        } else {
            assert_eq!(tbl.verdict(), StateShard::Shared, "{tbl:?}");
            assert!(
                report
                    .diagnostics
                    .iter()
                    .any(|d| d.code == Code::SharedState && d.var.as_deref() == Some("tbl")),
                "NFL009 missing for shared tbl"
            );
        }
    });
}

/// Random well-formed diagnostics survive a JSON round-trip — the
/// serialisation is total over the diagnostic space, not just over what
/// today's passes happen to emit.
#[test]
fn arbitrary_diagnostics_roundtrip() {
    let cfg = Config::with_cases(128);
    let gen = tuple3(
        uint_range(0, Code::ALL.len() as u64 - 1),
        uint_range(0, 5000),
        uint_range(0, 200),
    );
    check("arbitrary_diagnostics_roundtrip", &cfg, &gen, |&(c, start, width)| {
        let code = Code::ALL[c as usize];
        let d = Diagnostic::new(
            code,
            nfl_lang::Span::new(start as usize, (start + width) as usize, (start / 40) as u32),
            if width % 2 == 0 {
                Some(format!("v{start}"))
            } else {
                None
            },
            format!("synthetic {code} at {start}"),
        );
        let parsed = Value::parse(&d.to_json().render()).expect("parse");
        assert_eq!(Diagnostic::from_json(&parsed).expect("roundtrip"), d);
    });
}
