//! Per-path witness testing: for every execution path the symbolic
//! engine claims exists, the solver must produce a concrete packet, and
//! the interpreter must actually take that path (same forward/drop
//! decision). This validates engine + solver against the ground-truth
//! interpreter at path granularity — finer than the §5 random test.

use nfactor::core::{Pipeline, Synthesis};
use nfactor::interp::Interp;
use nfactor::packet::{Field, Packet, TcpFlags};
use nfactor::symex::{Solver, SymVal};
use std::collections::HashMap;

fn pin(term: &SymVal, configs: &HashMap<String, i64>) -> SymVal {
    match term {
        SymVal::Var(v) => v
            .strip_prefix("cfg:")
            .and_then(|c| configs.get(c))
            .map(|val| SymVal::Int(*val))
            .unwrap_or_else(|| term.clone()),
        SymVal::Tuple(es) => SymVal::Tuple(es.iter().map(|e| pin(e, configs)).collect()),
        SymVal::Array(es) => SymVal::Array(es.iter().map(|e| pin(e, configs)).collect()),
        SymVal::Bin(op, a, b) => SymVal::bin(*op, pin(a, configs), pin(b, configs)),
        SymVal::Not(a) => SymVal::negate(pin(a, configs)),
        SymVal::Hash(a) => SymVal::Hash(Box::new(pin(a, configs))),
        SymVal::Min(a, b) => SymVal::Min(Box::new(pin(a, configs)), Box::new(pin(b, configs))),
        SymVal::Max(a, b) => SymVal::Max(Box::new(pin(a, configs)), Box::new(pin(b, configs))),
        other => other.clone(),
    }
}

fn witness_packet(assignment: &HashMap<String, i64>) -> Packet {
    let mut pkt = Packet::tcp(0x0b000001, 40000, 0x0c000001, 9999, TcpFlags(0));
    pkt.ip_ttl = 64;
    for (var, value) in assignment {
        if let Some(path) = var.strip_prefix("pkt.") {
            if let (Some(field), Ok(v)) = (Field::from_path(path), u64::try_from(*value)) {
                let _ = pkt.set(field, v);
            }
        }
    }
    pkt
}

fn check_stateless_paths(syn: &Synthesis) -> (usize, usize) {
    let solver = Solver;
    let configs: HashMap<String, i64> = {
        let interp = Interp::new(&syn.nf_loop).unwrap();
        syn.nf_loop
            .program
            .configs
            .iter()
            .filter_map(|c| {
                interp
                    .global(&c.name)
                    .and_then(|v| v.as_int())
                    .map(|v| (c.name.clone(), v))
            })
            .collect()
    };
    let mut witnessed = 0;
    let mut skipped = 0;
    for path in &syn.exploration.paths {
        // Stateless check: skip paths whose condition involves state.
        if path
            .constraints
            .iter()
            .any(|c| c.mentions_prefix("st:") || c.mentions_map())
        {
            skipped += 1;
            continue;
        }
        let pinned: Vec<SymVal> = path.constraints.iter().map(|c| pin(c, &configs)).collect();
        let Some(assignment) = solver.model(&pinned, |v| {
            v.strip_prefix("pkt.")
                .and_then(Field::from_path)
                .map(|f| (0, f.max_value().min(i64::MAX as u64) as i64))
                .unwrap_or((0, i64::MAX / 4))
        }) else {
            skipped += 1;
            continue;
        };
        let pkt = witness_packet(&assignment);
        let mut interp = Interp::new(&syn.nf_loop).unwrap();
        let result = interp.process(&pkt).unwrap();
        assert_eq!(
            result.dropped,
            path.is_drop(),
            "witness {pkt} for path `{}` took a different action",
            path.canonical()
        );
        witnessed += 1;
    }
    (witnessed, skipped)
}

#[test]
fn router_paths_all_witnessed() {
    let syn = Pipeline::builder()
        .name("router")
        .build()
        .unwrap()
        .synthesize(&nfactor::corpus::router::source())
    .unwrap();
    let (witnessed, skipped) = check_stateless_paths(&syn);
    assert_eq!(skipped, 0, "router is stateless");
    assert_eq!(witnessed, syn.exploration.paths.len());
    assert!(witnessed >= 4, "ttl-expiry, acl, two routes, no-route");
}

#[test]
fn snort_paths_all_witnessed() {
    let syn = Pipeline::builder()
        .name("snort")
        .build()
        .unwrap()
        .synthesize(&nfactor::corpus::snort::source(12))
    .unwrap();
    let (witnessed, _) = check_stateless_paths(&syn);
    assert_eq!(witnessed, 3, "block1 / block2 / forward all witnessed");
}

#[test]
fn firewall_stateless_fraction_witnessed() {
    let syn = Pipeline::builder()
        .name("fw")
        .build()
        .unwrap()
        .synthesize(&nfactor::corpus::firewall::source())
    .unwrap();
    let (witnessed, skipped) = check_stateless_paths(&syn);
    // Every inbound path consults the pinhole map first (state-dependent,
    // skipped); only the outbound path is purely stateless.
    assert_eq!(witnessed, 1, "witnessed {witnessed}, skipped {skipped}");
    assert_eq!(skipped, 3, "pinhole-check, allow-port, blocked paths");
}
