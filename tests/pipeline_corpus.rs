//! Integration: the full pipeline on every corpus NF, with the paper's
//! headline assertions (Table 1 classes, Table 2 relations, Figure 6
//! content).

use nfactor::core::Pipeline;

#[test]
fn every_corpus_nf_synthesizes() {
    for (name, src) in [
        ("fig1-lb", nfactor::corpus::fig1_lb::source()),
        ("balance", nfactor::corpus::balance::source(10)),
        ("snort", nfactor::corpus::snort::source(25)),
        ("nat", nfactor::corpus::nat::source()),
        ("firewall", nfactor::corpus::firewall::source()),
    ] {
        let syn = Pipeline::builder()
            .name(name)
            .build()
            .unwrap()
            .synthesize(&src)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(syn.model.entry_count() > 0, "{name}: empty model");
        assert!(
            syn.metrics.loc_slice <= syn.metrics.loc_orig,
            "{name}: slice bigger than program"
        );
        assert!(syn.metrics.ep_slice >= 1, "{name}: no paths");
        // Every model has a reachable drop (the default action §3.2
        // guarantees) or forwards everything.
        let _ = syn.render_model();
    }
}

#[test]
fn table1_variable_classes() {
    let syn = Pipeline::builder()
        .name("fig1-lb")
        .build()
        .unwrap()
        .synthesize(&nfactor::corpus::fig1_lb::source())
    .unwrap();
    // The paper's Table 1, column by column.
    assert!(syn.classes.pkt_vars.contains("pkt"));
    for cfg in ["mode", "LB_IP"] {
        assert!(
            syn.classes.cfg_vars.contains(cfg),
            "{cfg} must be cfgVar: {:?}",
            syn.classes
        );
    }
    for ois in ["f2b_nat", "rr_idx"] {
        assert!(
            syn.classes.ois_vars.contains(ois),
            "{ois} must be oisVar: {:?}",
            syn.classes
        );
    }
    // pass_stat / drop_stat are log counters: never in the model.
    let rendered = syn.render_model();
    assert!(!rendered.contains("pass_stat"));
    assert!(!rendered.contains("drop_stat"));
}

#[test]
fn table2_relations_hold_at_small_scale() {
    let pipeline = Pipeline::builder()
        .measure_original(true)
        .build()
        .unwrap();
    let snort = pipeline
        .synthesize_named("snort", &nfactor::corpus::snort::source(40))
        .unwrap();
    assert_eq!(snort.metrics.ep_slice, 3, "snort slice EP = 3, like the paper");
    let (ep_orig, exhausted) = snort.metrics.ep_orig.unwrap();
    assert!(!exhausted && ep_orig >= 1000, "snort orig EP explodes");
    assert!(snort.metrics.se_time_orig.unwrap() > snort.metrics.se_time_slice);
    assert!(snort.metrics.loc_slice * 4 < snort.metrics.loc_orig);

    let balance = pipeline
        .synthesize_named("balance", &nfactor::corpus::balance::source(10))
        .unwrap();
    let (bep_orig, _) = balance.metrics.ep_orig.unwrap();
    assert!(bep_orig > balance.metrics.ep_slice, "balance orig > slice EP");
    assert!((3..=16).contains(&balance.metrics.ep_slice));
}

#[test]
fn figure6_balance_model_content() {
    let syn = Pipeline::builder()
        .name("balance")
        .build()
        .unwrap()
        .synthesize(&nfactor::corpus::balance::source(3))
    .unwrap();
    let table = syn.render_model();
    // Figure 6's RR row: state idx, action send to server[idx], update
    // (idx+1)%N.
    assert!(table.contains("idx := ((idx + 1) % 2)"), "{table}");
    assert!(table.contains("send(f;"), "{table}");
    // The hidden TCP handshake state shows up (our §3.2 unfolding).
    assert!(table.contains("__tcp"), "{table}");
    // SYN-ACK reply rewrites flags to 18.
    assert!(table.contains("tcp.flags := 18"), "{table}");
}

#[test]
fn figure6_lb_modes_match_paper_rows() {
    // The Figure 1 LB gives the cleaner Figure 6 analogue: one table per
    // mode; RR transitions rr_idx, hash mode leaves it alone.
    let syn = Pipeline::builder()
        .name("lb")
        .build()
        .unwrap()
        .synthesize(&nfactor::corpus::fig1_lb::source())
    .unwrap();
    let rr_tables: Vec<_> = syn
        .model
        .tables
        .iter()
        .filter(|t| t.config.iter().any(|c| c.to_string() == "(cfg:mode == 1)"))
        .collect();
    assert_eq!(rr_tables.len(), 1);
    assert!(rr_tables[0]
        .entries
        .iter()
        .any(|e| e.state_action.updates.iter().any(|(n, v)| n == "rr_idx"
            && v.to_string() == "((st:rr_idx + 1) % 2)")));
    let hash_tables: Vec<_> = syn
        .model
        .tables
        .iter()
        .filter(|t| t.config.iter().any(|c| c.to_string() == "(cfg:mode != 1)"))
        .collect();
    assert_eq!(hash_tables.len(), 1);
    for e in &hash_tables[0].entries {
        assert!(
            !e.state_action.updates.iter().any(|(n, _)| n == "rr_idx"),
            "hash mode must not touch rr_idx"
        );
    }
}

#[test]
fn slice_is_a_valid_program() {
    // The sliced loop must itself type-check and interpret.
    let syn = Pipeline::builder()
        .name("nat")
        .build()
        .unwrap()
        .synthesize(&nfactor::corpus::nat::source())
    .unwrap();
    nfactor::lang::types::check(&syn.sliced_loop.program).expect("slice type-checks");
    let mut interp = nfactor::interp::Interp::new(&syn.sliced_loop).expect("slice runs");
    let pkt = nfactor::packet::Packet::tcp(
        0x0a000001,
        5555,
        0x08080808,
        443,
        nfactor::packet::TcpFlags::syn(),
    );
    let r = interp.process(&pkt).expect("slice processes packets");
    assert!(!r.outputs.is_empty(), "outbound NAT flow forwards");
}
