//! Cross-crate property-based tests (`nf_support::check`).
//!
//! The heavyweight property is the last one: *synthesize a model from a
//! randomly generated NF and check it agrees with the program on random
//! traffic* — a miniature, randomized version of the paper's whole
//! evaluation.

use nf_support::check::{
    any_bool, any_u16, any_u32, any_u64, any_u8, check, int_range, tuple2, tuple3, uint_range,
    vec_of, Config, Gen,
};
use nfactor::core::accuracy::differential_test;
use nfactor::core::Pipeline;
use nfactor::packet::{Field, Packet, TcpFlags};
use nfactor::symex::{Solver, SymVal};

/// Wire-format round trip for arbitrary header values.
#[test]
fn packet_wire_roundtrip() {
    let cfg = Config::with_cases(64);
    let header = tuple3(
        tuple2(any_u32(), any_u32()),
        tuple2(any_u16(), any_u16()),
        tuple2(
            uint_range(0, 63).map_int(|v| v as u8),
            uint_range(1, u8::MAX as u64).map_int(|v| v as u8),
        ),
    );
    let input = tuple2(header, vec_of(any_u8(), 0, 255));
    check(
        "packet_wire_roundtrip",
        &cfg,
        &input,
        |((ips, ports, (flags, ttl)), payload)| {
            let (src, dst) = *ips;
            let (sport, dport) = *ports;
            let mut p = Packet::tcp(src, sport, dst, dport, TcpFlags(*flags));
            p.ip_ttl = *ttl;
            p.payload = payload.clone();
            let q = Packet::from_wire(&p.to_wire()).unwrap();
            assert_eq!(p, q);
        },
    );
}

/// Solver models satisfy the constraints they were generated from
/// (interval + disequality fragment).
#[test]
fn solver_models_satisfy() {
    let cfg = Config::with_cases(64);
    let input = tuple3(
        int_range(0, 29_999),
        int_range(1, 999),
        vec_of(int_range(0, 30_999), 0, 3),
    );
    check(
        "solver_models_satisfy",
        &cfg,
        &input,
        |(lo, width, holes)| {
            let (lo, width) = (*lo, *width);
            let hi = lo + width;
            let var = SymVal::Var("x".to_string());
            let mut cs = vec![
                SymVal::bin(nfactor::lang::BinOp::Ge, var.clone(), SymVal::Int(lo)),
                SymVal::bin(nfactor::lang::BinOp::Le, var.clone(), SymVal::Int(hi)),
            ];
            for h in holes {
                cs.push(SymVal::bin(
                    nfactor::lang::BinOp::Ne,
                    var.clone(),
                    SymVal::Int(*h),
                ));
            }
            let solver = Solver;
            if let Some(model) = solver.model(&cs, |_| (0, 65535)) {
                let x = model["x"];
                assert!(x >= lo && x <= hi);
                for h in holes {
                    assert!(x != *h);
                }
            } else {
                // Only allowed when the holes cover the whole interval.
                assert!((hi - lo + 1) as usize <= holes.len());
            }
        },
    );
}

/// A generator for small random NF sources: a chain of guarded actions
/// over header fields, counters, and an optional NAT map.
fn random_nf() -> Gen<String> {
    let guard_field = Gen::one_of(vec![
        Gen::just(("pkt.tcp.dport", 65535u64)),
        Gen::just(("pkt.tcp.sport", 65535)),
        Gen::just(("pkt.ip.ttl", 255)),
        Gen::just(("pkt.payload.b0", 255)),
    ]);
    let op = Gen::one_of(vec![
        Gen::just("=="),
        Gen::just("!="),
        Gen::just("<"),
        Gen::just(">"),
    ]);
    let guard = tuple3(guard_field, op, any_u64())
        .map(|((f, max), op, v)| format!("{f} {op} {}", v % (max + 1)));
    let action = Gen::one_of(vec![
        Gen::just("pkt.ip.ttl = pkt.ip.ttl - 1;".to_string()),
        Gen::just("pkt.tcp.dport = 8080;".to_string()),
        Gen::just("counter = counter + 1;".to_string()),
        Gen::just("send(pkt); return;".to_string()),
        Gen::just("return;".to_string()),
    ]);
    let rule = tuple2(guard, action).map(|(g, a)| format!("    if {g} {{\n        {a}\n    }}\n"));
    tuple2(vec_of(rule, 0, 3), any_bool()).map(|(rules, tail_send)| {
        let mut src =
            String::from("state counter = 0;\nstate seen = map();\nfn cb(pkt: packet) {\n");
        for r in rules {
            src.push_str(&r);
        }
        if tail_send {
            src.push_str("    let k = (pkt.ip.src, pkt.tcp.sport);\n");
            src.push_str("    if k not in seen {\n        seen[k] = 1;\n    }\n");
            src.push_str("    send(pkt);\n");
        }
        src.push_str("}\nfn main() { sniff(cb); }\n");
        src
    })
}

/// The synthesized model of a random NF agrees with the NF itself on
/// random traffic.
#[test]
fn random_nf_model_matches_program() {
    let cfg = Config::with_cases(24);
    let input = tuple2(random_nf(), any_u64());
    check(
        "random_nf_model_matches_program",
        &cfg,
        &input,
        |(src, seed)| {
            let syn = Pipeline::builder()
                .name("random")
                .build()
                .unwrap()
                .synthesize(src)
                .unwrap_or_else(|e| panic!("pipeline: {e}\n{src}"));
            let report =
                differential_test(&syn, *seed, 120).unwrap_or_else(|e| panic!("{e}\n{src}"));
            assert!(
                report.perfect(),
                "disagreements {:?}\nsource:\n{src}\nmodel:\n{}",
                report.mismatches,
                syn.render_model()
            );
        },
    );
}

#[test]
fn hash_is_stable_across_interp_and_model() {
    // The differential experiment is meaningless unless both sides hash
    // identically; pin the contract with a direct probe.
    let src = r#"
        config servers = [(1.1.1.1, 80), (2.2.2.2, 80), (9.9.9.9, 80)];
        fn cb(pkt: packet) {
            let s = servers[hash((pkt.ip.src, pkt.tcp.sport)) % len(servers)];
            pkt.ip.dst = s[0];
            send(pkt);
        }
        fn main() { sniff(cb); }
    "#;
    let syn = Pipeline::builder()
        .name("hash-lb")
        .build()
        .unwrap()
        .synthesize(src).unwrap();
    let report = differential_test(&syn, 5, 500).unwrap();
    assert!(report.perfect(), "{:?}", report.mismatches);
    // And the backend choice actually varies across sources.
    let mut interp = nfactor::interp::Interp::new(&syn.nf_loop).unwrap();
    let mut dsts = std::collections::BTreeSet::new();
    for sport in 0..32u16 {
        let p = Packet::tcp(0x0a000001, sport, 0x03030303, 80, TcpFlags::syn());
        let out = interp.process(&p).unwrap().outputs;
        dsts.insert(out[0].get(Field::IpDst).unwrap());
    }
    assert!(dsts.len() > 1, "hash spreads load: {dsts:?}");
}
