//! Cross-crate property-based tests (proptest).
//!
//! The heavyweight property is the last one: *synthesize a model from a
//! randomly generated NF and check it agrees with the program on random
//! traffic* — a miniature, randomized version of the paper's whole
//! evaluation.

use nfactor::core::accuracy::differential_test;
use nfactor::core::{synthesize, Options};
use nfactor::packet::{Field, Packet, TcpFlags};
use nfactor::symex::{Solver, SymVal};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wire-format round trip for arbitrary header values.
    #[test]
    fn packet_wire_roundtrip(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        flags in 0u8..64,
        ttl in 1u8..,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut p = Packet::tcp(src, sport, dst, dport, TcpFlags(flags));
        p.ip_ttl = ttl;
        p.payload = payload;
        let q = Packet::from_wire(&p.to_wire()).unwrap();
        prop_assert_eq!(p, q);
    }

    /// Solver models satisfy the constraints they were generated from
    /// (interval + disequality fragment).
    #[test]
    fn solver_models_satisfy(
        lo in 0i64..30000,
        width in 1i64..1000,
        holes in proptest::collection::vec(0i64..31000, 0..4),
    ) {
        let hi = lo + width;
        let var = SymVal::Var("x".to_string());
        let mut cs = vec![
            SymVal::bin(nfactor::lang::BinOp::Ge, var.clone(), SymVal::Int(lo)),
            SymVal::bin(nfactor::lang::BinOp::Le, var.clone(), SymVal::Int(hi)),
        ];
        for h in &holes {
            cs.push(SymVal::bin(
                nfactor::lang::BinOp::Ne,
                var.clone(),
                SymVal::Int(*h),
            ));
        }
        let solver = Solver;
        if let Some(model) = solver.model(&cs, |_| (0, 65535)) {
            let x = model["x"];
            prop_assert!(x >= lo && x <= hi);
            for h in &holes {
                prop_assert!(x != *h);
            }
        } else {
            // Only allowed when the holes cover the whole interval.
            prop_assert!((hi - lo + 1) as usize <= holes.len());
        }
    }
}

/// A strategy generating small random NF sources: a chain of guarded
/// actions over header fields, counters, and an optional NAT map.
fn random_nf() -> impl Strategy<Value = String> {
    let guard_field = prop_oneof![
        Just(("pkt.tcp.dport", 65535u64)),
        Just(("pkt.tcp.sport", 65535)),
        Just(("pkt.ip.ttl", 255)),
        Just(("pkt.payload.b0", 255)),
    ];
    let op = prop_oneof![Just("=="), Just("!="), Just("<"), Just(">")];
    let guard = (guard_field, op, any::<u64>()).prop_map(|((f, max), op, v)| {
        format!("{f} {op} {}", v % (max + 1))
    });
    let action = prop_oneof![
        Just("pkt.ip.ttl = pkt.ip.ttl - 1;".to_string()),
        Just("pkt.tcp.dport = 8080;".to_string()),
        Just("counter = counter + 1;".to_string()),
        Just("send(pkt); return;".to_string()),
        Just("return;".to_string()),
    ];
    let rule = (guard, action).prop_map(|(g, a)| {
        format!("    if {g} {{\n        {a}\n    }}\n")
    });
    (proptest::collection::vec(rule, 0..4), any::<bool>()).prop_map(|(rules, tail_send)| {
        let mut src = String::from(
            "state counter = 0;\nstate seen = map();\nfn cb(pkt: packet) {\n",
        );
        for r in rules {
            src.push_str(&r);
        }
        if tail_send {
            src.push_str("    let k = (pkt.ip.src, pkt.tcp.sport);\n");
            src.push_str("    if k not in seen {\n        seen[k] = 1;\n    }\n");
            src.push_str("    send(pkt);\n");
        }
        src.push_str("}\nfn main() { sniff(cb); }\n");
        src
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The synthesized model of a random NF agrees with the NF itself on
    /// random traffic.
    #[test]
    fn random_nf_model_matches_program(src in random_nf(), seed in any::<u64>()) {
        let syn = match synthesize("random", &src, &Options::default()) {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::fail(format!("pipeline: {e}\n{src}"))),
        };
        let report = differential_test(&syn, seed, 120)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{src}")))?;
        prop_assert!(
            report.perfect(),
            "disagreements {:?}\nsource:\n{src}\nmodel:\n{}",
            report.mismatches,
            syn.render_model()
        );
    }
}

#[test]
fn hash_is_stable_across_interp_and_model() {
    // The differential experiment is meaningless unless both sides hash
    // identically; pin the contract with a direct probe.
    let src = r#"
        config servers = [(1.1.1.1, 80), (2.2.2.2, 80), (9.9.9.9, 80)];
        fn cb(pkt: packet) {
            let s = servers[hash((pkt.ip.src, pkt.tcp.sport)) % len(servers)];
            pkt.ip.dst = s[0];
            send(pkt);
        }
        fn main() { sniff(cb); }
    "#;
    let syn = synthesize("hash-lb", src, &Options::default()).unwrap();
    let report = differential_test(&syn, 5, 500).unwrap();
    assert!(report.perfect(), "{:?}", report.mismatches);
    // And the backend choice actually varies across sources.
    let mut interp = nfactor::interp::Interp::new(&syn.nf_loop).unwrap();
    let mut dsts = std::collections::BTreeSet::new();
    for sport in 0..32u16 {
        let p = Packet::tcp(0x0a000001, sport, 0x03030303, 80, TcpFlags::syn());
        let out = interp.process(&p).unwrap().outputs;
        dsts.insert(out[0].get(Field::IpDst).unwrap());
    }
    assert!(dsts.len() > 1, "hash spreads load: {dsts:?}");
}
