//! Robustness properties: fuzz-run determinism, budget monotonicity,
//! truncated-model round-trips, graceful degradation under a
//! wall-clock deadline on the paper-scale snort NF, and fault-plan
//! accounting on the supervised shard runtime.

use nfactor::core::{Pipeline, Synthesis};
use nfactor::fuzz::{run, FuzzConfig};
use nfactor::model::Completeness;
use nfactor::packet::PacketGen;
use nfactor::shard::{Backend, RunConfig, ShardEngine, SliceSource};
use nfactor::support::budget::Budget;
use nfactor::support::check::{check, tuple3, uint_range, Config};
use nfactor::support::fault::FaultPlan;
use nfactor::support::json::{FromJson, ToJson, Value};

fn corpus_source(name: &str) -> String {
    nfactor::corpus::default_corpus()
        .into_iter()
        .find(|nf| nf.name == name)
        .unwrap_or_else(|| panic!("corpus NF `{name}` missing"))
        .source
}

fn synthesize_with_solver_cap(src: &str, cap: usize) -> Synthesis {
    Pipeline::builder()
        .name("nat")
        .budget(Budget::unlimited().with_max_solver_calls(cap))
        .build()
        .unwrap()
        .synthesize(src)
        .expect("capped synthesis must still succeed")
}

/// A fuzz run is a pure function of its seed: same config, same report —
/// verdict counts and the (minimized) findings byte-for-byte.
#[test]
fn fuzz_runs_are_reproducible() {
    let cfg = FuzzConfig {
        seed: 42,
        cases: 80,
        diff_trials: 10,
        minimize: true,
    };
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(a.cases, b.cases);
    assert_eq!(a.panics, b.panics);
    assert_eq!(a.mismatches, b.mismatches);
    assert_eq!(a.diff_checked, b.diff_checked);
    assert_eq!(a.diff_skipped, b.diff_skipped);
    assert_eq!(a.findings.len(), b.findings.len());
    for (fa, fb) in a.findings.iter().zip(&b.findings) {
        assert_eq!(fa.case, fb.case);
        assert_eq!(fa.input, fb.input);
    }
}

/// Raising the solver-call budget can only reveal paths, never hide
/// them: explored-path count is monotone in the cap, and a run that was
/// already complete stays complete.
#[test]
fn budget_monotonicity_never_loses_paths() {
    let src = corpus_source("nat");
    let cfg = Config::with_cases(12);
    let caps = uint_range(1, 60);
    check("budget_monotone", &cfg, &caps, |&lo| {
        let hi = lo * 2 + 5;
        let syn_lo = synthesize_with_solver_cap(&src, lo as usize);
        let syn_hi = synthesize_with_solver_cap(&src, hi as usize);
        assert!(
            syn_lo.exploration.paths.len() <= syn_hi.exploration.paths.len(),
            "cap {lo} found {} paths but cap {hi} only {}",
            syn_lo.exploration.paths.len(),
            syn_hi.exploration.paths.len()
        );
        if matches!(syn_lo.model.completeness, Completeness::Full) {
            assert!(matches!(syn_hi.model.completeness, Completeness::Full));
        }
    });
}

/// A truncated model survives the JSON round trip with its completeness
/// stamp (state and reason) intact, and `.nfm` text keeps the marker.
#[test]
fn truncated_model_round_trips_through_json_and_text() {
    let src = corpus_source("nat");
    let syn = synthesize_with_solver_cap(&src, 1);
    assert!(
        syn.model.completeness.is_truncated(),
        "solver cap 1 must truncate the nat exploration"
    );

    let json = syn.model.to_json().render();
    let val = Value::parse(&json).expect("model JSON must parse");
    let back = nfactor::model::Model::from_json(&val).expect("model JSON must decode");
    assert_eq!(back.completeness, syn.model.completeness);
    assert_eq!(back.entry_count(), syn.model.entry_count());

    let text = nfactor::model::to_text(&syn.model);
    assert!(text.contains("truncated"), "{text}");
    let back = nfactor::model::from_text(&text).expect(".nfm text must decode");
    assert_eq!(back.completeness, syn.model.completeness);
}

/// The acceptance scenario: a 10 ms deadline on the paper-scale snort NF
/// must yield a *partial* model — no hang, no panic, no bare error —
/// with the truncation reason visible in both renderings.
#[test]
fn snort_with_10ms_deadline_returns_truncated_model() {
    let src = corpus_source("snort");
    let tracer = nfactor::trace::Tracer::enabled();
    let syn = Pipeline::builder()
        .name("snort")
        .budget(Budget::unlimited().with_timeout_ms(10))
        .tracer(tracer.clone())
        .build()
        .unwrap()
        .synthesize(&src)
        .expect("deadline must degrade, not error");
    let reason = syn
        .model
        .completeness
        .reason()
        .expect("10 ms is far too little for snort — the model must be truncated");
    assert!(reason.contains("deadline"), "{reason}");

    let text = syn.render_model();
    assert!(text.contains("PARTIAL MODEL"), "{text}");
    assert!(text.contains(reason), "{text}");

    let json = syn.model.to_json().render();
    assert!(json.contains("\"truncated\""), "{json}");
    assert!(json.contains(reason), "{json}");

    // The degradation is also observable: the tracer reports the
    // truncation counter and the same reason label, and both survive the
    // metrics JSON (what `--metrics-json` writes).
    let metrics = tracer.metrics();
    assert_eq!(metrics.counter("pipeline.truncated"), Some(1));
    assert_eq!(
        metrics.labels.get("pipeline.truncated.reason").map(String::as_str),
        Some(reason)
    );
    let mjson = metrics.to_json().render_pretty();
    let parsed = Value::parse(&mjson).expect("metrics JSON re-parses");
    let counters = parsed.get("counters").expect("counters object");
    assert_eq!(counters.get("pipeline.truncated"), Some(&Value::Int(1)));
    assert!(mjson.contains(reason), "{mjson}");
}

/// Property: whatever deterministic faults are injected into whichever
/// corpus NF at whatever shard count, the supervised runtime never
/// loses a packet without a ledger entry (`processed + quarantined +
/// dropped == offered`) and never trips a merge-time
/// partitioning-violation or resurrection check — containment must not
/// corrupt state placement.
#[test]
fn random_fault_plans_never_break_accounting_or_merge() {
    let corpus = nfactor::corpus::default_corpus();
    let cfg = Config::with_cases(12);
    let gen = tuple3(
        uint_range(0, u64::MAX),
        uint_range(0, corpus.len() as u64 - 1),
        uint_range(1, 4),
    );
    check("random_fault_accounting", &cfg, &gen, |&(seed, which, shards)| {
        let nf = &corpus[which as usize];
        let pipeline = Pipeline::builder()
            .name(nf.name)
            .shards(shards as usize)
            .build()
            .unwrap();
        let engine = ShardEngine::from_source(&pipeline, &nf.source, Backend::Interp)
            .unwrap_or_else(|e| panic!("{}: {e}", nf.name));
        let packets = PacketGen::new(seed).batch(120);
        let faults = FaultPlan::random(seed, shards as usize, 120, 6);
        for run in [
            engine.run_with(
                SliceSource::new(&packets),
                &RunConfig::threaded().with_faults(faults.clone()),
            ),
            engine.run_with(
                SliceSource::new(&packets),
                &RunConfig::sequential().with_faults(faults.clone()),
            ),
        ] {
            // A fault plan must never surface as an engine error: the
            // merge checks stay silent and the run completes.
            let run = run.unwrap_or_else(|e| {
                panic!("{} under `{}`: {e}", nf.name, faults.render())
            });
            assert_eq!(
                run.offered(),
                packets.len() as u64,
                "{} under `{}`: accounting leak",
                nf.name,
                faults.render()
            );
        }
    });
}

/// An unlimited budget still yields a Full model on every corpus NF —
/// the budget machinery must be invisible when no cap is set.
#[test]
fn unlimited_budget_never_truncates_the_corpus() {
    for nf in nfactor::corpus::default_corpus() {
        let syn = Pipeline::builder()
            .name(nf.name)
            .build()
            .unwrap()
            .synthesize(&nf.source)
            .unwrap_or_else(|e| panic!("{}: {e}", nf.name));
        assert!(
            matches!(syn.model.completeness, Completeness::Full),
            "{} unexpectedly truncated: {:?}",
            nf.name,
            syn.model.completeness
        );
    }
}
