//! The sharding differential oracle: for every corpus NF, a sharded
//! run (4 worker threads, state placed per the lint's ShardingReport)
//! must be observationally identical to the single-threaded
//! interpreter — same per-packet outputs in arrival order, same merged
//! final state.
//!
//! The per-flow NFs (firewall, portknock, ratelimiter, router, snort)
//! exercise partitioned dispatch — including portknock/ratelimiter's
//! source-IP-only key and the firewall's direction-symmetric pinhole
//! key; the shared NFs (fig1-lb, nat, balance) exercise the
//! ticket-ordered global-lock fallback.

use nf_support::check::{check, tuple3, uint_range, Config};
use nfactor::core::Pipeline;
use nfactor::packet::{Field, PacketGen};
use nfactor::shard::{dispatch_values, Backend, ShardEngine};

const SHARDS: usize = 4;
const PACKETS: usize = 400;

fn oracle(name: &str, src: &str, expect_partitioned: bool) {
    let pipeline = Pipeline::builder()
        .name(name)
        .shards(SHARDS)
        .build()
        .unwrap_or_else(|e| panic!("{name}: builder: {e}"));
    let engine = ShardEngine::from_source(&pipeline, src, Backend::Interp)
        .unwrap_or_else(|e| panic!("{name}: build: {e}"));
    assert_eq!(
        engine.plan().partitioned(),
        expect_partitioned,
        "{name}: unexpected plan mode: {}",
        engine.plan().render_table()
    );
    let packets = PacketGen::new(0xD1FF).batch(PACKETS);
    let sharded = engine
        .run(&packets)
        .unwrap_or_else(|e| panic!("{name}: sharded run: {e}"));
    let single = engine
        .run_single(&packets)
        .unwrap_or_else(|e| panic!("{name}: single run: {e}"));
    assert_eq!(
        sharded.output_signature(),
        single.output_signature(),
        "{name}: sharded outputs diverge from single-threaded"
    );
    assert_eq!(
        sharded.merged, single.merged,
        "{name}: merged state diverges from single-threaded"
    );
    assert_eq!(sharded.total_pkts(), PACKETS as u64, "{name}");
    // The sequential (simulated-parallel) mode must agree too — the
    // bench relies on it.
    let sequential = engine
        .run_sequential(&packets)
        .unwrap_or_else(|e| panic!("{name}: sequential run: {e}"));
    assert_eq!(sequential.output_signature(), single.output_signature(), "{name}");
    assert_eq!(sequential.merged, single.merged, "{name}");
}

#[test]
fn shard_differential_firewall() {
    oracle("firewall", &nfactor::corpus::firewall::source(), true);
}

#[test]
fn shard_differential_portknock() {
    oracle("portknock", &nfactor::corpus::portknock::source(), true);
}

#[test]
fn shard_differential_ratelimiter() {
    oracle("ratelimiter", &nfactor::corpus::ratelimiter::source(), true);
}

#[test]
fn shard_differential_router() {
    oracle("router", &nfactor::corpus::router::source(), true);
}

#[test]
fn shard_differential_snort() {
    oracle("snort", &nfactor::corpus::snort::source(25), true);
}

#[test]
fn shard_differential_fig1_lb() {
    oracle("fig1-lb", &nfactor::corpus::fig1_lb::source(), false);
}

#[test]
fn shard_differential_nat() {
    oracle("nat", &nfactor::corpus::nat::source(), false);
}

#[test]
fn shard_differential_balance() {
    oracle("balance", &nfactor::corpus::balance::source(6), false);
}

/// The model backend shards identically: the synthesized ratelimiter
/// model run on 4 shards matches its own single-threaded evaluation.
#[test]
fn shard_differential_model_backend() {
    let pipeline = Pipeline::builder()
        .name("ratelimiter")
        .shards(SHARDS)
        .build()
        .expect("builder");
    let engine = ShardEngine::from_source(
        &pipeline,
        &nfactor::corpus::ratelimiter::source(),
        Backend::Model,
    )
    .expect("synthesize + build");
    let packets = PacketGen::new(99).batch(200);
    let sharded = engine.run(&packets).expect("sharded run");
    let single = engine.run_single(&packets).expect("single run");
    assert_eq!(sharded.output_signature(), single.output_signature());
    assert_eq!(sharded.merged, single.merged);
}

/// Property: the dispatch hash is a function of the dispatch fields
/// alone — mutating any non-key byte of the packet (TTL, sequence
/// numbers, payload, ethernet addresses) never re-steers it.
#[test]
fn dispatch_ignores_non_key_bytes() {
    use nfactor::lint::DispatchKey;
    let five_tuple = DispatchKey::new(
        vec![
            Field::IpSrc,
            Field::IpDst,
            Field::IpProto,
            Field::TcpSport,
            Field::TcpDport,
        ],
        false,
    );
    let non_key = [
        Field::EthSrc,
        Field::EthDst,
        Field::IpTtl,
        Field::IpId,
        Field::TcpSeq,
        Field::TcpAck,
        Field::PayloadByte0,
        Field::PayloadByte1,
    ];
    let (cfg, gen) = (
        Config::with_cases(128),
        tuple3(
            uint_range(0, u64::MAX),
            uint_range(0, non_key.len() as u64 - 1),
            uint_range(0, 1 << 16),
        ),
    );
    check("dispatch_ignores_non_key_bytes", &cfg, &gen, |&(seed, which, raw)| {
        let pkt = PacketGen::new(seed).next_packet();
        let before = dispatch_values(&five_tuple, &pkt);
        let field = non_key[which as usize];
        let mut mutated = pkt.clone();
        let value = raw % (field.max_value() + 1).max(1);
        if mutated.set(field, value).is_ok() {
            assert_eq!(
                before,
                dispatch_values(&five_tuple, &mutated),
                "mutating {field:?} re-steered the packet"
            );
        }
    });
}
