//! Integration: the Figure 4 code structures — all four shapes of the
//! same NF must normalise and produce behaviourally equivalent models.

use nfactor::analysis::normalize::{detect_structure, Structure};
use nfactor::core::Pipeline;
use nfactor::interp::Value;
use nfactor::model::ModelState;
use nfactor::packet::{Field, Packet, TcpFlags};

#[test]
fn four_shapes_detected() {
    let cases = [
        (nfactor::corpus::structures::one_loop(), Structure::OneLoop),
        (nfactor::corpus::structures::callback(), Structure::Callback),
        (
            nfactor::corpus::structures::consumer_producer(),
            Structure::ConsumerProducer,
        ),
        (
            nfactor::corpus::structures::nested_loop(),
            Structure::NestedLoop,
        ),
    ];
    for (src, expected) in cases {
        let p = nfactor::lang::parse_and_check(&src).unwrap();
        assert_eq!(detect_structure(&p), expected);
    }
}

#[test]
fn first_three_shapes_give_equivalent_models() {
    // 4a, 4b, 4c implement the identical "count & forward port 80" NF;
    // their models must behave identically on the same packet set.
    let shapes = [
        ("4a", nfactor::corpus::structures::one_loop()),
        ("4b", nfactor::corpus::structures::callback()),
        ("4c", nfactor::corpus::structures::consumer_producer()),
    ];
    let probe_hit = Packet::tcp(1, 9, 2, 80, TcpFlags::syn());
    let probe_miss = Packet::tcp(1, 9, 2, 81, TcpFlags::syn());
    let mut behaviours = Vec::new();
    for (name, src) in shapes {
        let syn = Pipeline::builder()
            .name(name)
            .build()
            .unwrap()
            .synthesize(&src).unwrap();
        // `hits` is a pure log counter (never output-impacting), so the
        // *forwarding* model rightly omits it — same as the paper's
        // pass_stat (outside the packet slice entirely, never oisVar).
        assert_ne!(
            syn.classes.class_of("hits"),
            Some("oisVar"),
            "{name}: {:?}",
            syn.classes
        );
        let mut st = ModelState::default().with_config("PORT", Value::Int(80));
        let hit = st.step(&syn.model, &probe_hit).unwrap().output.is_some();
        let miss = st.step(&syn.model, &probe_miss).unwrap().output.is_some();
        behaviours.push((name, hit, miss));
    }
    assert!(
        behaviours
            .windows(2)
            .all(|w| (w[0].1, w[0].2) == (w[1].1, w[1].2)),
        "{behaviours:?}"
    );
    assert!(behaviours[0].1, "port 80 forwards");
    assert!(!behaviours[0].2, "other ports drop");
}

#[test]
fn nested_shape_carries_tcp_semantics() {
    // 4d terminates TCP: its model must refuse the handshake-free data
    // the other three forward blindly — that is the hidden-state point.
    let syn = Pipeline::builder()
        .name("4d")
        .build()
        .unwrap()
        .synthesize(&nfactor::corpus::structures::nested_loop())
    .unwrap();
    let mut interp = nfactor::interp::Interp::new(&syn.nf_loop).unwrap();
    let mut data = Packet::tcp(1, 9, 2, 80, TcpFlags::ack());
    data.payload = vec![1, 2, 3];
    assert!(
        interp.process(&data).unwrap().dropped,
        "no handshake → drop"
    );
    let synp = Packet::tcp(1, 9, 2, 80, TcpFlags::syn());
    let r = interp.process(&synp).unwrap();
    assert!(!r.dropped, "SYN answered");
    assert_eq!(
        r.outputs[0].get(Field::TcpFlags).unwrap(),
        18,
        "SYN-ACK back"
    );
}
