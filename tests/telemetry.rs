//! Integration tests for the shard telemetry plane: per-shard
//! eval/occupancy histograms, the dispatcher's hot-key profile, the
//! flight recorder, and the invariants the plane must hold — telemetry
//! never changes what a run computes, and under a mock clock the
//! sequential modes report byte-identical numbers.

use nfactor::core::Pipeline;
use nfactor::packet::{Packet, PacketGen, TcpFlags};
use nfactor::shard::{render_top, Backend, FlightOutcome, RunConfig, ShardEngine, SliceSource, TelemetryConfig};
use nfactor::support::fault::FaultPlan;
use nfactor::support::json::Value;
use nfactor::trace::{MockClock, Tracer};
use std::sync::Arc;

fn corpus_source(name: &str) -> String {
    nfactor::corpus::default_corpus()
        .into_iter()
        .find(|nf| nf.name == name)
        .unwrap_or_else(|| panic!("corpus NF `{name}` missing"))
        .source
}

fn engine(name: &str, shards: usize, tracer: Tracer) -> ShardEngine {
    let pipeline = Pipeline::builder()
        .name(name)
        .shards(shards)
        .tracer(tracer)
        .build()
        .expect("pipeline builds");
    ShardEngine::from_source(&pipeline, &corpus_source(name), Backend::Interp)
        .expect("engine builds")
}

/// A workload dominated by one flow: ~2/3 of the packets repeat the
/// same 4-tuple, the rest is a seeded spread.
fn skewed_workload(total: usize) -> Vec<Packet> {
    let spread = PacketGen::new(7).batch(total / 3);
    let heavy = Packet::tcp(0x0a00_0001, 443, 0x0a00_0002, 8080, TcpFlags(0x10));
    let mut pkts = Vec::with_capacity(total);
    let mut spread_iter = spread.into_iter();
    for i in 0..total {
        if i % 3 == 0 {
            if let Some(p) = spread_iter.next() {
                pkts.push(p);
                continue;
            }
        }
        pkts.push(heavy.clone());
    }
    pkts
}

/// Telemetry is observation only: the same workload with telemetry on
/// (enabled tracer) and fully off (disabled tracer) produces identical
/// outputs and merged state, threaded and sequential.
#[test]
fn telemetry_does_not_change_run_behaviour() {
    let packets = PacketGen::new(3).batch(600);
    for name in ["firewall", "nat"] {
        let on = engine(name, 4, Tracer::enabled());
        let off = engine(name, 4, Tracer::disabled());
        let run_on = on.run_with(SliceSource::new(&packets), &RunConfig::threaded()).expect("telemetry-on run");
        let run_off = off.run_with(SliceSource::new(&packets), &RunConfig::threaded()).expect("telemetry-off run");
        assert!(run_on.stats.is_some(), "{name}: enabled tracer collects stats");
        assert!(run_off.stats.is_none(), "{name}: disabled tracer collects nothing");
        assert_eq!(run_on.output_signature(), run_off.output_signature(), "{name}");
        assert_eq!(run_on.merged, run_off.merged, "{name}");

        let seq_on = on.run_with(SliceSource::new(&packets), &RunConfig::sequential()).expect("sequential on");
        let seq_off = off.run_with(SliceSource::new(&packets), &RunConfig::sequential()).expect("sequential off");
        assert_eq!(seq_on.output_signature(), seq_off.output_signature(), "{name}");
        assert_eq!(seq_on.merged, seq_off.merged, "{name}");
    }
}

/// The config switch alone also disables collection, even with a
/// recording tracer.
#[test]
fn telemetry_config_switch_disables_collection() {
    let mut e = engine("firewall", 2, Tracer::enabled());
    e.set_telemetry(TelemetryConfig {
        enabled: false,
        ..TelemetryConfig::default()
    });
    let run = e.run_with(SliceSource::new(&PacketGen::new(1).batch(100)), &RunConfig::threaded()).expect("run");
    assert!(run.stats.is_none());
}

/// A skewed workload surfaces its heavy hitter: the per-shard hot-key
/// profile is non-empty, the heavy flow ranks first on its shard, and
/// the tracer carries the `shard.N.hotkeys` label `top` renders.
#[test]
fn skewed_workload_reports_hot_keys() {
    let tracer = Tracer::enabled();
    let e = engine("firewall", 4, tracer.clone());
    let run = e.run_with(SliceSource::new(&skewed_workload(900)), &RunConfig::threaded()).expect("run");
    let stats = run.stats.expect("telemetry on");
    let profiled: Vec<_> = stats
        .shards
        .iter()
        .filter(|s| !s.hotkeys.is_empty())
        .collect();
    assert!(!profiled.is_empty(), "some shard must profile hot keys");
    // The heavy flow's estimate dwarfs everything else on its shard.
    let heaviest = stats
        .shards
        .iter()
        .flat_map(|s| s.hotkeys.first())
        .max_by_key(|h| h.count)
        .expect("a heaviest key");
    assert!(
        heaviest.count >= 500,
        "heavy flow (~600 pkts) must dominate, got {} ({})",
        heaviest.count,
        heaviest.key
    );
    assert!(heaviest.key.contains("tcp.dport="), "keys render field=value pairs");
    let metrics = tracer.metrics();
    assert!(
        metrics.labels.keys().any(|k| k.ends_with(".hotkeys")),
        "hotkeys label published for top"
    );
    // Every shard that processed packets has its eval histogram.
    for (w, &pkts) in run.per_shard_pkts.iter().enumerate() {
        if pkts > 0 {
            let h = &metrics.histograms[&format!("shard.{w}.eval.ns")];
            assert_eq!(h.count, pkts, "shard {w} eval histogram counts every packet");
            assert!(h.p50() <= h.p99() && h.p99() <= h.max);
            assert!(
                metrics.histograms.contains_key(&format!("shard.{w}.ring.occupancy")),
                "shard {w} sampled ring occupancy"
            );
        }
    }
}

/// The flight recorder keeps the most recent events by arrival seq,
/// marks quarantined packets, and its JSON dump's `trace` key re-parses
/// as a workload-shaped packet array.
#[test]
fn flight_recorder_captures_faults_and_replays() {
    let tracer = Tracer::enabled();
    let e = engine("ratelimiter", 2, tracer);
    let faults = FaultPlan::parse("panic@0:5,panic@1:9").expect("plan parses");
    let packets = PacketGen::new(11).batch(400);
    let run = e.run_with(SliceSource::new(&packets), &RunConfig::threaded().with_faults(faults.clone())).expect("faulted run");
    assert_eq!(run.quarantined_seqs.len(), 2);
    let stats = run.stats.as_ref().expect("telemetry on");
    let (events, recorded) = stats.flight(1_000_000);
    assert_eq!(recorded, 400, "every offered packet was recorded");
    // Default flight_cap is 64 per worker; with 2 workers at most 128
    // events survive, and they are the latest by seq.
    assert!(events.len() <= 128);
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    assert_eq!(seqs, sorted, "flight events are seq-ordered");
    let quarantined: Vec<_> = events
        .iter()
        .filter(|e| e.outcome == FlightOutcome::Quarantined)
        .collect();
    // The faults hit early packets; whether they survive the ring
    // depends on cap, so only check consistency when present.
    for q in &quarantined {
        assert!(run.quarantined_seqs.contains(&q.seq));
    }
    let dump = stats.flight_json(16);
    let text = dump.render_pretty();
    let parsed = Value::parse(&text).expect("flight dump is valid JSON");
    let Some(Value::Array(trace)) = parsed.get("trace") else {
        panic!("flight dump needs a replayable trace key");
    };
    assert!(!trace.is_empty() && trace.len() <= 16);
    for item in trace {
        assert!(matches!(item, Value::Object(_)), "trace entries are packet objects");
    }
}

/// Under a mock clock the sequential modes are fully deterministic:
/// two identical runs render byte-identical stats documents and metric
/// tables — the property that lets the differential suites run with
/// telemetry enabled.
#[test]
fn sequential_stats_deterministic_under_mock_clock() {
    let run_once = || {
        let tracer = Tracer::with_clock(Arc::new(MockClock::new(75)));
        let e = engine("nat", 3, tracer.clone());
        let run = e
            .run_with(SliceSource::new(&PacketGen::new(5).batch(300)), &RunConfig::sequential())
            .expect("sequential run");
        let stats = run.stats_json().expect("stats collected").render_pretty();
        let table = tracer.metrics().render_table();
        (stats, table)
    };
    let (stats_a, table_a) = run_once();
    let (stats_b, table_b) = run_once();
    assert_eq!(stats_a, stats_b, "stats JSON must be byte-identical");
    assert_eq!(table_a, table_b, "metric table must be byte-identical");
    assert!(stats_a.contains("\"p99\""), "stats carry percentiles");
}

/// `render_top` shows one row per shard with the quarantine column
/// fed from the run's counters.
#[test]
fn top_renders_per_shard_rows_from_run_metrics() {
    let tracer = Tracer::enabled();
    let e = engine("firewall", 3, tracer.clone());
    let faults = FaultPlan::parse("panic@2:1").expect("plan parses");
    e.run_with(
        SliceSource::new(&PacketGen::new(2).batch(300)),
        &RunConfig::threaded().with_faults(faults.clone()),
    )
        .expect("run");
    let table = render_top(&tracer.metrics(), None);
    let rows: Vec<&str> = table.lines().collect();
    // Header + 3 shard rows at minimum (hot-key lines follow).
    assert!(rows.len() >= 4, "{table}");
    for w in 0..3 {
        assert!(
            rows.iter().any(|r| r.trim_start().starts_with(&w.to_string())),
            "missing row for shard {w}: {table}"
        );
    }
    assert!(table.contains("quar"), "{table}");
}

/// The global-lock path (shared state) collects telemetry too.
#[test]
fn global_lock_runs_collect_stats() {
    let tracer = Tracer::enabled();
    // `balance` shards `shared`-verdict state, forcing the global lock.
    let e = engine("balance", 2, tracer);
    let run = e.run_with(SliceSource::new(&PacketGen::new(9).batch(200)), &RunConfig::threaded()).expect("run");
    assert!(!run.partitioned, "balance must run under the global lock");
    let stats = run.stats.expect("telemetry on");
    assert_eq!(stats.shards.len(), 2);
    let evals: u64 = stats.shards.iter().map(|s| s.eval.count).sum();
    assert_eq!(evals, 200);
    // No dispatch key under the lock: the hot-key profile is empty.
    assert!(stats.shards.iter().all(|s| s.hotkeys.is_empty()));
}
