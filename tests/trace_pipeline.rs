//! End-to-end observability tests: the synthesis pipeline under an
//! enabled tracer must report one span per Algorithm-1 stage, nested
//! symex/slicer spans, the stable metric names, and — under a mock
//! clock — byte-identical output across runs.

use nfactor::core::Pipeline;
use nfactor::support::json::Value;
use nfactor::trace::{MockClock, Tracer};
use std::sync::Arc;

fn corpus_source(name: &str) -> String {
    nfactor::corpus::default_corpus()
        .into_iter()
        .find(|nf| nf.name == name)
        .map(|nf| nf.source)
        .unwrap_or_else(|| panic!("corpus NF `{name}` missing"))
}

const STAGES: [&str; 5] = [
    "pipeline.stage.frontend",
    "pipeline.stage.structure",
    "pipeline.stage.slice",
    "pipeline.stage.symex",
    "pipeline.stage.model",
];

#[test]
fn pipeline_emits_one_span_per_stage_with_nested_symex() {
    let tracer = Tracer::enabled();
    let syn = Pipeline::builder()
        .name("fig1-lb")
        .tracer(tracer.clone())
        .build()
        .unwrap()
        .synthesize(&corpus_source("fig1-lb"))
        .unwrap();
    assert!(tracer.balanced(), "all spans closed");

    let events = tracer.events();
    for stage in STAGES {
        let n = events
            .iter()
            .filter(|e| e.name == stage && e.dur_ns.is_some())
            .count();
        assert_eq!(n, 1, "expected exactly one `{stage}` span, got {n}");
    }

    // The symex.explore span nests inside pipeline.stage.symex on the
    // timeline, and the slicer spans inside pipeline.stage.slice.
    let span_of = |name: &str| {
        events
            .iter()
            .find(|e| e.name == name && e.dur_ns.is_some())
            .unwrap_or_else(|| panic!("span `{name}` missing"))
    };
    for (outer, inner) in [
        ("pipeline.stage.symex", "symex.explore"),
        ("pipeline.stage.slice", "slice.packet"),
        ("pipeline.stage.slice", "slice.state"),
    ] {
        let (o, i) = (span_of(outer), span_of(inner));
        assert!(i.depth > o.depth, "{inner} deeper than {outer}");
        assert!(i.ts_ns >= o.ts_ns, "{inner} starts within {outer}");
        assert!(
            i.ts_ns + i.dur_ns.unwrap() <= o.ts_ns + o.dur_ns.unwrap(),
            "{inner} ends within {outer}"
        );
    }

    // Per-path instant events, one per explored path.
    let path_events = events.iter().filter(|e| e.name == "symex.path").count();
    assert_eq!(path_events, syn.exploration.paths.len());

    // Stable metric names: the per-stage timers and the symex counters.
    let metrics = tracer.metrics();
    for stage in STAGES {
        let key = format!("{stage}.ns");
        assert!(metrics.counters.contains_key(&key), "missing {key}");
    }
    assert_eq!(
        metrics.counter("symex.paths.explored"),
        Some(syn.exploration.paths.len() as u64)
    );
    assert_eq!(
        metrics.counter("symex.solver.calls"),
        Some(syn.exploration.solver_calls as u64)
    );
    assert_eq!(metrics.counter("symex.forks"), Some(syn.exploration.forks as u64));
    assert!(metrics.counter("slice.pdg.edges").unwrap_or(0) > 0);
}

#[test]
fn table2_timings_come_from_the_spans() {
    // Satellite "reported once": the Metrics durations are the span
    // durations, so the table and the trace can never disagree.
    let tracer = Tracer::with_clock(Arc::new(MockClock::new(1_000)));
    let syn = Pipeline::builder()
        .name("fig1-lb")
        .tracer(tracer.clone())
        .build()
        .unwrap()
        .synthesize(&corpus_source("fig1-lb"))
        .unwrap();
    let metrics = tracer.metrics();
    assert_eq!(
        metrics.counter("pipeline.stage.slice.ns"),
        Some(syn.metrics.slicing_time.as_nanos() as u64)
    );
    assert_eq!(
        metrics.counter("pipeline.stage.symex.ns"),
        Some(syn.metrics.se_time_slice.as_nanos() as u64)
    );
}

#[test]
fn chrome_trace_json_round_trips_with_stage_spans() {
    let tracer = Tracer::enabled();
    Pipeline::builder()
        .name("fig1-lb")
        .tracer(tracer.clone())
        .build()
        .unwrap()
        .synthesize(&corpus_source("fig1-lb"))
        .unwrap();
    let text = tracer.trace_json().render_pretty();
    let parsed = Value::parse(&text).expect("valid Chrome trace JSON");
    let Some(Value::Array(events)) = parsed.get("traceEvents") else {
        panic!("traceEvents array missing: {text}");
    };
    assert!(!events.is_empty());
    for stage in STAGES {
        assert!(
            events.iter().any(|e| {
                e.get("name") == Some(&Value::Str(stage.to_string()))
                    && e.get("ph") == Some(&Value::Str("X".to_string()))
            }),
            "no complete event for {stage}"
        );
    }
}

/// Acceptance criterion: with a mock clock (and the pipeline's
/// deterministic exploration), metrics and trace output are
/// byte-identical across runs.
#[test]
fn mock_clock_makes_all_observability_output_byte_identical() {
    let run_once = || {
        let tracer = Tracer::with_clock(Arc::new(MockClock::new(100)));
        Pipeline::builder()
            .name("fig1-lb")
            .tracer(tracer.clone())
            .build()
            .unwrap()
            .synthesize(&corpus_source("fig1-lb"))
            .unwrap();
        (
            tracer.metrics().render_table(),
            tracer.metrics().to_json().render_pretty(),
            tracer.trace_json().render_pretty(),
        )
    };
    let (table_a, mjson_a, tjson_a) = run_once();
    let (table_b, mjson_b, tjson_b) = run_once();
    assert_eq!(table_a, table_b);
    assert_eq!(mjson_a, mjson_b);
    assert_eq!(tjson_a, tjson_b);
    assert!(table_a.contains("symex.paths.explored"));
}
