//! Integration: the paper's §1 deployment story, end to end.
//!
//! *"Our goal is to make our tool available to NF vendors who can run it
//! on their proprietary code and provide only the resultant models to
//! network operators for verification, troubleshooting and testing
//! purposes."*
//!
//! Vendor side: synthesize, export `.nfm`. Operator side: parse the
//! `.nfm` — *without the source* — and run verification and evaluation
//! on it.

use nfactor::core::accuracy::initial_model_state;
use nfactor::core::Pipeline;
use nfactor::interp::{Interp, Value};
use nfactor::model::{from_text, to_text};
use nfactor::packet::Field;
use nfactor::verify::hsa::{HeaderSpace, IntervalSet, StatefulNf};

#[test]
fn operator_verifies_from_shipped_model_only() {
    // --- vendor side ---
    let syn = Pipeline::builder()
        .name("fw")
        .build()
        .unwrap()
        .synthesize(&nfactor::corpus::firewall::source())
    .unwrap();
    let shipped = to_text(&syn.model);

    // --- operator side: only `shipped` crosses the boundary ---
    let model = from_text(&shipped).expect("operator parses the .nfm");
    assert_eq!(model, syn.model, "lossless shipping");

    let state = nfactor::model::ModelState::default()
        .with_config("PROTECTED_NET", Value::Int(0x0a000000))
        .with_config("PROTECTED_MASK", Value::Int(0xff000000))
        .with_config("ALLOW_PORT", Value::Int(80))
        .with_scalar("out_count", Value::Int(0))
        .with_scalar("in_count", Value::Int(0))
        .with_scalar("blocked_count", Value::Int(0))
        .with_map("pinholes");
    let nf = StatefulNf { model, state };
    let outside = HeaderSpace::all().with(
        Field::IpSrc,
        IntervalSet::range(0x0b00_0000, 0xffff_ffff),
    );
    let through = nf.reachable_through(&outside);
    assert!(!through.is_empty());
    assert!(through
        .iter()
        .all(|s| s.get(Field::TcpDport).contains(80) && s.get(Field::TcpDport).size() == 1));
}

#[test]
fn operator_evaluates_shipped_model_like_the_nf() {
    // The shipped model must *behave* like the NF: run the §5 diff with
    // the parsed-from-text model on the model side.
    let syn = Pipeline::builder()
        .name("nat")
        .build()
        .unwrap()
        .synthesize(&nfactor::corpus::nat::source())
        .unwrap();
    let shipped = from_text(&to_text(&syn.model)).unwrap();
    let mut interp = Interp::new(&syn.nf_loop).unwrap();
    let mut model_state = initial_model_state(&syn, &interp);
    let mut gen = nfactor::packet::PacketGen::new(31);
    for trial in 0..500 {
        let pkt = gen.next_packet();
        let prog = interp.process(&pkt).unwrap();
        let step = model_state.step(&shipped, &pkt).unwrap();
        assert_eq!(
            prog.outputs.first().cloned(),
            step.output,
            "trial {trial} diverged"
        );
    }
}

#[test]
fn every_corpus_model_ships_losslessly() {
    for nf in nfactor::corpus::default_corpus() {
        // Keep the generators small for speed; shipping fidelity does not
        // depend on size.
        let src = match nf.name {
            "balance" => nfactor::corpus::balance::source(5),
            "snort" => nfactor::corpus::snort::source(10),
            _ => nf.source,
        };
        let syn = Pipeline::builder()
            .name(nf.name)
            .build()
            .unwrap()
            .synthesize(&src)
            .unwrap_or_else(|e| panic!("{}: {e}", nf.name));
        let round = from_text(&to_text(&syn.model))
            .unwrap_or_else(|e| panic!("{}: {e}", nf.name));
        assert_eq!(round, syn.model, "{} shipping round trip", nf.name);
    }
}
